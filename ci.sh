#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== cargo doc (deny warnings) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
cargo test --workspace --doc -q

echo "== bench smoke (--quick)"
cargo bench -p cit-bench --bench components -- --quick
test -s BENCH_compute.json || { echo "BENCH_compute.json missing or empty" >&2; exit 1; }

echo "== bench regression guard (speedups vs baseline)"
# Every speedup field in BENCH_compute.json is current-vs-baseline for one
# kernel; anything below 0.8x is a loud regression warning so a slow kernel
# cannot hide inside a green CI run. The nt/nn sanity ratio guards the
# transposed-layout fix specifically: nt must stay within 2x of nn.
# Warnings stay non-fatal by default (quick-mode numbers are noisy);
# CI_STRICT_BENCH=1 turns any violation into a hard failure.
jq -r '.speedups | to_entries[] | "\(.key) \(.value)"' BENCH_compute.json | {
  slow=0
  while read -r name speedup; do
    if awk -v s="$speedup" 'BEGIN { exit !(s < 0.8) }'; then
      echo "!!! BENCH REGRESSION: $name at ${speedup}x — below the 0.8x floor !!!" >&2
      slow=$((slow + 1))
    fi
  done
  nt_ratio=$(jq -r '.nt_vs_nn_ratio // empty' BENCH_compute.json)
  if [ -n "$nt_ratio" ]; then
    if awk -v r="$nt_ratio" 'BEGIN { exit !(r > 2.0 || r != r) }'; then
      echo "!!! BENCH REGRESSION: nt_vs_nn_ratio at ${nt_ratio} — nt kernel above 2x of nn !!!" >&2
      slow=$((slow + 1))
    fi
  else
    echo "!!! BENCH REGRESSION: nt_vs_nn_ratio missing from BENCH_compute.json !!!" >&2
    slow=$((slow + 1))
  fi
  if [ "$slow" -eq 0 ]; then
    echo "all speedups at or above the 0.8x floor; nt within 2x of nn"
  elif [ "${CI_STRICT_BENCH:-0}" = "1" ]; then
    echo "CI_STRICT_BENCH=1: failing on $slow bench regression(s)" >&2
    exit 1
  fi
  true
}

echo "== serve smoke (servebench --quick --clients 16)"
cargo run --release -q -p cit-bench --bin servebench -- --quick --clients 16 \
  --out results/bench_serve_smoke.json
test -s results/bench_serve_smoke.json || { echo "serve smoke report missing" >&2; exit 1; }

echo "== overload smoke (64 clients vs queue capacity)"
# A quick 64-client closed-loop sweep must terminate (no reactor hangs),
# report a finite p99, and account for every request: offered is exactly
# answered + typed overloaded rejects — servebench itself exits nonzero
# if anything else (I/O error, malformed reply) happened.
timeout 300 cargo run --release -q -p cit-bench --bin servebench -- \
  --quick --clients 64 --out results/bench_serve_overload.json
jq -e '.levels.c64
       | (.p99_us > 0 and .p99_us < 1e9)
         and (.offered == .requests + .rejects)
         and (.connect_errors == 0)
         and (.protocol_errors == 0)' \
  results/bench_serve_overload.json >/dev/null \
  || { echo "overload smoke: c64 level failed its invariants" >&2;
       cat results/bench_serve_overload.json >&2; exit 1; }

echo "== serve fault-probe noise guard (disabled faults vs committed baseline)"
# The serve hot path now carries fault-injection probes (socket reads/
# writes, spill I/O, batch completion). With no plan armed they must stay
# effectively free: the quick c64 run above may not fall below half the
# committed full-run BENCH_serve.json throughput. Quick-mode numbers are
# noisy, so the violation is a loud warning by default and fatal only
# under CI_STRICT_BENCH=1 (same policy as the compute bench guard).
if [ -s BENCH_serve.json ]; then
  baseline=$(jq -r '.levels.c64.req_per_s // empty' BENCH_serve.json)
  current=$(jq -r '.levels.c64.req_per_s // empty' results/bench_serve_overload.json)
  if [ -n "$baseline" ] && [ -n "$current" ]; then
    if awk -v c="$current" -v b="$baseline" 'BEGIN { exit !(c < 0.5 * b) }'; then
      echo "!!! SERVE REGRESSION: c64 at ${current} req/s — below half the committed ${baseline} req/s !!!" >&2
      if [ "${CI_STRICT_BENCH:-0}" = "1" ]; then
        echo "CI_STRICT_BENCH=1: failing on serve-path regression" >&2
        exit 1
      fi
    else
      echo "c64 at ${current} req/s vs committed ${baseline} req/s: within the 0.5x floor"
    fi
  fi
fi

echo "== observability smoke (cit-serve stats + /metrics + cit-top)"
# Start a server with an admin listener on ephemeral ports, hit the
# stats op through cit-top and the exposition endpoint over plain HTTP,
# then shut it down via the protocol.
cargo build --release -q -p cit-serve --bins
rm -f results/cit_serve_addr.txt
mkdir -p results
target/release/cit-serve --untrained --assets 2 --seed 7 \
  --admin 127.0.0.1:0 --addr-file results/cit_serve_addr.txt &
SERVE_PID=$!
for _ in $(seq 1 50); do
  test -s results/cit_serve_addr.txt && break
  sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^addr=//p' results/cit_serve_addr.txt)
ADMIN_ADDR=$(sed -n 's/^admin=//p' results/cit_serve_addr.txt)
test -n "$SERVE_ADDR" || { echo "cit-serve did not report an address" >&2; exit 1; }
# cit-top --once --json round-trips the stats payload through the typed parser.
target/release/cit-top --addr "$SERVE_ADDR" --once --json | grep -q '"op":"stats"' \
  || { echo "cit-top --once --json did not return a stats line" >&2; exit 1; }
# The admin endpoint serves the expected metric families.
METRICS=$(target/release/cit-top --metrics "$ADMIN_ADDR")
for family in serve_requests serve_latency_window_bucket serve_queue_depth telemetry_uptime_seconds; do
  echo "$METRICS" | grep -q "$family" \
    || { echo "/metrics missing family $family" >&2; exit 1; }
done
target/release/cit-top --addr "$SERVE_ADDR" --once >/dev/null
printf '{"op":"shutdown"}\n' | timeout 10 bash -c "exec 3<>/dev/tcp/${SERVE_ADDR%:*}/${SERVE_ADDR##*:}; cat >&3; head -c1 <&3 >/dev/null" || true
wait "$SERVE_PID"
rm -f results/cit_serve_addr.txt

echo "== checkpoint save -> kill -> resume smoke"
# Bitwise resume-after-kill guarantee, including a simulated crash during
# save (truncated temp file must not corrupt the previous checkpoint).
cargo test -p cit-core --test checkpoint_resume -q
# End-to-end --resume wiring: first run trains + checkpoints, second run
# must resume from the persisted checkpoints instead of retraining.
rm -rf results/checkpoints results/table4_run.jsonl
cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'checkpoint.save' results/table4_run.jsonl || { echo "no checkpoint.save records" >&2; exit 1; }
cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'checkpoint.resume' results/table4_run.jsonl || { echo "no checkpoint.resume records" >&2; exit 1; }

echo "== chaos smoke (fault plan: NaN gradient + failed checkpoint write)"
# Under the canned fault plan a short training run must survive an injected
# NaN gradient (rollback + recovery) and a faked checkpoint-write failure
# without aborting, and say so in the telemetry stream.
rm -rf results/checkpoints results/table4_run.jsonl
CIT_FAULT_PLAN=crates/faults/plans/chaos_smoke.plan \
  cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'supervisor.rollback' results/table4_run.jsonl || { echo "no supervisor.rollback records" >&2; exit 1; }
grep -q 'supervisor.recovered' results/table4_run.jsonl || { echo "no supervisor.recovered records" >&2; exit 1; }
rm -rf results/checkpoints

echo "== chaos-serve smoke (live server under serve_chaos.plan)"
# A cit-serve instance armed with the serve-plane fault plan — stalled and
# dying sockets, short flushes, delayed batches against a 25 ms request
# deadline, torn/corrupt/failed spills — must survive a concurrent client
# sweep with zero protocol errors: every injected fault surfaces as a
# typed retryable reject or a survived disruption (reconnect / session
# reopen), the server shuts down cleanly, and the accounting still
# balances. The same plan backs crates/serve/tests/chaos.rs.
rm -rf results/chaos_spill results/cit_serve_chaos_addr.txt
mkdir -p results/chaos_spill
CIT_FAULT_PLAN=crates/faults/plans/serve_chaos.plan \
  target/release/cit-serve --untrained --assets 4 --seed 42 \
  --spill-dir results/chaos_spill --session-ttl-ms 40 --tick-ms 10 \
  --request-deadline-ms 25 \
  --addr-file results/cit_serve_chaos_addr.txt \
  2> results/chaos_serve.log &
CHAOS_PID=$!
for _ in $(seq 1 50); do
  test -s results/cit_serve_chaos_addr.txt && break
  sleep 0.1
done
CHAOS_ADDR=$(sed -n 's/^addr=//p' results/cit_serve_chaos_addr.txt)
test -n "$CHAOS_ADDR" || { echo "chaos cit-serve did not report an address" >&2; exit 1; }
grep -q 'fault injection armed' results/chaos_serve.log \
  || { echo "chaos cit-serve did not arm the fault plan" >&2; cat results/chaos_serve.log >&2; exit 1; }
# servebench --addr runs its clients in resilient mode: it exits nonzero on
# any protocol error, so injected faults may only show up as typed rejects
# or survived disruptions.
timeout 300 cargo run --release -q -p cit-bench --bin servebench -- \
  --quick --clients 8 --addr "$CHAOS_ADDR" --out results/bench_serve_chaos.json
jq -e '.levels.c8
       | (.offered == .requests + .rejects)
         and (.connect_errors == 0)
         and (.protocol_errors == 0)
         and (.disruptions >= 1)' \
  results/bench_serve_chaos.json >/dev/null \
  || { echo "chaos-serve smoke: c8 level failed its invariants" >&2;
       cat results/bench_serve_chaos.json >&2; exit 1; }
printf '{"op":"shutdown"}\n' | timeout 10 bash -c "exec 3<>/dev/tcp/${CHAOS_ADDR%:*}/${CHAOS_ADDR##*:}; cat >&3; head -c1 <&3 >/dev/null" || true
wait "$CHAOS_PID" || { echo "chaos cit-serve exited uncleanly" >&2; exit 1; }
rm -rf results/chaos_spill results/cit_serve_chaos_addr.txt

echo "== routerbench smoke (regime router vs single models)"
# Trains a 3-model roster, backtests the meta-router against each slot,
# and leaves the checkpoints in results/checkpoints/ for the multi-model
# serve smoke below. The report must carry metrics for the router and
# every model, and the per-slot pick counts must sum to the test days.
timeout 600 cargo run --release -q -p cit-bench --bin routerbench -- \
  --quick --out results/router_backtest_smoke.json
jq -e '(.router.ar | type == "number")
       and ((.models | length) == .num_models)
       and (([.models[].picks] | add) == .test_days)
       and ([.models[].metrics.sr] | all(type == "number"))' \
  results/router_backtest_smoke.json >/dev/null \
  || { echo "routerbench smoke: report failed its invariants" >&2;
       cat results/router_backtest_smoke.json >&2; exit 1; }
for k in 0 1; do
  test -s "results/checkpoints/routerbench_m${k}.cit" \
    || { echo "routerbench smoke left no checkpoint m${k}" >&2; exit 1; }
done

echo "== multi-model serve smoke (two slots + auto router)"
# Serve two of the routerbench checkpoints as named slots, drive a mixed
# workload that opens sessions against the default slot, the named slot
# and the auto router, then reconcile the per-model stats breakdown
# through cit-top --once --json.
rm -f results/cit_serve_mm_addr.txt
target/release/cit-serve \
  --checkpoint results/checkpoints/routerbench_m0.cit \
  --model alt=results/checkpoints/routerbench_m1.cit \
  --router-seed 7 --assets 4 --seed 42 \
  --addr-file results/cit_serve_mm_addr.txt &
MM_PID=$!
for _ in $(seq 1 50); do
  test -s results/cit_serve_mm_addr.txt && break
  sleep 0.1
done
MM_ADDR=$(sed -n 's/^addr=//p' results/cit_serve_mm_addr.txt)
test -n "$MM_ADDR" || { echo "multi-model cit-serve did not report an address" >&2; exit 1; }
timeout 300 cargo run --release -q -p cit-bench --bin servebench -- \
  --quick --clients 6 --addr "$MM_ADDR" --model default,alt,auto \
  --out results/bench_serve_mm.json
jq -e '.levels.c6 | (.protocol_errors == 0) and (.connect_errors == 0)' \
  results/bench_serve_mm.json >/dev/null \
  || { echo "multi-model smoke: servebench failed its invariants" >&2;
       cat results/bench_serve_mm.json >&2; exit 1; }
# The per-model breakdown must name both slots, attribute traffic to
# each, and never exceed the server-wide request total.
target/release/cit-top --addr "$MM_ADDR" --once --json > results/cit_top_mm.json
jq -e '(.models | length == 2)
       and ([.models[].model] == ["default", "alt"])
       and ([.models[].requests] | all(. > 0))
       and (([.models[].requests] | add) <= .requests_total)
       and ([.models[].checkpoint] | all(length > 0))' \
  results/cit_top_mm.json >/dev/null \
  || { echo "multi-model smoke: per-model stats failed to reconcile" >&2;
       cat results/cit_top_mm.json >&2; exit 1; }
printf '{"op":"shutdown"}\n' | timeout 10 bash -c "exec 3<>/dev/tcp/${MM_ADDR%:*}/${MM_ADDR##*:}; cat >&3; head -c1 <&3 >/dev/null" || true
wait "$MM_PID" || { echo "multi-model cit-serve exited uncleanly" >&2; exit 1; }
rm -f results/cit_serve_mm_addr.txt results/cit_top_mm.json

echo "== doc-link check (PROTOCOL.md / OPERATIONS.md vs source)"
# The protocol reference must document every wire op and every error tag
# the source defines, and every serve.* metric name OPERATIONS.md claims
# must exist in the serve crate — docs that drift from the code fail CI.
for op in open decide close info reload stats shutdown sleep; do
  grep -q "\`$op\`" PROTOCOL.md \
    || { echo "PROTOCOL.md does not document op '$op'" >&2; exit 1; }
done
for tag in $(sed -n 's/.*ErrorKind::[A-Za-z]* => "\([a-z_]*\)".*/\1/p' crates/serve/src/protocol.rs | sort -u); do
  grep -q "\`$tag\`" PROTOCOL.md \
    || { echo "PROTOCOL.md does not document error kind '$tag'" >&2; exit 1; }
done
grep -oE '`serve\.[a-z0-9_.<>]+`' OPERATIONS.md | tr -d '`' | sort -u | {
  missing=0
  while read -r metric; do
    # Per-op and per-slot families are format strings in the source
    # (`serve.op.{name}.requests`): turn the documented `<op>`/`<slot>`
    # placeholder into a wildcard before matching.
    pattern=$(printf '%s' "$metric" | sed 's/\./\\./g; s/<[a-z]*>/.*/g')
    if ! grep -rqE -e "$pattern" --include='*.rs' crates/serve/src; then
      # Concrete instances of a dynamic family (serve.errors.overloaded)
      # only exist as format strings + the instance string: require both.
      family=$(printf '%s' "${metric%.*}" | sed 's/\./\\./g')
      leaf=${metric##*.}
      if ! { grep -rqE -e "${family}\.\{" --include='*.rs' crates/serve/src \
             && grep -rq -e "\"$leaf\"" --include='*.rs' crates/serve/src; }; then
        echo "OPERATIONS.md metric '$metric' not found in crates/serve/src" >&2
        missing=$((missing + 1))
      fi
    fi
  done
  test "$missing" -eq 0 || exit 1
}

echo "CI gate passed."
