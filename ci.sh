#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== bench smoke (--quick)"
cargo bench -p cit-bench --bench components -- --quick
test -s BENCH_compute.json || { echo "BENCH_compute.json missing or empty" >&2; exit 1; }

echo "== checkpoint save -> kill -> resume smoke"
# Bitwise resume-after-kill guarantee, including a simulated crash during
# save (truncated temp file must not corrupt the previous checkpoint).
cargo test -p cit-core --test checkpoint_resume -q
# End-to-end --resume wiring: first run trains + checkpoints, second run
# must resume from the persisted checkpoints instead of retraining.
rm -rf results/checkpoints results/table4_run.jsonl
cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'checkpoint.save' results/table4_run.jsonl || { echo "no checkpoint.save records" >&2; exit 1; }
cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'checkpoint.resume' results/table4_run.jsonl || { echo "no checkpoint.resume records" >&2; exit 1; }

echo "CI gate passed."
