#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== bench smoke (--quick)"
cargo bench -p cit-bench --bench components -- --quick
test -s BENCH_compute.json || { echo "BENCH_compute.json missing or empty" >&2; exit 1; }

echo "CI gate passed."
