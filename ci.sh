#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== cargo doc (deny warnings) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
cargo test --workspace --doc -q

echo "== bench smoke (--quick)"
cargo bench -p cit-bench --bench components -- --quick
test -s BENCH_compute.json || { echo "BENCH_compute.json missing or empty" >&2; exit 1; }

echo "== serve smoke (servebench --quick)"
cargo run --release -q -p cit-bench --bin servebench -- --quick
test -s BENCH_serve.json || { echo "BENCH_serve.json missing or empty" >&2; exit 1; }

echo "== checkpoint save -> kill -> resume smoke"
# Bitwise resume-after-kill guarantee, including a simulated crash during
# save (truncated temp file must not corrupt the previous checkpoint).
cargo test -p cit-core --test checkpoint_resume -q
# End-to-end --resume wiring: first run trains + checkpoints, second run
# must resume from the persisted checkpoints instead of retraining.
rm -rf results/checkpoints results/table4_run.jsonl
cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'checkpoint.save' results/table4_run.jsonl || { echo "no checkpoint.save records" >&2; exit 1; }
cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'checkpoint.resume' results/table4_run.jsonl || { echo "no checkpoint.resume records" >&2; exit 1; }

echo "== chaos smoke (fault plan: NaN gradient + failed checkpoint write)"
# Under the canned fault plan a short training run must survive an injected
# NaN gradient (rollback + recovery) and a faked checkpoint-write failure
# without aborting, and say so in the telemetry stream.
rm -rf results/checkpoints results/table4_run.jsonl
CIT_FAULT_PLAN=crates/faults/plans/chaos_smoke.plan \
  cargo run --release -q -p cit-bench --bin table4 -- --scale smoke --resume >/dev/null
grep -q 'supervisor.rollback' results/table4_run.jsonl || { echo "no supervisor.rollback records" >&2; exit 1; }
grep -q 'supervisor.recovered' results/table4_run.jsonl || { echo "no supervisor.recovered records" >&2; exit 1; }
rm -rf results/checkpoints

echo "CI gate passed."
