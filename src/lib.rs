//! # cross-insight-trader
//!
//! A Rust reproduction of *"Cross-Insight Trader: A Trading Approach
//! Integrating Policies with Diverse Investment Horizons for Portfolio
//! Management"* (ICDE 2024).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`tensor`] — dense tensors + reverse-mode autodiff,
//! * [`compute`] — std-only scoped-thread parallelism (`CIT_THREADS`),
//! * [`nn`] — layers (TCN, GRU, spatial attention, Gaussian head) and
//!   optimisers,
//! * [`dwt`] — Haar wavelet transform and horizon decomposition,
//! * [`market`] — panels, the synthetic fractal market, the portfolio MDP,
//!   backtester and metrics,
//! * [`online`] — online portfolio-selection baselines,
//! * [`rl`] — deep-RL baselines (A2C, PPO, DDPG, EIIE, SARL, DeepTrader),
//! * [`core`] — the cross-insight trader itself (training + the
//!   deterministic [`core::DecisionModel`] inference path),
//! * [`telemetry`] — structured diagnostics (counters, histograms, spans),
//! * [`faults`] — seeded deterministic fault injection,
//! * [`serve`] — batched TCP decision serving for trained checkpoints.
//!
//! ## Quickstart
//!
//! ```no_run
//! use cross_insight_trader::core::{CitConfig, CrossInsightTrader};
//! use cross_insight_trader::market::{run_test_period, EnvConfig, MarketPreset};
//!
//! let panel = MarketPreset::Hk.scaled(9, 24).generate();
//! let mut trader = CrossInsightTrader::new(&panel, CitConfig::smoke(0));
//! trader.train(&panel);
//! let result = run_test_period(&panel, EnvConfig::default(), &mut trader);
//! println!("AR {:.3}  SR {:.2}  CR {:.2}", result.metrics.ar, result.metrics.sr, result.metrics.cr);
//! ```

#![deny(missing_docs)]

pub use cit_compute as compute;
pub use cit_core as core;
pub use cit_dwt as dwt;
pub use cit_faults as faults;
pub use cit_market as market;
pub use cit_nn as nn;
pub use cit_online as online;
pub use cit_rl as rl;
pub use cit_serve as serve;
pub use cit_telemetry as telemetry;
pub use cit_tensor as tensor;
