//! Strategy shootout: run every online portfolio-selection baseline plus a
//! couple of cheap RL agents on one market and print a ranked table — the
//! scenario the paper's Table III motivates, at laptop scale.
//!
//! ```sh
//! cargo run --release --example strategy_shootout
//! ```

use cross_insight_trader::market::{market_result, run_test_period, EnvConfig, MarketPreset};
use cross_insight_trader::online::all_strategies;
use cross_insight_trader::rl::{A2c, Eiie, RlConfig};

fn main() {
    let panel = MarketPreset::China.scaled(6, 10).generate();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    println!(
        "market: {} assets, {} test days\n",
        panel.num_assets(),
        panel.num_days() - panel.test_start()
    );

    let mut results = Vec::new();

    for mut strat in all_strategies() {
        results.push(run_test_period(&panel, env, strat.as_mut()));
    }

    // Two inexpensive learned baselines for contrast.
    let rl = RlConfig {
        window: 16,
        total_steps: 1_000,
        ..RlConfig::smoke(7)
    };
    let mut eiie = Eiie::new(&panel, rl);
    eiie.train(&panel);
    results.push(run_test_period(&panel, env, &mut eiie));
    let mut a2c = A2c::new(&panel, rl);
    a2c.train(&panel);
    results.push(run_test_period(&panel, env, &mut a2c));

    results.push(market_result(&panel, panel.test_start(), panel.num_days()));

    results.sort_by(|a, b| b.metrics.sr.partial_cmp(&a.metrics.sr).expect("finite SR"));
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "model", "AR", "SR", "CR", "MDD"
    );
    for r in &results {
        println!(
            "{:<12} {:>8.3} {:>8.2} {:>8.2} {:>8.3}",
            r.name, r.metrics.ar, r.metrics.sr, r.metrics.cr, r.metrics.mdd
        );
    }
}
