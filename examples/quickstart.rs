//! Quickstart: generate a market, train a small cross-insight trader and
//! compare it against the market index and a uniform-rebalance baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cross_insight_trader::core::{CitConfig, CrossInsightTrader};
use cross_insight_trader::market::{
    market_result, run_test_period, EnvConfig, MarketPreset, UniformStrategy,
};

fn main() {
    // A shrunken H.K.-style market: 5 assets, ~1 year of test data.
    let panel = MarketPreset::Hk.scaled(9, 12).generate();
    println!(
        "market: {} assets, {} train days, {} test days",
        panel.num_assets(),
        panel.test_start(),
        panel.num_days() - panel.test_start()
    );

    // Train a compact cross-insight trader (3 horizons, small networks).
    let cfg = CitConfig {
        num_policies: 3,
        window: 16,
        total_steps: 1_500,
        ..CitConfig::default()
    };
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    println!("training CIT ({} parameters) ...", trader.num_params());
    let report = trader.train(&panel);
    println!(
        "trained {} env steps; final-quarter mean reward {:+.5}",
        report.steps,
        report.final_mean_reward()
    );

    // Backtest the test period.
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let cit = run_test_period(&panel, env, &mut trader);
    let uniform = run_test_period(&panel, env, &mut UniformStrategy);
    let index = market_result(&panel, panel.test_start(), panel.num_days());

    println!(
        "\n{:<10} {:>8} {:>8} {:>8} {:>8}",
        "model", "AR", "SR", "CR", "MDD"
    );
    for r in [&cit, &uniform, &index] {
        println!(
            "{:<10} {:>8.3} {:>8.2} {:>8.2} {:>8.3}",
            r.name, r.metrics.ar, r.metrics.sr, r.metrics.cr, r.metrics.mdd
        );
    }
}
