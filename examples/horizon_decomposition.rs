//! Horizon decomposition demo (paper Section IV-A / Figure 2): split a
//! price window into long/middle/short-term frequency bands with the Haar
//! DWT and show what each horizon-specific policy would see.
//!
//! ```sh
//! cargo run --release --example horizon_decomposition
//! ```

use cross_insight_trader::dwt::{horizon_scales, wavelet_smooth};
use cross_insight_trader::market::MarketPreset;

fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = series
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(1e-12);
    series
        .iter()
        .map(|&v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let panel = MarketPreset::Us.scaled(10, 12).generate();
    let t = panel.num_days() - 1;
    let window = panel.close_window(t, 0, 64);
    println!("closing prices of asset A000, last 64 days:");
    println!("  {}\n", sparkline(&window));

    for n in [2usize, 3, 4] {
        println!("granularity {n} (policy 1 = longest horizon):");
        let bands = horizon_scales(&window, n);
        for (k, band) in bands.iter().enumerate() {
            let tv: f64 = band.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
            println!(
                "  policy {} | {} | total variation {:8.2}",
                k + 1,
                sparkline(band),
                tv
            );
        }
        // The bands partition the signal: their sum reproduces the prices.
        let recon: f64 = bands.iter().map(|b| b[40]).sum();
        assert!((recon - window[40]).abs() < 1e-6);
        println!();
    }

    println!("wavelet denoising (drop the finest band of a 3-level decomposition):");
    let smooth = wavelet_smooth(&window, 3, 1);
    println!("  raw      {}", sparkline(&window));
    println!("  smoothed {}", sparkline(&smooth));
}
