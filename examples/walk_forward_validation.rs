//! Walk-forward validation with checkpointing: retrain an online strategy
//! per fold, stitch out-of-sample performance, and persist/reload a
//! cross-insight trader between folds — the deployment workflow a
//! downstream user would actually run.
//!
//! ```sh
//! cargo run --release --example walk_forward_validation
//! ```

use cross_insight_trader::core::{CitConfig, CrossInsightTrader};
use cross_insight_trader::market::{
    risk::risk_report, walk_forward, EnvConfig, SynthConfig, UniformStrategy, WalkForwardConfig,
};
use cross_insight_trader::online::{Olmar, Rmr};

fn main() {
    let panel = SynthConfig {
        name: "walkforward".into(),
        num_assets: 5,
        num_days: 720,
        test_start: 600, // unused by walk-forward, which rolls its own folds
        ..SynthConfig::default()
    }
    .generate();

    let cfg = WalkForwardConfig {
        train_days: 240,
        test_days: 120,
        env: EnvConfig {
            window: 16,
            transaction_cost: 1e-3,
        },
    };

    println!(
        "walk-forward: {} folds of {} test days\n",
        (720 - 240) / 120,
        120
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "model", "AR", "SR", "MDD", "Sortino", "turnover"
    );
    type Factory = fn() -> Box<dyn cross_insight_trader::market::Strategy>;
    let models: [(&str, Factory); 3] = [
        ("Uniform", || Box::new(UniformStrategy)),
        ("OLMAR", || Box::new(Olmar::default())),
        ("RMR", || Box::new(Rmr::default())),
    ];
    for (name, make) in models {
        let res = walk_forward(&panel, &cfg, |_, _| make());
        let weights: Vec<Vec<f64>> = res
            .fold_results
            .iter()
            .flat_map(|f| f.weights.clone())
            .collect();
        let risk = risk_report(&res.daily_returns, &weights);
        println!(
            "{:<10} {:>8.3} {:>8.2} {:>8.3} {:>9.2} {:>9.3}",
            name, res.metrics.ar, res.metrics.sr, res.metrics.mdd, risk.sortino, risk.turnover
        );
    }

    // Checkpoint round-trip: train once, save, reload into a fresh model.
    println!("\ncheckpoint round-trip:");
    let cit_cfg = CitConfig {
        num_policies: 2,
        window: 16,
        total_steps: 400,
        ..CitConfig::smoke(3)
    };
    let mut trained = CrossInsightTrader::new(&panel, cit_cfg);
    trained.train(&panel);
    let path = std::env::temp_dir().join("cit_walkforward_demo.ckpt");
    trained.save(&path).expect("save checkpoint");

    let mut restored = CrossInsightTrader::new(&panel, cit_cfg);
    restored.load(&path).expect("load checkpoint");
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    let a = cross_insight_trader::market::run_test_period(&panel, env, &mut trained);
    let b = cross_insight_trader::market::run_test_period(&panel, env, &mut restored);
    let drift: f64 = a
        .wealth
        .iter()
        .zip(&b.wealth)
        .map(|(x, y)| (x - y).abs())
        .sum();
    println!(
        "  saved to {} — reload wealth drift: {drift:.2e}",
        path.display()
    );
    assert!(
        drift < 1e-9,
        "restored model must reproduce the original backtest"
    );
    let _ = std::fs::remove_file(path);
    println!("  restored model reproduces the original backtest exactly ✔");
}
