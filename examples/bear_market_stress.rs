//! Bear-market stress test: the scenario behind the paper's U.S.-market
//! claim — a model trained mostly on bull data must survive a bear regime
//! in the test window. Compares a cross-insight trader with the uniform
//! portfolio and the index, and reports drawdowns.
//!
//! ```sh
//! cargo run --release --example bear_market_stress
//! ```

use cross_insight_trader::core::{CitConfig, CrossInsightTrader};
use cross_insight_trader::market::{
    market_result, run_test_period, EnvConfig, Regime, RegimeSegment, SynthConfig, UniformStrategy,
};

fn main() {
    // Bull training history, bear-heavy test period.
    let cfg = SynthConfig {
        name: "bear-stress".into(),
        num_assets: 6,
        num_days: 700,
        test_start: 560,
        regimes: vec![
            RegimeSegment {
                regime: Regime::Bull,
                days: 560,
            },
            RegimeSegment {
                regime: Regime::Bear,
                days: 90,
            },
            RegimeSegment {
                regime: Regime::Bull,
                days: 50,
            },
        ],
        ..SynthConfig::default()
    };
    let panel = cfg.generate();
    let env = EnvConfig {
        window: 16,
        transaction_cost: 1e-3,
    };
    println!("test period: 90 bear days then 50 recovery days\n");

    let cit_cfg = CitConfig {
        num_policies: 3,
        window: 16,
        total_steps: 1_500,
        ..CitConfig::default()
    };
    let mut trader = CrossInsightTrader::new(&panel, cit_cfg);
    println!("training CIT ...");
    trader.train(&panel);

    let cit = run_test_period(&panel, env, &mut trader);
    let uniform = run_test_period(&panel, env, &mut UniformStrategy);
    let index = market_result(&panel, panel.test_start(), panel.num_days());

    println!(
        "\n{:<10} {:>8} {:>8} {:>8} {:>8}",
        "model", "AR", "SR", "CR", "MDD"
    );
    for r in [&cit, &uniform, &index] {
        println!(
            "{:<10} {:>8.3} {:>8.2} {:>8.2} {:>8.3}",
            r.name, r.metrics.ar, r.metrics.sr, r.metrics.cr, r.metrics.mdd
        );
    }

    // Where did each model bottom out during the bear leg?
    let trough = |w: &[f64]| w.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nlowest wealth during test:");
    println!("  CIT     {:.3}", trough(&cit.wealth));
    println!("  Uniform {:.3}", trough(&uniform.wealth));
    println!("  Market  {:.3}", trough(&index.wealth));
}
