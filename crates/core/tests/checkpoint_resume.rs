//! End-to-end guarantees of the v2 full-training-state checkpoint: a run
//! that is killed and resumed must be bitwise-identical to one that never
//! stopped, crashes mid-save must never corrupt an existing checkpoint,
//! and legacy v1 params-only files must still load.

use cit_core::{CitConfig, CrossInsightTrader};
use cit_market::{AssetPanel, SynthConfig};

fn panel() -> AssetPanel {
    SynthConfig {
        num_assets: 3,
        num_days: 220,
        test_start: 160,
        ..Default::default()
    }
    .generate()
}

fn cfg_with_steps(seed: u64, total_steps: usize) -> CitConfig {
    let mut cfg = CitConfig::smoke(seed);
    cfg.total_steps = total_steps;
    cfg
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cit_ckpt_test_{}_{name}", std::process::id()));
    p
}

fn params_equal(a: &[(String, Vec<f32>)], b: &[(String, Vec<f32>)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((na, va), (nb, vb))| {
            na == nb
                && va.len() == vb.len()
                && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

/// Headline guarantee: train 2N steps straight vs train N → save → fresh
/// trader → load → train to 2N. Parameters and the learning curve must be
/// bitwise identical.
#[test]
fn resume_is_bitwise_identical_to_straight_run() {
    let p = panel();
    let (half, full) = (96, 192);

    let mut straight = CrossInsightTrader::new(&p, cfg_with_steps(11, full));
    let straight_report = straight.train(&p);

    let path = tmp_path("resume_bitwise.cit");
    let mut first = CrossInsightTrader::new(&p, cfg_with_steps(11, half));
    first.train(&p);
    first.save(&path).expect("save mid-run checkpoint");
    drop(first); // the "kill"

    let mut resumed = CrossInsightTrader::new(&p, cfg_with_steps(11, full));
    resumed.load(&path).expect("load mid-run checkpoint");
    let resumed_report = resumed.train(&p);

    assert_eq!(straight_report.steps, resumed_report.steps);
    assert_eq!(
        straight_report.update_rewards, resumed_report.update_rewards,
        "learning curves must match bitwise"
    );
    assert!(
        params_equal(&straight.export_params(), &resumed.export_params()),
        "parameters must match bitwise after resume"
    );
    let _ = std::fs::remove_file(&path);
}

/// Auto-checkpoints written every `checkpoint_every` updates are
/// themselves resumable: killing after the last auto-save and resuming
/// from that file reproduces the uninterrupted run bitwise.
#[test]
fn auto_checkpoint_resumes_after_kill() {
    let p = panel();
    let (half, full) = (96, 192);
    let path = tmp_path("auto_ckpt.cit");

    let mut straight = CrossInsightTrader::new(&p, cfg_with_steps(12, full));
    let straight_report = straight.train(&p);

    // rollout=16 → 96 steps = 6 updates → auto-saves at updates 2, 4, 6.
    let mut cfg = cfg_with_steps(12, half);
    cfg.checkpoint_every = 2;
    let (tel, sink) = cit_telemetry::Telemetry::memory();
    let mut first = CrossInsightTrader::new(&p, cfg)
        .with_telemetry(tel)
        .with_checkpoint(&path);
    first.train(&p);
    assert_eq!(
        sink.by_kind("checkpoint.save").len(),
        3,
        "one auto-save per 2 updates"
    );
    drop(first); // the "kill": only the auto-saved file survives

    let (tel2, sink2) = cit_telemetry::Telemetry::memory();
    let mut resumed = CrossInsightTrader::new(&p, cfg_with_steps(12, full)).with_telemetry(tel2);
    resumed.load(&path).expect("load auto-checkpoint");
    let resumed_report = resumed.train(&p);

    assert_eq!(sink2.by_kind("checkpoint.resume").len(), 2); // load + train
    assert_eq!(
        straight_report.update_rewards,
        resumed_report.update_rewards
    );
    assert!(params_equal(
        &straight.export_params(),
        &resumed.export_params()
    ));
    let _ = std::fs::remove_file(&path);
}

/// A crash while writing a newer checkpoint (truncated temp file) must
/// leave the previous checkpoint fully loadable.
#[test]
fn crash_during_save_leaves_previous_checkpoint_loadable() {
    let p = panel();
    let path = tmp_path("crash_save.cit");
    let mut trader = CrossInsightTrader::new(&p, cfg_with_steps(13, 96));
    trader.train(&p);
    trader.save(&path).expect("save checkpoint");

    // Simulate a crash mid-write of the *next* save: a truncated temp file
    // next to the real checkpoint.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    std::fs::write(&tmp, "cit-params v2\n[params]\npi0.w\t2,2\t1e0 ").expect("write tmp");

    let mut restored = CrossInsightTrader::new(&p, cfg_with_steps(13, 96));
    restored.load(&path).expect("previous checkpoint intact");
    assert!(params_equal(
        &trader.export_params(),
        &restored.export_params()
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&tmp);
}

/// A legacy v1 params-only file (extracted from the v2 [params] section)
/// still loads: parameters restored, no resume armed.
#[test]
fn v1_params_only_checkpoint_still_loads() {
    let p = panel();
    let path = tmp_path("v2_for_v1.cit");
    let mut trader = CrossInsightTrader::new(&p, cfg_with_steps(14, 96));
    trader.train(&p);
    trader.save(&path).expect("save v2");

    // Rebuild the equivalent v1 file: header + the [params] section lines
    // (the per-parameter line format is identical across versions).
    let text = std::fs::read_to_string(&path).expect("read v2");
    let mut v1 = String::from("cit-params v1\n");
    let mut in_params = false;
    for line in text.lines() {
        if line == "[params]" {
            in_params = true;
        } else if line.starts_with('[') {
            in_params = false;
        } else if in_params {
            v1.push_str(line);
            v1.push('\n');
        }
    }
    let v1_path = tmp_path("legacy_v1.cit");
    std::fs::write(&v1_path, v1).expect("write v1");

    let mut restored = CrossInsightTrader::new(&p, cfg_with_steps(14, 96));
    restored.load(&v1_path).expect("v1 file loads");
    assert!(params_equal(
        &trader.export_params(),
        &restored.export_params()
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&v1_path);
}

/// A progress-free v2 checkpoint (saved before any training) restores the
/// fresh RNG/params, so training after load matches a fresh trader bitwise.
#[test]
fn untrained_checkpoint_trains_like_fresh_trader() {
    let p = panel();
    let path = tmp_path("untrained.cit");
    let untrained = CrossInsightTrader::new(&p, cfg_with_steps(15, 96));
    untrained.save(&path).expect("save untrained");

    let mut fresh = CrossInsightTrader::new(&p, cfg_with_steps(15, 96));
    let fresh_report = fresh.train(&p);

    let mut loaded = CrossInsightTrader::new(&p, cfg_with_steps(15, 96));
    loaded.load(&path).expect("load untrained checkpoint");
    let loaded_report = loaded.train(&p);

    assert_eq!(fresh_report.update_rewards, loaded_report.update_rewards);
    assert!(params_equal(
        &fresh.export_params(),
        &loaded.export_params()
    ));
    let _ = std::fs::remove_file(&path);
}

/// `train` called twice on the same trader retrains from scratch the
/// second time — resume only arms via `load`.
#[test]
fn second_train_call_retrains_instead_of_resuming() {
    let p = panel();
    let mut trader = CrossInsightTrader::new(&p, cfg_with_steps(16, 96));
    let first = trader.train(&p);
    let params_after_first = trader.export_params();
    let second = trader.train(&p);
    assert_eq!(first.update_rewards.len(), second.update_rewards.len());
    assert!(
        !params_equal(&params_after_first, &trader.export_params()),
        "second train must actually run more updates"
    );
}

/// Corrupt and non-finite checkpoints are rejected with typed errors, not
/// panics or silent half-loads.
#[test]
fn corrupt_checkpoints_are_rejected() {
    let p = panel();
    let garbage = tmp_path("garbage.cit");
    std::fs::write(&garbage, "not a checkpoint at all\n").expect("write garbage");
    let mut trader = CrossInsightTrader::new(&p, cfg_with_steps(17, 96));
    assert!(trader.load(&garbage).is_err());

    // Inject a NaN into an otherwise valid checkpoint.
    let path = tmp_path("nan.cit");
    let mut trained = CrossInsightTrader::new(&p, cfg_with_steps(17, 96));
    trained.train(&p);
    trained.save(&path).expect("save");
    let text = std::fs::read_to_string(&path).expect("read");
    let corrupted = text.replacen("[rng]", "[trainer]\nseries\tenv_wealth\t1\tNaN\n[rng]", 1);
    std::fs::write(&path, corrupted).expect("rewrite");
    let mut other = CrossInsightTrader::new(&p, cfg_with_steps(17, 96));
    assert!(other.load(&path).is_err(), "NaN series must be rejected");

    let _ = std::fs::remove_file(&garbage);
    let _ = std::fs::remove_file(&path);
}

/// The typed constructors surface configuration errors instead of
/// panicking (the panicking `new`/`train` wrappers stay for tests).
#[test]
fn typed_errors_for_bad_configurations() {
    let p = panel();
    let mut cfg = CitConfig::smoke(18);
    cfg.num_policies = 6;
    cfg.window = 16; // needs 2^5 = 32
    let Err(err) = CrossInsightTrader::try_new(&p, cfg) else {
        panic!("expected a config error");
    };
    assert!(err.to_string().contains("too short"), "{err}");

    // A panel whose test period starts before any decision is possible.
    let tiny = SynthConfig {
        num_assets: 3,
        num_days: 40,
        test_start: 17,
        ..Default::default()
    }
    .generate();
    let mut trader = CrossInsightTrader::try_new(&tiny, CitConfig::smoke(18)).expect("valid cfg");
    let Err(err) = trader.try_train(&tiny) else {
        panic!("expected a span error");
    };
    assert!(
        err.to_string().contains("training period too short"),
        "{err}"
    );
}
