//! End-to-end guarantees of the training supervisor under deterministic
//! fault injection: a NaN gradient injected mid-run is rolled back and the
//! run recovers bit-identically to an uninjected one, and faked checkpoint
//! write failures never abort training nor corrupt the last good file.

use cit_core::{CitConfig, CrossInsightTrader};
use cit_faults::{FaultInjector, FaultPlan};
use cit_market::{AssetPanel, SynthConfig};
use cit_telemetry::Telemetry;

fn panel() -> AssetPanel {
    SynthConfig {
        num_assets: 3,
        num_days: 220,
        test_start: 160,
        ..Default::default()
    }
    .generate()
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cit_supervisor_test_{}_{name}", std::process::id()));
    p
}

fn params_equal(a: &[(String, Vec<f32>)], b: &[(String, Vec<f32>)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((na, va), (nb, vb))| {
            na == nb
                && va.len() == vb.len()
                && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

/// Headline guarantee: a NaN gradient injected at update 5 triggers a
/// rollback to the last good snapshot, the replayed updates are clean
/// (faults fire once), and — with no LR backoff — the finished run is
/// bitwise identical to one that never saw the fault.
#[test]
fn nan_gradient_rolls_back_and_recovers_bitwise() {
    let p = panel();
    let mut cfg = CitConfig::smoke(7);
    cfg.lr_backoff = 1.0; // isolate the rollback mechanics from LR decay

    let mut clean = CrossInsightTrader::new(&p, cfg);
    let clean_report = clean.train(&p);

    let plan =
        FaultPlan::parse("cit-faults v1\nseed 7\ngrad pi0 5 nan\n").expect("valid fault plan");
    let (tel, sink) = Telemetry::memory();
    let mut faulty = CrossInsightTrader::new(&p, cfg)
        .with_telemetry(tel)
        .with_faults(FaultInjector::new(plan));
    let faulty_report = faulty.train(&p);

    assert_eq!(sink.by_kind("fault.injected").len(), 1, "fault fired once");
    let rollbacks = sink.by_kind("supervisor.rollback");
    assert!(!rollbacks.is_empty(), "rollback must be reported");
    assert_eq!(rollbacks[0].get_f64("update"), Some(5.0));
    assert!(
        !sink.by_kind("supervisor.recovered").is_empty(),
        "recovery must be reported"
    );

    assert_eq!(clean_report.steps, faulty_report.steps);
    assert_eq!(
        clean_report.update_rewards, faulty_report.update_rewards,
        "learning curve must match the uninjected run bitwise"
    );
    assert!(
        params_equal(&clean.export_params(), &faulty.export_params()),
        "parameters must match the uninjected run bitwise"
    );
}

/// With supervision disabled (`max_rollbacks = 0`) the non-finite gradient
/// is still defused — `clip_grad_norm` zeroes poisoned gradients instead
/// of silently propagating NaN into the parameters — so training finishes
/// with finite parameters either way.
#[test]
fn poisoned_gradient_never_reaches_parameters_even_unsupervised() {
    let p = panel();
    let mut cfg = CitConfig::smoke(11);
    cfg.max_rollbacks = 0;
    let plan =
        FaultPlan::parse("cit-faults v1\nseed 11\ngrad pi0 3 inf\n").expect("valid fault plan");
    let mut trader = CrossInsightTrader::new(&p, cfg).with_faults(FaultInjector::new(plan));
    let _ = trader.train(&p);
    for (name, values) in trader.export_params() {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "non-finite parameter in {name}"
        );
    }
}

/// Faked I/O failures on every periodic checkpoint write after the first
/// leave the run alive and the first (good) checkpoint intact on disk:
/// the surviving file is byte-identical to the state a run stopped at that
/// update would save, and still loads.
#[test]
fn checkpoint_write_failure_keeps_run_alive_and_previous_file_intact() {
    let p = panel();
    let mut cfg = CitConfig::smoke(9);
    cfg.checkpoint_every = 2; // smoke scale: 13 updates -> writes at 2,4,..,12
    let path = tmp_path("ckpt_survives.cit");
    let _ = std::fs::remove_file(&path);

    let plan = FaultPlan::parse(
        "cit-faults v1\nseed 9\n\
         io checkpoint.save 2 denied\n\
         io checkpoint.save 3 denied\n\
         io checkpoint.save 4 interrupted\n\
         io checkpoint.save 5 denied\n\
         io checkpoint.save 6 denied\n",
    )
    .expect("valid fault plan");
    let (tel, sink) = Telemetry::memory();
    let mut trader = CrossInsightTrader::new(&p, cfg)
        .with_telemetry(tel.clone())
        .with_faults(FaultInjector::new(plan))
        .with_checkpoint(&path);
    trader
        .try_train(&p)
        .expect("checkpoint write failures must not abort training");

    assert_eq!(
        sink.by_kind("checkpoint.error").len(),
        5,
        "every failed write is reported"
    );
    assert_eq!(tel.counter("checkpoint.write_errors").get(), 5);

    // Only the first periodic write (update 2) reached the disk; it must
    // be byte-identical to the checkpoint of a clean run that stops there.
    let mut ref_cfg = cfg;
    ref_cfg.total_steps = 2 * ref_cfg.rollout;
    ref_cfg.checkpoint_every = 0;
    let ref_path = tmp_path("ckpt_reference.cit");
    let _ = std::fs::remove_file(&ref_path);
    let mut reference = CrossInsightTrader::new(&p, ref_cfg);
    reference.train(&p);
    reference.save(&ref_path).expect("reference save");
    let surviving = std::fs::read(&path).expect("surviving checkpoint readable");
    let expected = std::fs::read(&ref_path).expect("reference checkpoint readable");
    assert_eq!(
        surviving, expected,
        "failed writes must leave the update-2 checkpoint untouched"
    );

    // And it still loads into a fresh trader.
    let mut fresh = CrossInsightTrader::new(&p, cfg);
    fresh.load(&path).expect("surviving checkpoint loads");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&ref_path);
}
