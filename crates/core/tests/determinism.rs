//! Thread-count and tiling-scheme determinism: the split-graph parallel
//! update must produce bit-identical training results regardless of how
//! many worker threads execute it and regardless of which matmul
//! [`TilingScheme`] the kernels run under. Thread count and tile shapes
//! only change wall-clock, never values — which is also what makes the
//! `cit-compute` autotuner safe: its host-dependent scheme choice can
//! never alter a training run.

use cit_core::{CitConfig, CrossInsightTrader};
use cit_market::{AssetPanel, SynthConfig};
use cit_tensor::kernels::force_scheme;
use cit_tensor::TilingScheme;

fn panel() -> AssetPanel {
    SynthConfig {
        num_assets: 3,
        num_days: 220,
        test_start: 160,
        ..Default::default()
    }
    .generate()
}

fn train_with_threads(panel: &AssetPanel, threads: usize) -> (Vec<f64>, Vec<(String, Vec<f32>)>) {
    let mut cfg = CitConfig::smoke(42);
    cfg.total_steps = 50;
    cfg.rollout = 10;
    cfg.threads = threads;
    let mut cit = CrossInsightTrader::new(panel, cfg);
    let report = cit.train(panel);
    assert!(report.steps >= 50);
    (report.update_rewards, cit.export_params())
}

#[test]
fn single_and_multi_threaded_training_are_bit_identical() {
    let p = panel();
    let (rewards_1, params_1) = train_with_threads(&p, 1);
    let (rewards_4, params_4) = train_with_threads(&p, 4);

    assert_eq!(rewards_1, rewards_4, "learning curves diverged");
    assert_eq!(params_1.len(), params_4.len());
    for ((name_1, vals_1), (name_4, vals_4)) in params_1.iter().zip(&params_4) {
        assert_eq!(name_1, name_4, "parameter registration order changed");
        assert_eq!(
            vals_1, vals_4,
            "parameter {name_1} diverged across thread counts"
        );
    }
}

/// Bit-pattern fingerprint of a training run: every update reward and
/// every exported parameter, via `to_bits` (f64/f32 equality would hide
/// NaN or signed-zero drift).
fn run_fingerprint(panel: &AssetPanel, threads: usize) -> Vec<u64> {
    let mut cfg = CitConfig::smoke(23);
    cfg.total_steps = 30;
    cfg.rollout = 10;
    cfg.threads = threads;
    let mut cit = CrossInsightTrader::new(panel, cfg);
    let report = cit.train(panel);
    let mut bits: Vec<u64> = report.update_rewards.iter().map(|r| r.to_bits()).collect();
    for (_, vals) in cit.export_params() {
        bits.extend(vals.iter().map(|v| u64::from(v.to_bits())));
    }
    bits
}

#[test]
fn training_is_bit_identical_across_tiling_schemes_and_threads() {
    // Three deliberately different schemes (the default, a square register
    // tile with tiny cache blocks, and a narrow tile), each run under 1, 2
    // and 4 worker threads. All nine fingerprints must be identical: the
    // kernels' seed-from-out ascending-p accumulation order makes tile
    // shape and thread count pure wall-clock knobs.
    let p = panel();
    let schemes = [
        TilingScheme::new(4, 16, 64, 256, 256),
        TilingScheme::new(8, 8, 16, 32, 32),
        TilingScheme::new(2, 8, 8, 8, 16),
    ];
    let mut reference: Option<Vec<u64>> = None;
    for scheme in schemes {
        force_scheme(Some(scheme));
        for threads in [1, 2, 4] {
            let bits = run_fingerprint(&p, threads);
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(
                    r,
                    &bits,
                    "training diverged under scheme {} with {threads} threads",
                    scheme.encode()
                ),
            }
        }
    }
    force_scheme(None);
}

#[test]
fn decisions_are_thread_count_invariant() {
    let p = panel();
    let decide = |threads: usize| {
        let mut cfg = CitConfig::smoke(7);
        cfg.threads = threads;
        let mut cit = CrossInsightTrader::new(&p, cfg);
        let prev = vec![vec![1.0 / 3.0; 3]; cfg.num_policies];
        cit.decide(&p, 100, &prev, true)
    };
    let a = decide(1);
    let b = decide(8);
    assert_eq!(a.final_action, b.final_action);
    for (x, y) in a.pre_actions.iter().zip(&b.pre_actions) {
        assert_eq!(x, y);
    }
}
