//! Thread-count determinism: the split-graph parallel update must produce
//! bit-identical training results regardless of how many worker threads
//! execute it. Thread count only changes wall-clock, never values.

use cit_core::{CitConfig, CrossInsightTrader};
use cit_market::{AssetPanel, SynthConfig};

fn panel() -> AssetPanel {
    SynthConfig {
        num_assets: 3,
        num_days: 220,
        test_start: 160,
        ..Default::default()
    }
    .generate()
}

fn train_with_threads(panel: &AssetPanel, threads: usize) -> (Vec<f64>, Vec<(String, Vec<f32>)>) {
    let mut cfg = CitConfig::smoke(42);
    cfg.total_steps = 50;
    cfg.rollout = 10;
    cfg.threads = threads;
    let mut cit = CrossInsightTrader::new(panel, cfg);
    let report = cit.train(panel);
    assert!(report.steps >= 50);
    (report.update_rewards, cit.export_params())
}

#[test]
fn single_and_multi_threaded_training_are_bit_identical() {
    let p = panel();
    let (rewards_1, params_1) = train_with_threads(&p, 1);
    let (rewards_4, params_4) = train_with_threads(&p, 4);

    assert_eq!(rewards_1, rewards_4, "learning curves diverged");
    assert_eq!(params_1.len(), params_4.len());
    for ((name_1, vals_1), (name_4, vals_4)) in params_1.iter().zip(&params_4) {
        assert_eq!(name_1, name_4, "parameter registration order changed");
        assert_eq!(
            vals_1, vals_4,
            "parameter {name_1} diverged across thread counts"
        );
    }
}

#[test]
fn decisions_are_thread_count_invariant() {
    let p = panel();
    let decide = |threads: usize| {
        let mut cfg = CitConfig::smoke(7);
        cfg.threads = threads;
        let mut cit = CrossInsightTrader::new(&p, cfg);
        let prev = vec![vec![1.0 / 3.0; 3]; cfg.num_policies];
        cit.decide(&p, 100, &prev, true)
    };
    let a = decide(1);
    let b = decide(8);
    assert_eq!(a.final_action, b.final_action);
    for (x, y) in a.pre_actions.iter().zip(&b.pre_actions) {
        assert_eq!(x, y);
    }
}
