//! # cit-core
//!
//! The Cross-Insight Trader (ICDE 2024): a two-step RL portfolio manager
//! that (1) learns `n` horizon-specific policies, each fed one DWT
//! frequency band of the price window, and (2) fuses their pre-decisions
//! through a cross-insight policy, with a centralised critic and a
//! COMA-style counterfactual advantage for every horizon policy.
//!
//! ```no_run
//! use cit_core::{CitConfig, CrossInsightTrader};
//! use cit_market::{run_test_period, EnvConfig, MarketPreset};
//!
//! let panel = MarketPreset::Hk.scaled(9, 24).generate();
//! let mut trader = CrossInsightTrader::new(&panel, CitConfig::default());
//! trader.train(&panel);
//! let result = run_test_period(&panel, EnvConfig::default(), &mut trader);
//! println!("CIT: AR {:.3} SR {:.2}", result.metrics.ar, result.metrics.sr);
//! ```

#![deny(missing_docs)]

mod actor;
mod config;
mod critic;
mod decomposition;
mod error;
mod eval;
mod inference;
mod regime;
mod trainer;

pub use actor::{one_hot, CitActor};
pub use config::{ActorBody, CitConfig, CriticMode};
pub use critic::{market_state, CentralCritic, CriticNet, DecCritics};
pub use decomposition::{horizon_windows, raw_window, HorizonWindowCache};
pub use error::CitError;
pub use eval::{per_policy_curves, PolicyCurves};
pub use inference::{DecisionModel, InferenceOutput};
pub use regime::{regime_features, RegimeFeatures};
pub use trainer::{CrossInsightTrader, Decision};
