//! Inference-only decision path: a frozen, shareable model for serving.
//!
//! Training needs mutable state everywhere — an RNG stream for
//! exploration, Adam moments, the environment, the supervisor. Serving
//! needs none of that: evaluation decisions are deterministic mean
//! actions, so a trained checkpoint can be loaded once into an immutable
//! [`DecisionModel`] and shared (`Arc<DecisionModel>`) across any number
//! of request threads. The only per-caller mutable state is the sliding
//! [`HorizonWindowCache`] and each policy's previous action, which live
//! with the caller (one per serving session), not with the model.
//!
//! [`DecisionModel::decide`] is **bitwise identical** to
//! [`CrossInsightTrader::decide`] with `stochastic = false` on the same
//! window — both run the same forward graphs on the same parameters —
//! which is what makes served decisions provably equal to offline
//! backtests of the same checkpoint (enforced by a parity test below and
//! end-to-end by `crates/serve/tests/roundtrip.rs`).

use crate::actor::{one_hot, CitActor};
use crate::config::CitConfig;
use crate::decomposition::{raw_window, HorizonWindowCache};
use crate::error::CitError;
#[cfg(doc)]
use crate::trainer::CrossInsightTrader;
use crate::trainer::{build_networks, temperature_action, Networks};
use cit_market::AssetPanel;
use cit_nn::{serialize, ParamStore};
use cit_tensor::GraphPool;
use std::path::Path;

/// A frozen cross-insight trader for inference: parameters plus the actor
/// networks, no optimiser, no RNG, no environment.
///
/// The model is `Send + Sync`; [`DecisionModel::decide`] takes `&self`, so
/// one instance behind an `Arc` serves concurrent requests without locks.
/// Graph arenas are recycled through an internal thread-safe
/// [`GraphPool`].
///
/// ```no_run
/// use cit_core::{CitConfig, DecisionModel};
///
/// let model = DecisionModel::from_checkpoint("run.cit", CitConfig::default(), 9)?;
/// let mut cache = model.new_cache();
/// let prev = model.uniform_prev_actions();
/// // panel: any AssetPanel holding >= cfg.window days ending at day t.
/// # let panel = cit_market::SynthConfig::default().generate();
/// let out = model.decide(&panel, panel.num_days() - 1, &prev, &mut cache);
/// assert!((out.final_action.iter().sum::<f64>() - 1.0).abs() < 1e-6);
/// # Ok::<(), cit_core::CitError>(())
/// ```
pub struct DecisionModel {
    cfg: CitConfig,
    num_assets: usize,
    store: ParamStore,
    horizon_actors: Vec<CitActor>,
    cross_actor: CitActor,
    pool: GraphPool,
}

/// Everything one deterministic inference pass produces.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutput {
    /// Per-horizon pre-decisions `a^k = softmax(τ·μ^k)`.
    pub pre_actions: Vec<Vec<f64>>,
    /// The fused portfolio `ã = softmax(τ·μ̃)` to execute.
    pub final_action: Vec<f64>,
}

impl DecisionModel {
    /// Builds an untrained model (fresh seeded initialisation) — mainly
    /// useful for tests and warm-up benchmarks.
    pub fn untrained(cfg: CitConfig, num_assets: usize) -> Result<Self, CitError> {
        // Serving goes through here (from_checkpoint included): make sure
        // the kernel autotuner is active before the first decide.
        cit_compute::autotune::ensure_installed();
        let Networks {
            store,
            horizon_actors,
            cross_actor,
            ..
        } = build_networks(&cfg, num_assets)?;
        Ok(DecisionModel {
            cfg,
            num_assets,
            store,
            horizon_actors,
            cross_actor,
            pool: GraphPool::new(),
        })
    }

    /// Loads a checkpoint written by [`CrossInsightTrader::save`] (v1 or
    /// v2) into a frozen inference model. Any training state the file
    /// carries (optimiser moments, RNG, trainer progress) is ignored —
    /// only the parameters matter here.
    ///
    /// `cfg` and `num_assets` must describe the architecture the
    /// checkpoint was trained with; a mismatch surfaces as a typed
    /// [`CitError::Checkpoint`] naming the offending parameter.
    pub fn from_checkpoint(
        path: impl AsRef<Path>,
        cfg: CitConfig,
        num_assets: usize,
    ) -> Result<Self, CitError> {
        let mut model = Self::untrained(cfg, num_assets)?;
        serialize::load(&mut model.store, path)?;
        Ok(model)
    }

    /// The configuration in force.
    pub fn config(&self) -> &CitConfig {
        &self.cfg
    }

    /// Number of assets `m` the model allocates portfolios over.
    pub fn num_assets(&self) -> usize {
        self.num_assets
    }

    /// Total parameters held by the frozen store.
    pub fn num_params(&self) -> usize {
        self.store.num_elements()
    }

    /// Days of price history a caller must supply before the first
    /// decision (the look-back window `z`).
    pub fn min_history(&self) -> usize {
        self.cfg.window
    }

    /// A fresh sliding-window DWT cache sized for this model. Each
    /// serving session owns one; it is the only mutable inference state
    /// besides the previous actions.
    pub fn new_cache(&self) -> HorizonWindowCache {
        HorizonWindowCache::new(self.num_assets, self.cfg.window, self.cfg.num_policies)
    }

    /// The uniform previous-action set every fresh session starts from —
    /// the same initial state [`CrossInsightTrader`] evaluation uses.
    pub fn uniform_prev_actions(&self) -> Vec<Vec<f64>> {
        let m = self.num_assets;
        vec![vec![1.0 / m as f64; m]; self.cfg.num_policies]
    }

    /// One deterministic decision at day `t` of `panel`.
    ///
    /// `prev_actions` holds each horizon policy's previous pre-decision
    /// (start from [`DecisionModel::uniform_prev_actions`], then feed back
    /// `pre_actions` of the previous output); `cache` is the session's
    /// [`HorizonWindowCache`]. Requires `t + 1 >= window` days of history.
    ///
    /// # Panics
    /// Panics when the panel's asset count does not match the model or
    /// fewer than `window` days of history exist at `t`.
    pub fn decide(
        &self,
        panel: &AssetPanel,
        t: usize,
        prev_actions: &[Vec<f64>],
        cache: &mut HorizonWindowCache,
    ) -> InferenceOutput {
        assert_eq!(
            panel.num_assets(),
            self.num_assets,
            "DecisionModel::decide: panel has {} assets, model has {}",
            panel.num_assets(),
            self.num_assets
        );
        let (n, z) = (self.cfg.num_policies, self.cfg.window);
        assert_eq!(prev_actions.len(), n, "need one previous action per policy");
        let windows = cache.windows(panel, t);
        let raw = raw_window(panel, t, z);
        let mut pre_actions = Vec::with_capacity(n);
        for (k, window) in windows.iter().enumerate() {
            let mut extra = one_hot(k, n);
            extra.extend(prev_actions[k].iter().map(|&v| v as f32));
            let mean =
                self.horizon_actors[k].mean_numeric_in(&self.store, &self.pool, window, &extra);
            pre_actions.push(temperature_action(&mean, self.cfg.action_temperature));
        }
        let cross_extra: Vec<f32> = pre_actions
            .iter()
            .flat_map(|a| a.iter().map(|&v| v as f32))
            .collect();
        let cross_mean =
            self.cross_actor
                .mean_numeric_in(&self.store, &self.pool, &raw, &cross_extra);
        let final_action = temperature_action(&cross_mean, self.cfg.action_temperature);
        InferenceOutput {
            pre_actions,
            final_action,
        }
    }
}

// The whole point of the type: shareable across request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DecisionModel>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::CrossInsightTrader;
    use cit_market::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 3,
            num_days: 220,
            test_start: 160,
            ..Default::default()
        }
        .generate()
    }

    /// The serving contract: a checkpoint round-tripped through
    /// `DecisionModel` decides bitwise-identically to the trained trader's
    /// deterministic evaluation path, over a whole prev-action-carrying
    /// sweep.
    #[test]
    fn decisions_match_trainer_bitwise() {
        let p = panel();
        let cfg = CitConfig::smoke(11);
        let mut trader = CrossInsightTrader::new(&p, cfg);
        trader.train(&p);
        let dir = std::env::temp_dir().join(format!("cit_inference_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("parity.cit");
        trader.save(&ckpt).unwrap();

        let model = DecisionModel::from_checkpoint(&ckpt, cfg, 3).unwrap();
        let mut cache = model.new_cache();
        let mut prev_model = model.uniform_prev_actions();
        let mut prev_trader = model.uniform_prev_actions();
        for t in p.test_start()..p.test_start() + 20 {
            let served = model.decide(&p, t, &prev_model, &mut cache);
            let offline = trader.decide(&p, t, &prev_trader, false);
            assert_eq!(
                served.final_action, offline.final_action,
                "final action diverged at t={t}"
            );
            assert_eq!(
                served.pre_actions, offline.pre_actions,
                "pre-decisions diverged at t={t}"
            );
            prev_model = served.pre_actions;
            prev_trader = offline.pre_actions.clone();
        }
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn untrained_model_produces_valid_portfolios() {
        let p = panel();
        let cfg = CitConfig::smoke(3);
        let model = DecisionModel::untrained(cfg, 3).unwrap();
        let mut cache = model.new_cache();
        let out = model.decide(&p, 100, &model.uniform_prev_actions(), &mut cache);
        assert_eq!(out.pre_actions.len(), cfg.num_policies);
        for a in out
            .pre_actions
            .iter()
            .chain(std::iter::once(&out.final_action))
        {
            assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(a.iter().all(|w| w.is_finite() && *w >= 0.0));
        }
    }

    #[test]
    fn mismatched_checkpoint_is_a_typed_error() {
        let p = panel();
        let cfg = CitConfig::smoke(4);
        let mut trader = CrossInsightTrader::new(&p, cfg);
        trader.train(&p);
        let dir = std::env::temp_dir().join(format!("cit_inference_mm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("mismatch.cit");
        trader.save(&ckpt).unwrap();
        // Wrong asset count: shapes cannot match.
        let err = match DecisionModel::from_checkpoint(&ckpt, cfg, 4) {
            Err(e) => e,
            Ok(_) => panic!("mismatched checkpoint must not load"),
        };
        assert!(matches!(err, CitError::Checkpoint(_)), "{err}");
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn bad_config_is_rejected() {
        let mut cfg = CitConfig::smoke(5);
        cfg.num_policies = 0;
        assert!(matches!(
            DecisionModel::untrained(cfg, 3),
            Err(CitError::Config(_))
        ));
    }
}
