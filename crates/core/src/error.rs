//! Typed errors for trader construction, training and checkpointing —
//! replacing the `panic!`/`assert!` config-error paths so callers
//! (walk-forward runners, services) can recover instead of aborting.

use cit_nn::serialize::CheckpointError;

/// Errors raised by [`crate::CrossInsightTrader`].
#[derive(Debug)]
pub enum CitError {
    /// The configuration is inconsistent (window too short for the DWT
    /// levels, no policies, training span too short, …).
    Config(String),
    /// Saving or loading a checkpoint failed.
    Checkpoint(CheckpointError),
    /// Training diverged beyond the supervisor's recovery budget: health
    /// checks kept failing after `rollbacks` rollback/retry attempts.
    Diverged {
        /// Optimiser update index at which the final failure occurred.
        update: usize,
        /// Number of rollbacks attempted before giving up.
        rollbacks: usize,
        /// The failing health check (human-readable).
        reason: String,
    },
}

impl std::fmt::Display for CitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CitError::Config(m) => write!(f, "configuration error: {m}"),
            CitError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            CitError::Diverged {
                update,
                rollbacks,
                reason,
            } => write!(
                f,
                "training diverged at update {update} after {rollbacks} rollback(s): {reason}"
            ),
        }
    }
}

impl std::error::Error for CitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CitError::Checkpoint(e) => Some(e),
            CitError::Config(_) | CitError::Diverged { .. } => None,
        }
    }
}

impl From<CheckpointError> for CitError {
    fn from(e: CheckpointError) -> Self {
        CitError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CitError::Config("window 4 too short".into());
        assert!(e.to_string().contains("too short"));
        let e: CitError = CheckpointError::Malformed("bad header".into()).into();
        assert!(e.to_string().contains("bad header"));
    }
}
