//! Market-regime features for meta-routing.
//!
//! The MetaTrader line of work (arXiv 2210.01774) picks among whole
//! trained policies per market state; the serving plane's `"auto"` model
//! slot needs a compact, deterministic description of the state an
//! `open` history arrives in. [`regime_features`] condenses a trailing
//! price window into exactly that: realised volatility, trend drift and
//! the DWT band-energy distribution of the cross-asset log-return
//! series — the same Haar bands the horizon policies themselves see.
//!
//! The function is **total**: it runs *before* session validation, on
//! raw wire input, so malformed rows (wrong width, non-positive or
//! non-finite prices) and too-short histories degrade to zero features
//! instead of panicking. Zero features still route deterministically
//! (the router's scoring is seeded), and session validation rejects the
//! bad input right after with a proper typed error.

use cit_dwt::horizon_scales;
use cit_market::NUM_FEATURES;

/// A compact description of the market state a price window is in.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeFeatures {
    /// Realised volatility: population std of the cross-asset mean
    /// log-return over the window (per day, unitless).
    pub volatility: f64,
    /// Trend drift: mean of the same series (per day, unitless).
    pub trend: f64,
    /// Relative Haar band energies of the series, longest horizon first,
    /// normalised to sum to 1 (all zero for degenerate input).
    pub band_energy: Vec<f64>,
}

impl RegimeFeatures {
    /// The features flattened into one vector
    /// (`[volatility, trend, band_energy...]`) — the dot-product basis
    /// deterministic routers score slots with.
    pub fn as_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 + self.band_energy.len());
        v.push(self.volatility);
        v.push(self.trend);
        v.extend_from_slice(&self.band_energy);
        v
    }
}

/// Extracts [`RegimeFeatures`] from the trailing `window` days of `rows`
/// (wire-format `[m·4]` OHLC rows). `bands` asks for that many Haar
/// bands, clamped to what the window length supports. Never panics:
/// degenerate input (too short, malformed rows, non-positive closes)
/// yields zero volatility/trend and `bands` zero energies.
pub fn regime_features(
    rows: &[Vec<f64>],
    num_assets: usize,
    window: usize,
    bands: usize,
) -> RegimeFeatures {
    let zero = || RegimeFeatures {
        volatility: 0.0,
        trend: 0.0,
        band_energy: vec![0.0; bands.max(1)],
    };
    let width = num_assets * NUM_FEATURES;
    if num_assets == 0 || rows.len() < 2 {
        return zero();
    }
    let start = rows.len().saturating_sub(window.max(2));
    // Cross-asset mean close per day; a single malformed day voids the
    // whole window (cheaper and more predictable than interpolating).
    let mut closes = Vec::with_capacity(rows.len() - start);
    for row in &rows[start..] {
        if row.len() != width {
            return zero();
        }
        let mut mean = 0.0;
        for a in 0..num_assets {
            let close = row[a * NUM_FEATURES + 3];
            if !(close.is_finite() && close > 0.0) {
                return zero();
            }
            mean += close;
        }
        closes.push(mean / num_assets as f64);
    }
    let returns: Vec<f64> = closes.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
    if returns.is_empty() || returns.iter().any(|r| !r.is_finite()) {
        return zero();
    }
    let n = returns.len() as f64;
    let trend = returns.iter().sum::<f64>() / n;
    let volatility = (returns
        .iter()
        .map(|r| (r - trend) * (r - trend))
        .sum::<f64>()
        / n)
        .sqrt();
    // Haar depth is bounded by the series length: `decompose` halves the
    // signal per level, so allow at most ⌊log2(len)⌋ detail levels.
    let max_bands = (usize::BITS - 1 - returns.len().leading_zeros()) as usize + 1;
    let bands_eff = bands.clamp(1, max_bands);
    let mut band_energy = vec![0.0; bands.max(1)];
    let scales = horizon_scales(&returns, bands_eff);
    let mut total = 0.0;
    for (i, band) in scales.iter().enumerate() {
        let e: f64 = band.iter().map(|x| x * x).sum();
        band_energy[i] = e;
        total += e;
    }
    if total > 0.0 {
        for e in &mut band_energy {
            *e /= total;
        }
    }
    RegimeFeatures {
        volatility,
        trend,
        band_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_rows(days: usize, assets: usize, price: f64) -> Vec<Vec<f64>> {
        (0..days).map(|_| vec![price; assets * 4]).collect()
    }

    #[test]
    fn degenerate_input_yields_zero_features_without_panicking() {
        for rows in [
            vec![],
            flat_rows(1, 2, 100.0),
            vec![vec![1.0; 3]],                      // wrong width
            vec![vec![100.0; 8], vec![-1.0; 8]],     // non-positive close
            vec![vec![100.0; 8], vec![f64::NAN; 8]], // non-finite close
        ] {
            let f = regime_features(&rows, 2, 30, 3);
            assert_eq!(f.volatility, 0.0);
            assert_eq!(f.trend, 0.0);
            assert_eq!(f.band_energy, vec![0.0; 3]);
        }
        // Zero assets must not divide by zero.
        let f = regime_features(&flat_rows(10, 2, 100.0), 0, 30, 3);
        assert_eq!(f.volatility, 0.0);
    }

    #[test]
    fn flat_prices_have_zero_volatility_and_trend() {
        let f = regime_features(&flat_rows(40, 2, 100.0), 2, 30, 3);
        assert_eq!(f.volatility, 0.0);
        assert_eq!(f.trend, 0.0);
        // Zero-return series carries zero energy in every band.
        assert!(f.band_energy.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn trending_prices_have_positive_trend_and_normalised_bands() {
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|t| {
                let base = 100.0 * (1.01f64).powi(t);
                let wiggle = 1.0 + 0.02 * ((t % 5) as f64 - 2.0) / 2.0;
                vec![base * wiggle; 8]
            })
            .collect();
        let f = regime_features(&rows, 2, 32, 3);
        assert!(f.trend > 0.0, "upward drift should show as positive trend");
        assert!(f.volatility > 0.0);
        let total: f64 = f.band_energy.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "band energies should sum to 1");
    }

    #[test]
    fn features_are_deterministic_and_window_limited() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|t| vec![100.0 + (t as f64).sin().abs() * 5.0 + 1.0; 8])
            .collect();
        let a = regime_features(&rows, 2, 30, 3);
        let b = regime_features(&rows, 2, 30, 3);
        assert_eq!(a, b);
        // Only the trailing window matters: prepending history far in the
        // past must not change the features.
        let longer: Vec<Vec<f64>> = flat_rows(50, 2, 42.0)
            .into_iter()
            .chain(rows.iter().cloned())
            .collect();
        // (window 30 over the same trailing rows)
        let c = regime_features(&longer, 2, 30, 3);
        assert_eq!(a, c);
    }

    #[test]
    fn band_count_is_clamped_for_short_windows() {
        // 4 days → 3 returns → at most 2 bands; asking for 6 must not
        // panic and pads the rest with zeros.
        let f = regime_features(&flat_rows(4, 1, 100.0), 1, 4, 6);
        assert_eq!(f.band_energy.len(), 6);
    }
}
