//! Configuration of the cross-insight trader and its ablation variants.

/// The actor body architecture (paper Section V-C2 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorBody {
    /// The paper's design: TCN + spatial attention + residual ("ours").
    TcnAttention,
    /// TCN replaced by a GRU, attention kept ("ours (GRU)").
    GruAttention,
    /// A plain GRU over the flattened window ("GRU").
    GruOnly,
    /// A plain MLP over the flattened window ("MLP").
    MlpOnly,
}

impl ActorBody {
    /// Display label matching Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            ActorBody::TcnAttention => "ours",
            ActorBody::GruAttention => "ours (GRU)",
            ActorBody::GruOnly => "GRU",
            ActorBody::MlpOnly => "MLP",
        }
    }
}

/// How the critic evaluates the policies (paper Section V-C3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriticMode {
    /// Centralised critic + counterfactual per-policy advantages (ours).
    Counterfactual,
    /// Centralised critic, every policy optimised with the same Q-value.
    SharedQ,
    /// One decentralised critic per policy ("Dec-critic").
    Decentralized,
}

impl CriticMode {
    /// Display label matching Figure 8.
    pub fn label(self) -> &'static str {
        match self {
            CriticMode::Counterfactual => "counterfactual",
            CriticMode::SharedQ => "shared-Q",
            CriticMode::Decentralized => "Dec-critic",
        }
    }
}

/// Full configuration of a cross-insight trader.
#[derive(Debug, Clone, Copy)]
pub struct CitConfig {
    /// Number of horizon-specific policies `n` (paper best: 5).
    pub num_policies: usize,
    /// Look-back window `z`.
    pub window: usize,
    /// TCN hidden width `f`.
    pub hidden: usize,
    /// TCN residual levels (dilations 1, 2, 4, …).
    pub tcn_levels: usize,
    /// Convolution kernel width.
    pub kernel: usize,
    /// Head hidden width.
    pub head_hidden: usize,
    /// Critic hidden width.
    pub critic_hidden: usize,
    /// Adam learning rate (paper: 1e-4).
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Discount γ.
    pub gamma: f64,
    /// TD(λ) mixing coefficient.
    pub lambda: f64,
    /// n-step horizon `N` (paper: 5).
    pub nstep: usize,
    /// Steps per rollout before an update.
    pub rollout: usize,
    /// Total training environment steps (paper: 50 000).
    pub total_steps: usize,
    /// Initial Gaussian log-std of every policy.
    pub init_log_std: f32,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Proportional transaction cost.
    pub transaction_cost: f64,
    /// RNG seed.
    pub seed: u64,
    /// Softmax temperature applied to latent scores when forming portfolio
    /// weights: `a = softmax(τ·u)`. τ > 1 lets policies express
    /// concentrated portfolios with modest latent magnitudes.
    pub action_temperature: f32,
    /// Actor body variant.
    pub actor_body: ActorBody,
    /// Critic variant.
    pub critic_mode: CriticMode,
    /// Worker threads for the per-horizon forward/backward passes.
    /// `0` means "auto": honour `CIT_THREADS`, else hardware parallelism.
    /// Thread count never changes results — only wall-clock.
    pub threads: usize,
    /// Auto-checkpoint period in optimiser updates: when non-zero and a
    /// checkpoint path is set on the trader, a full v2 checkpoint (params +
    /// optimizer + RNG + trainer progress) is written atomically every this
    /// many updates, so a killed run resumes bit-identically. `0` disables
    /// auto-checkpointing.
    pub checkpoint_every: usize,
    /// Training-supervisor budget: how many consecutive rollbacks to a
    /// known-good snapshot are attempted after a failed health check
    /// (non-finite loss/advantage/gradient, grad-norm spike) before the
    /// run surfaces [`crate::CitError::Diverged`]. `0` disables the
    /// supervisor entirely (failures abort as before).
    pub max_rollbacks: usize,
    /// Multiplier applied to the learning rate on every supervisor
    /// rollback (e.g. `0.5` halves it). `1.0` retries at the same rate —
    /// combined with fire-once fault injection this reproduces the
    /// uninjected run bitwise after recovery.
    pub lr_backoff: f32,
    /// Grad-norm spike threshold: a pre-clip gradient norm exceeding
    /// `grad_spike_factor ×` the rolling median of recent updates fails
    /// the health check. `0.0` disables spike detection (non-finite norms
    /// are always failures).
    pub grad_spike_factor: f64,
    /// Trainer heartbeat period in optimiser updates: every this many
    /// updates a `train.heartbeat` record (updates/s, loss and grad-norm
    /// EWMAs, rollback count, progress) is emitted and flushed so
    /// multi-hour runs are monitorable from the JSONL stream. `0`
    /// disables heartbeats. Diagnostics only — never changes training
    /// results.
    pub heartbeat_every: usize,
}

impl Default for CitConfig {
    fn default() -> Self {
        CitConfig {
            num_policies: 5,
            window: 32,
            hidden: 8,
            tcn_levels: 2,
            kernel: 3,
            head_hidden: 32,
            critic_hidden: 64,
            lr: 3e-4,
            weight_decay: 1e-5,
            gamma: 0.9,
            lambda: 0.9,
            nstep: 5,
            rollout: 32,
            total_steps: 3_000,
            init_log_std: -1.0,
            entropy_coef: 1e-3,
            grad_clip: 5.0,
            transaction_cost: 1e-3,
            seed: 0,
            action_temperature: 4.0,
            actor_body: ActorBody::TcnAttention,
            critic_mode: CriticMode::Counterfactual,
            threads: 0,
            checkpoint_every: 0,
            max_rollbacks: 3,
            lr_backoff: 0.5,
            grad_spike_factor: 0.0,
            heartbeat_every: 20,
        }
    }
}

impl CitConfig {
    /// A tiny configuration for smoke tests.
    pub fn smoke(seed: u64) -> Self {
        CitConfig {
            num_policies: 2,
            window: 16,
            hidden: 4,
            tcn_levels: 1,
            head_hidden: 8,
            critic_hidden: 16,
            rollout: 16,
            total_steps: 200,
            heartbeat_every: 5,
            seed,
            ..Default::default()
        }
    }

    /// First usable decision day (window plus feature look-back).
    pub fn min_start(&self) -> usize {
        self.window.max(cit_rl::features::FEAT_LOOKBACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_structure() {
        let c = CitConfig::default();
        assert_eq!(c.num_policies, 5);
        assert_eq!(c.nstep, 5);
        assert_eq!(c.actor_body, ActorBody::TcnAttention);
        assert_eq!(c.critic_mode, CriticMode::Counterfactual);
    }

    #[test]
    fn labels_are_paper_labels() {
        assert_eq!(ActorBody::TcnAttention.label(), "ours");
        assert_eq!(ActorBody::GruAttention.label(), "ours (GRU)");
        assert_eq!(CriticMode::Decentralized.label(), "Dec-critic");
    }
}
