//! Per-policy evaluation used by the paper's Figures 5 and 6: run the test
//! period once, tracking the wealth of each horizon policy's standalone
//! pre-decisions alongside the fused cross-insight policy and the index.

use crate::trainer::CrossInsightTrader;
use cit_market::AssetPanel;

/// Wealth curves of every horizon policy, the fused policy and the market
/// index over `[start, end)`, plus per-policy daily returns.
pub struct PolicyCurves {
    /// `(label, wealth-curve)` pairs: `policy 1..n`, then `fused`, then
    /// `index`.
    pub wealth: Vec<(String, Vec<f64>)>,
    /// `(label, daily-return series)` for the same entries except the index.
    pub daily_returns: Vec<(String, Vec<f64>)>,
}

/// Evaluates each policy's standalone trading performance (Figures 5/6).
///
/// Horizon policy `k`'s curve executes its own pre-decision `a^k` as the
/// portfolio; the fused curve executes the cross-insight action. All curves
/// share one deterministic evaluation pass so the pre-decisions feeding the
/// cross-insight policy are exactly the ones traded by the per-policy
/// curves.
pub fn per_policy_curves(
    trader: &mut CrossInsightTrader,
    panel: &AssetPanel,
    start: usize,
    end: usize,
    transaction_cost: f64,
) -> PolicyCurves {
    assert!(start + 1 < end && end <= panel.num_days(), "invalid span");
    let m = panel.num_assets();
    let n = trader.config().num_policies;
    let uniform = vec![1.0 / m as f64; m];
    let mut prev = vec![uniform.clone(); n];
    let mut held: Vec<Vec<f64>> = vec![uniform.clone(); n + 1];
    let mut wealth = vec![1.0f64; n + 1];
    let mut curves: Vec<Vec<f64>> = vec![vec![1.0]; n + 1];
    let mut daily: Vec<Vec<f64>> = vec![Vec::new(); n + 1];

    for t in start..end - 1 {
        let (pre, fused) = trader.policy_actions(panel, t, &prev);
        prev = pre.clone();
        let rel = panel.price_relatives(t + 1);
        let mut portfolios = pre;
        portfolios.push(fused);
        for (j, target) in portfolios.iter().enumerate() {
            let turnover: f64 = target
                .iter()
                .zip(&held[j])
                .map(|(a, b)| (a - b).abs())
                .sum();
            let growth: f64 = target.iter().zip(&rel).map(|(w, r)| w * r).sum();
            let net = (growth * (1.0 - transaction_cost * turnover)).max(1e-9);
            wealth[j] *= net;
            curves[j].push(wealth[j]);
            daily[j].push(net - 1.0);
            let mut drifted: Vec<f64> = target.iter().zip(&rel).map(|(w, r)| w * r).collect();
            let norm: f64 = drifted.iter().sum();
            if norm > 0.0 {
                drifted.iter_mut().for_each(|w| *w /= norm);
            }
            held[j] = drifted;
        }
    }

    let mut labelled_wealth: Vec<(String, Vec<f64>)> = curves
        .iter()
        .enumerate()
        .map(|(j, c)| {
            let label = if j < n {
                format!("policy {}", j + 1)
            } else {
                "fused".to_string()
            };
            (label, c.clone())
        })
        .collect();
    // Index: equal buy-and-hold from `start`.
    let index = cit_market::market_result(panel, start, end);
    labelled_wealth.push(("index".to_string(), index.wealth));

    let labelled_daily = daily
        .into_iter()
        .enumerate()
        .map(|(j, d)| {
            let label = if j < n {
                format!("policy {}", j + 1)
            } else {
                "fused".to_string()
            };
            (label, d)
        })
        .collect();

    PolicyCurves {
        wealth: labelled_wealth,
        daily_returns: labelled_daily,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CitConfig;
    use cit_market::SynthConfig;

    #[test]
    fn curves_have_expected_shape() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 200,
            test_start: 150,
            ..Default::default()
        }
        .generate();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(8));
        let curves = per_policy_curves(&mut cit, &p, 150, 200, 1e-3);
        // 2 policies + fused + index
        assert_eq!(curves.wealth.len(), 4);
        assert_eq!(curves.daily_returns.len(), 3);
        for (label, c) in &curves.wealth {
            assert_eq!(c.len(), 50, "{label}");
            assert!((c[0] - 1.0).abs() < 1e-12);
        }
        for (_, d) in &curves.daily_returns {
            assert_eq!(d.len(), 49);
        }
    }

    #[test]
    fn policies_trade_differently() {
        let p = SynthConfig {
            num_assets: 4,
            num_days: 200,
            test_start: 150,
            ..Default::default()
        }
        .generate();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(9));
        let curves = per_policy_curves(&mut cit, &p, 150, 200, 0.0);
        let a = &curves.wealth[0].1;
        let b = &curves.wealth[1].1;
        let diff: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.0, "horizon policies should not be identical");
    }
}
