//! Horizon-specific observation windows (paper Section IV-A).
//!
//! The OHLC window of each asset/feature series is split with the
//! multi-level Haar DWT into `n` frequency bands; band `k` is the input
//! `P^k` of horizon policy `k` (k = 0 → longest horizon). By linearity the
//! bands sum to the raw window, so no information is lost or duplicated.
//!
//! The decomposition runs on the **raw price series** and normalises the
//! bands afterwards: with anchor `a = close(t, i)`, the normalised window
//! `p/a − 1` decomposes as `band₀/a − 1` (the constant `−1` has no detail
//! energy, so it lives entirely in the approximation band) and `bandₖ/a`
//! for `k ≥ 1`. Decomposing before normalising is what makes the windows
//! cacheable: the raw series of day `t` and day `t+1` overlap bitwise,
//! while their normalised versions differ everywhere because the anchor
//! moves. [`HorizonWindowCache`] exploits that overlap through
//! [`SlidingDwt`] and produces outputs bitwise identical to
//! [`horizon_windows`].

use cit_dwt::{horizon_scales, DwtCacheStats, SlidingDwt};
use cit_market::{AssetPanel, Feature, NUM_FEATURES};
use cit_tensor::Tensor;

const FEATURES: [Feature; NUM_FEATURES] =
    [Feature::Open, Feature::High, Feature::Low, Feature::Close];

/// The raw normalised window as a `[m, d, z]` tensor (the cross-insight
/// policy's price input).
pub fn raw_window(panel: &AssetPanel, t: usize, z: usize) -> Tensor {
    let m = panel.num_assets();
    let flat = panel.normalized_window(t, z);
    let data: Vec<f32> = flat.into_iter().map(|v| v as f32).collect();
    Tensor::from_vec(&[m, NUM_FEATURES, z], data)
}

/// Raw (unnormalised) prices of one asset/feature series over the window
/// ending at day `t`.
fn raw_series(panel: &AssetPanel, t: usize, z: usize, i: usize, f: Feature) -> Vec<f64> {
    (0..z).map(|s| panel.price(t + 1 - z + s, i, f)).collect()
}

/// Writes the normalised bands of one asset/feature series into the output
/// tensors. Shared by the cached and uncached paths so both produce
/// bit-identical tensors.
fn write_bands(
    out: &mut [Tensor],
    i: usize,
    fi: usize,
    z: usize,
    anchor: f64,
    scales: &[Vec<f64>],
) {
    for (k, scale) in scales.iter().enumerate() {
        // Only the approximation band absorbs the `−1` shift of the
        // `p/a − 1` normalisation; detail bands are purely scaled.
        let shift = if k == 0 { 1.0 } else { 0.0 };
        let base = (i * NUM_FEATURES + fi) * z;
        let dst = &mut out[k].data_mut()[base..base + z];
        for (d, &v) in dst.iter_mut().zip(scale) {
            *d = (v / anchor - shift) as f32;
        }
    }
}

/// The `n` horizon-specific windows `P^1..P^n` for day `t`, each `[m, d, z]`.
///
/// Index 0 carries the lowest-frequency (long-term) band, index `n-1` the
/// highest-frequency (short-term) band.
pub fn horizon_windows(panel: &AssetPanel, t: usize, z: usize, n: usize) -> Vec<Tensor> {
    assert!(n >= 1, "need at least one horizon");
    let m = panel.num_assets();
    let mut out = vec![Tensor::zeros(&[m, NUM_FEATURES, z]); n];
    for i in 0..m {
        let anchor = panel.close(t, i);
        for (fi, &f) in FEATURES.iter().enumerate() {
            let series = raw_series(panel, t, z, i, f);
            let scales = horizon_scales(&series, n);
            write_bands(&mut out, i, fi, z, anchor, &scales);
        }
    }
    out
}

/// A sliding-window cache around [`horizon_windows`].
///
/// Holds one [`SlidingDwt`] per asset/feature series; consecutive-day
/// requests reuse the shifted coefficient streams instead of recomputing
/// the full `O(m · d · z · n)` decomposition. Outputs are bitwise
/// identical to the uncached function for every request pattern.
///
/// ```
/// use cit_core::{horizon_windows, HorizonWindowCache};
/// use cit_market::SynthConfig;
///
/// let panel = SynthConfig { num_assets: 2, num_days: 80, test_start: 60, ..Default::default() }
///     .generate();
/// let (z, n) = (16, 3);
/// let mut cache = HorizonWindowCache::new(panel.num_assets(), z, n);
/// for t in (z - 1)..40 {
///     let cached = cache.windows(&panel, t);   // one [m, 4, z] tensor per horizon
///     let cold = horizon_windows(&panel, t, z, n);
///     for (c, r) in cached.iter().zip(&cold) {
///         assert_eq!(c.data(), r.data()); // bitwise-equal to the uncached path
///     }
/// }
/// assert!(cache.stats().incremental > cache.stats().full);
/// ```
pub struct HorizonWindowCache {
    z: usize,
    n: usize,
    caches: Vec<SlidingDwt>,
}

impl HorizonWindowCache {
    /// Creates a cache for `num_assets` assets, window length `z` and `n`
    /// horizon bands.
    pub fn new(num_assets: usize, z: usize, n: usize) -> Self {
        assert!(n >= 1, "need at least one horizon");
        HorizonWindowCache {
            z,
            n,
            caches: (0..num_assets * NUM_FEATURES)
                .map(|_| SlidingDwt::new(z, n))
                .collect(),
        }
    }

    /// Equivalent of `horizon_windows(panel, t, self.z, self.n)`.
    pub fn windows(&mut self, panel: &AssetPanel, t: usize) -> Vec<Tensor> {
        let m = panel.num_assets();
        assert_eq!(
            m * NUM_FEATURES,
            self.caches.len(),
            "HorizonWindowCache: panel asset count changed"
        );
        let (z, n) = (self.z, self.n);
        let mut out = vec![Tensor::zeros(&[m, NUM_FEATURES, z]); n];
        for i in 0..m {
            let anchor = panel.close(t, i);
            for (fi, &f) in FEATURES.iter().enumerate() {
                let series = raw_series(panel, t, z, i, f);
                let scales = self.caches[i * NUM_FEATURES + fi].scales_at(t, &series);
                write_bands(&mut out, i, fi, z, anchor, scales);
            }
        }
        out
    }

    /// Aggregated hit/miss counters across every per-series cache.
    pub fn stats(&self) -> DwtCacheStats {
        let mut total = DwtCacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            total.memo_hits += s.memo_hits;
            total.incremental += s.incremental;
            total.full += s.full;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 3,
            num_days: 120,
            test_start: 90,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn shapes_are_consistent() {
        let p = panel();
        let raw = raw_window(&p, 60, 16);
        assert_eq!(raw.shape(), &[3, 4, 16]);
        let scales = horizon_windows(&p, 60, 16, 3);
        assert_eq!(scales.len(), 3);
        for s in &scales {
            assert_eq!(s.shape(), &[3, 4, 16]);
        }
    }

    #[test]
    fn bands_sum_to_raw_window() {
        let p = panel();
        let raw = raw_window(&p, 60, 16);
        let scales = horizon_windows(&p, 60, 16, 4);
        for i in 0..3 {
            for f in 0..4 {
                for s in 0..16 {
                    let sum: f32 = scales.iter().map(|sc| sc.at3(i, f, s)).sum();
                    assert!(
                        (sum - raw.at3(i, f, s)).abs() < 1e-4,
                        "band partition broken at ({i},{f},{s})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_horizon_equals_raw() {
        let p = panel();
        let raw = raw_window(&p, 50, 16);
        let one = horizon_windows(&p, 50, 16, 1);
        for i in 0..3 {
            for f in 0..4 {
                for s in 0..16 {
                    assert!((one[0].at3(i, f, s) - raw.at3(i, f, s)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn long_band_is_smoother_than_short_band() {
        let p = panel();
        let scales = horizon_windows(&p, 80, 32, 3);
        let tv = |t: &Tensor, i: usize, f: usize| -> f32 {
            (1..32)
                .map(|s| (t.at3(i, f, s) - t.at3(i, f, s - 1)).abs())
                .sum()
        };
        // Averaged over assets/features the long-horizon band must vary less.
        let mut tv_long = 0.0;
        let mut tv_short = 0.0;
        for i in 0..3 {
            for f in 0..4 {
                tv_long += tv(&scales[0], i, f);
                tv_short += tv(&scales[2], i, f);
            }
        }
        assert!(
            tv_long < tv_short,
            "long band rougher than short band: {tv_long} vs {tv_short}"
        );
    }

    #[test]
    fn cached_windows_are_bitwise_identical() {
        let p = panel();
        let (z, n) = (16, 3);
        let mut cache = HorizonWindowCache::new(3, z, n);
        for t in (z - 1)..80 {
            let cached = cache.windows(&p, t);
            let reference = horizon_windows(&p, t, z, n);
            for (c, r) in cached.iter().zip(&reference) {
                assert_eq!(c.data(), r.data(), "cache must be bitwise exact at t={t}");
            }
        }
        let stats = cache.stats();
        assert!(
            stats.incremental > stats.full,
            "sequential sweep should mostly hit the incremental path: {stats:?}"
        );
    }

    #[test]
    fn cached_windows_survive_resets_and_jumps() {
        let p = panel();
        let (z, n) = (16, 4);
        let mut cache = HorizonWindowCache::new(3, z, n);
        // Rollout-style pattern: sequential runs with resets back in time.
        for t in [20, 21, 22, 40, 41, 20, 21, 60, 61, 62, 63] {
            let cached = cache.windows(&p, t);
            let reference = horizon_windows(&p, t, z, n);
            for (c, r) in cached.iter().zip(&reference) {
                assert_eq!(c.data(), r.data(), "t={t}");
            }
        }
    }
}
