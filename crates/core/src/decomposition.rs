//! Horizon-specific observation windows (paper Section IV-A).
//!
//! The normalised OHLC window of each asset/feature series is split with
//! the multi-level Haar DWT into `n` frequency bands; band `k` is the input
//! `P^k` of horizon policy `k` (k = 0 → longest horizon). By linearity the
//! bands sum to the raw window, so no information is lost or duplicated.

use cit_dwt::horizon_scales;
use cit_market::{AssetPanel, NUM_FEATURES};
use cit_tensor::Tensor;

/// The raw normalised window as a `[m, d, z]` tensor (the cross-insight
/// policy's price input).
pub fn raw_window(panel: &AssetPanel, t: usize, z: usize) -> Tensor {
    let m = panel.num_assets();
    let flat = panel.normalized_window(t, z);
    let data: Vec<f32> = flat.into_iter().map(|v| v as f32).collect();
    Tensor::from_vec(&[m, NUM_FEATURES, z], data)
}

/// The `n` horizon-specific windows `P^1..P^n` for day `t`, each `[m, d, z]`.
///
/// Index 0 carries the lowest-frequency (long-term) band, index `n-1` the
/// highest-frequency (short-term) band.
pub fn horizon_windows(panel: &AssetPanel, t: usize, z: usize, n: usize) -> Vec<Tensor> {
    assert!(n >= 1, "need at least one horizon");
    let m = panel.num_assets();
    let flat = panel.normalized_window(t, z);
    let mut out = vec![Tensor::zeros(&[m, NUM_FEATURES, z]); n];
    for i in 0..m {
        for f in 0..NUM_FEATURES {
            let base = (i * NUM_FEATURES + f) * z;
            let series: Vec<f64> = flat[base..base + z].to_vec();
            let scales = horizon_scales(&series, n);
            for (k, scale) in scales.iter().enumerate() {
                for (s, &v) in scale.iter().enumerate() {
                    out[k].set3(i, f, s, v as f32);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 3,
            num_days: 120,
            test_start: 90,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn shapes_are_consistent() {
        let p = panel();
        let raw = raw_window(&p, 60, 16);
        assert_eq!(raw.shape(), &[3, 4, 16]);
        let scales = horizon_windows(&p, 60, 16, 3);
        assert_eq!(scales.len(), 3);
        for s in &scales {
            assert_eq!(s.shape(), &[3, 4, 16]);
        }
    }

    #[test]
    fn bands_sum_to_raw_window() {
        let p = panel();
        let raw = raw_window(&p, 60, 16);
        let scales = horizon_windows(&p, 60, 16, 4);
        for i in 0..3 {
            for f in 0..4 {
                for s in 0..16 {
                    let sum: f32 = scales.iter().map(|sc| sc.at3(i, f, s)).sum();
                    assert!(
                        (sum - raw.at3(i, f, s)).abs() < 1e-4,
                        "band partition broken at ({i},{f},{s})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_horizon_equals_raw() {
        let p = panel();
        let raw = raw_window(&p, 50, 16);
        let one = horizon_windows(&p, 50, 16, 1);
        for i in 0..3 {
            for f in 0..4 {
                for s in 0..16 {
                    assert!((one[0].at3(i, f, s) - raw.at3(i, f, s)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn long_band_is_smoother_than_short_band() {
        let p = panel();
        let scales = horizon_windows(&p, 80, 32, 3);
        let tv = |t: &Tensor, i: usize, f: usize| -> f32 {
            (1..32)
                .map(|s| (t.at3(i, f, s) - t.at3(i, f, s - 1)).abs())
                .sum()
        };
        // Averaged over assets/features the long-horizon band must vary less.
        let mut tv_long = 0.0;
        let mut tv_short = 0.0;
        for i in 0..3 {
            for f in 0..4 {
                tv_long += tv(&scales[0], i, f);
                tv_short += tv(&scales[2], i, f);
            }
        }
        assert!(
            tv_long < tv_short,
            "long band rougher than short band: {tv_long} vs {tv_short}"
        );
    }
}
