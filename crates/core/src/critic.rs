//! The critic (paper Section IV-B3) and its ablation variants.
//!
//! The centralised critic is a two-layer fully-connected network whose
//! input `x` contains the market state (per-asset technical features of the
//! raw price series), the pre-decisions of every horizon policy, the trade
//! action of the cross-insight policy, and the policy IDs. The Dec-critic
//! variant gives every policy its own critic seeing only that policy's
//! action.

use crate::config::{CitConfig, CriticMode};
use cit_market::AssetPanel;
use cit_nn::{Activation, Ctx, Mlp, ParamStore};
use cit_rl::features::{asset_features, FEAT_DIM};
use cit_tensor::{GraphPool, Tensor, Var};
use rand::Rng;

/// Market-state part of the critic input: per-asset technical features.
pub fn market_state(panel: &AssetPanel, t: usize) -> Vec<f32> {
    let m = panel.num_assets();
    let mut out = Vec::with_capacity(m * FEAT_DIM);
    for i in 0..m {
        out.extend(asset_features(panel, t, i).iter().map(|&v| v as f32));
    }
    out
}

/// The centralised critic.
pub struct CentralCritic {
    mlp: Mlp,
    num_assets: usize,
    num_policies: usize,
}

impl CentralCritic {
    /// Input dimension: `m·F + n·m + m + n`.
    pub fn input_dim(m: usize, n: usize) -> usize {
        m * FEAT_DIM + n * m + m + n
    }

    /// Builds the critic network.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        cfg: &CitConfig,
        num_assets: usize,
    ) -> Self {
        let dim = Self::input_dim(num_assets, cfg.num_policies);
        let mlp = Mlp::new(
            store,
            rng,
            "critic",
            &[dim, cfg.critic_hidden, cfg.critic_hidden / 2, 1],
            Activation::Relu,
        );
        CentralCritic {
            mlp,
            num_assets,
            num_policies: cfg.num_policies,
        }
    }

    /// Assembles the critic input `x` from market state, pre-decisions,
    /// the executed trade action and the (constant) policy IDs.
    pub fn input_vector(
        &self,
        market: &[f32],
        pre_actions: &[Vec<f64>],
        final_action: &[f64],
    ) -> Vec<f32> {
        let (m, n) = (self.num_assets, self.num_policies);
        assert_eq!(market.len(), m * FEAT_DIM, "market state dim");
        assert_eq!(pre_actions.len(), n, "pre-decision count");
        let mut x = Vec::with_capacity(Self::input_dim(m, n));
        x.extend_from_slice(market);
        for a in pre_actions {
            assert_eq!(a.len(), m, "pre-decision dim");
            x.extend(a.iter().map(|&v| v as f32));
        }
        assert_eq!(final_action.len(), m, "final action dim");
        x.extend(final_action.iter().map(|&v| v as f32));
        // Policy IDs, normalised to (0, 1].
        x.extend((0..n).map(|k| (k + 1) as f32 / n as f32));
        x
    }

    /// Differentiable Q-value node.
    pub fn q(&self, ctx: &mut Ctx<'_>, x: &[f32]) -> Var {
        let input = ctx.input(Tensor::vector(x));
        self.mlp.forward_vec(ctx, input)
    }

    /// Numeric Q-value outside any gradient context.
    pub fn q_numeric(&self, store: &ParamStore, x: &[f32]) -> f64 {
        let mut ctx = Ctx::new(store);
        let q = self.q(&mut ctx, x);
        ctx.g.value(q).data()[0] as f64
    }

    /// [`CentralCritic::q_numeric`] on a pooled graph arena (hot path of
    /// the counterfactual baselines: `n` evaluations per rollout step).
    pub fn q_numeric_in(&self, store: &ParamStore, pool: &GraphPool, x: &[f32]) -> f64 {
        let mut ctx = Ctx::with_graph(store, pool.take());
        let q = self.q(&mut ctx, x);
        let out = ctx.g.value(q).data()[0] as f64;
        pool.put(ctx.into_graph());
        out
    }
}

/// Decentralised critics: one per horizon policy plus one for the
/// cross-insight policy, each seeing only the market state and its own
/// policy's action.
pub struct DecCritics {
    mlps: Vec<Mlp>,
    num_assets: usize,
}

impl DecCritics {
    /// Input dimension per critic: `m·F + m`.
    pub fn input_dim(m: usize) -> usize {
        m * FEAT_DIM + m
    }

    /// Builds `n + 1` critics (index `n` belongs to the cross policy).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        cfg: &CitConfig,
        num_assets: usize,
    ) -> Self {
        let dim = Self::input_dim(num_assets);
        let mlps = (0..=cfg.num_policies)
            .map(|k| {
                Mlp::new(
                    store,
                    rng,
                    &format!("dec_critic{k}"),
                    &[dim, cfg.critic_hidden, 1],
                    Activation::Relu,
                )
            })
            .collect();
        DecCritics { mlps, num_assets }
    }

    /// Input of critic `k` given the market state and that policy's action.
    pub fn input_vector(&self, market: &[f32], action: &[f64]) -> Vec<f32> {
        assert_eq!(action.len(), self.num_assets, "action dim");
        let mut x = Vec::with_capacity(market.len() + action.len());
        x.extend_from_slice(market);
        x.extend(action.iter().map(|&v| v as f32));
        x
    }

    /// Number of critics.
    pub fn len(&self) -> usize {
        self.mlps.len()
    }

    /// `true` when no critic exists (never for valid configs).
    pub fn is_empty(&self) -> bool {
        self.mlps.is_empty()
    }

    /// Differentiable Q-value of critic `k`.
    pub fn q(&self, ctx: &mut Ctx<'_>, k: usize, x: &[f32]) -> Var {
        let input = ctx.input(Tensor::vector(x));
        self.mlps[k].forward_vec(ctx, input)
    }

    /// Numeric Q-value of critic `k`.
    pub fn q_numeric(&self, store: &ParamStore, k: usize, x: &[f32]) -> f64 {
        let mut ctx = Ctx::new(store);
        let q = self.q(&mut ctx, k, x);
        ctx.g.value(q).data()[0] as f64
    }

    /// [`DecCritics::q_numeric`] on a pooled graph arena.
    pub fn q_numeric_in(&self, store: &ParamStore, pool: &GraphPool, k: usize, x: &[f32]) -> f64 {
        let mut ctx = Ctx::with_graph(store, pool.take());
        let q = self.q(&mut ctx, k, x);
        let out = ctx.g.value(q).data()[0] as f64;
        pool.put(ctx.into_graph());
        out
    }
}

/// The critic assembly selected by [`CriticMode`].
pub enum CriticNet {
    /// Centralised (used by both Counterfactual and SharedQ modes).
    Central(CentralCritic),
    /// One critic per policy.
    Dec(DecCritics),
}

impl CriticNet {
    /// Builds the critic(s) for the configured mode.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        cfg: &CitConfig,
        num_assets: usize,
    ) -> Self {
        match cfg.critic_mode {
            CriticMode::Counterfactual | CriticMode::SharedQ => {
                CriticNet::Central(CentralCritic::new(store, rng, cfg, num_assets))
            }
            CriticMode::Decentralized => {
                CriticNet::Dec(DecCritics::new(store, rng, cfg, num_assets))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (AssetPanel, CitConfig) {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 120,
            test_start: 90,
            ..Default::default()
        }
        .generate();
        (p, CitConfig::smoke(3))
    }

    #[test]
    fn central_critic_io() {
        let (p, cfg) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let critic = CentralCritic::new(&mut store, &mut rng, &cfg, 3);
        let market = market_state(&p, 60);
        let pre = vec![vec![1.0 / 3.0; 3]; cfg.num_policies];
        let x = critic.input_vector(&market, &pre, &[0.5, 0.3, 0.2]);
        assert_eq!(x.len(), CentralCritic::input_dim(3, cfg.num_policies));
        let q = critic.q_numeric(&store, &x);
        assert!(q.is_finite());
    }

    #[test]
    fn q_depends_on_action() {
        let (p, cfg) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let critic = CentralCritic::new(&mut store, &mut rng, &cfg, 3);
        let market = market_state(&p, 60);
        let pre = vec![vec![1.0 / 3.0; 3]; cfg.num_policies];
        let xa = critic.input_vector(&market, &pre, &[1.0, 0.0, 0.0]);
        let xb = critic.input_vector(&market, &pre, &[0.0, 0.0, 1.0]);
        assert_ne!(critic.q_numeric(&store, &xa), critic.q_numeric(&store, &xb));
    }

    #[test]
    fn counterfactual_swap_changes_q() {
        // Replacing one policy's pre-decision must change the Q input — the
        // mechanism the counterfactual baseline relies on.
        let (p, cfg) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let critic = CentralCritic::new(&mut store, &mut rng, &cfg, 3);
        let market = market_state(&p, 60);
        let mut pre = vec![vec![1.0 / 3.0; 3]; cfg.num_policies];
        let x1 = critic.input_vector(&market, &pre, &[0.4, 0.3, 0.3]);
        pre[0] = vec![0.9, 0.05, 0.05];
        let x2 = critic.input_vector(&market, &pre, &[0.4, 0.3, 0.3]);
        assert_ne!(critic.q_numeric(&store, &x1), critic.q_numeric(&store, &x2));
    }

    #[test]
    fn dec_critics_have_n_plus_one_members() {
        let (_p, cfg) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let dec = DecCritics::new(&mut store, &mut rng, &cfg, 3);
        assert_eq!(dec.len(), cfg.num_policies + 1);
    }

    #[test]
    fn critic_trains_toward_target() {
        let (p, cfg) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let critic = CentralCritic::new(&mut store, &mut rng, &cfg, 3);
        let market = market_state(&p, 60);
        let pre = vec![vec![1.0 / 3.0; 3]; cfg.num_policies];
        let x = critic.input_vector(&market, &pre, &[0.5, 0.3, 0.2]);
        let mut opt = cit_nn::Adam::new(1e-2, 0.0);
        for _ in 0..200 {
            let mut ctx = Ctx::new(&store);
            let q = critic.q(&mut ctx, &x);
            let y = ctx.input(Tensor::vector(&[0.7]));
            let d = ctx.g.sub(q, y);
            let sq = ctx.g.mul(d, d);
            let loss = ctx.g.sum_all(sq);
            let grads = ctx.backward(loss);
            store.apply_grads(grads);
            opt.step(&mut store);
        }
        assert!((critic.q_numeric(&store, &x) - 0.7).abs() < 0.05);
    }
}
