//! Actors of the cross-insight trader (paper Section IV-B, Figure 3).
//!
//! Every actor is a *body* that abstracts the `[m, d, z]` price window into
//! a feature vector, followed by a head that concatenates actor-specific
//! extras (agent ID + previous action for horizon policies; the
//! pre-decisions for the cross-insight policy) and emits the Gaussian mean
//! over pre-softmax portfolio scores. Body variants implement the paper's
//! Figure 7 ablation.

use crate::config::{ActorBody, CitConfig};
use cit_market::NUM_FEATURES;
use cit_nn::{Activation, Ctx, GaussianHead, Gru, Linear, Mlp, ParamStore, SpatialAttention, Tcn};
use cit_tensor::{GraphPool, Tensor, Var};
use rand::Rng;

enum Body {
    TcnAttention { tcn: Tcn, att: SpatialAttention },
    GruAttention { gru: Gru, att: SpatialAttention },
    GruOnly { gru: Gru },
    MlpOnly { mlp: Mlp },
}

/// One actor network (horizon-specific or cross-insight).
pub struct CitActor {
    body: Body,
    head1: Linear,
    head2: Linear,
    /// The Gaussian exploration head (public for sampling).
    pub head: GaussianHead,
    num_assets: usize,
    window: usize,
    extra_dim: usize,
}

impl CitActor {
    /// Builds an actor.
    ///
    /// `extra_dim` is the length of the auxiliary vector concatenated to the
    /// body features (agent one-hot + previous action, or pre-decisions).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        cfg: &CitConfig,
        num_assets: usize,
        extra_dim: usize,
    ) -> Self {
        let m = num_assets;
        let (body, body_dim) = match cfg.actor_body {
            ActorBody::TcnAttention => {
                let tcn = Tcn::new(
                    store,
                    rng,
                    &format!("{name}.tcn"),
                    NUM_FEATURES,
                    cfg.hidden,
                    cfg.kernel,
                    cfg.tcn_levels,
                );
                let att = SpatialAttention::new(
                    store,
                    rng,
                    &format!("{name}.att"),
                    m,
                    cfg.hidden,
                    cfg.window,
                );
                (Body::TcnAttention { tcn, att }, m * cfg.hidden)
            }
            ActorBody::GruAttention => {
                let gru = Gru::new(store, rng, &format!("{name}.gru"), NUM_FEATURES, cfg.hidden);
                let att =
                    SpatialAttention::new(store, rng, &format!("{name}.att"), m, cfg.hidden, 1);
                (Body::GruAttention { gru, att }, m * cfg.hidden)
            }
            ActorBody::GruOnly => {
                let gru = Gru::new(
                    store,
                    rng,
                    &format!("{name}.gru"),
                    m * NUM_FEATURES,
                    cfg.head_hidden,
                );
                (Body::GruOnly { gru }, cfg.head_hidden)
            }
            ActorBody::MlpOnly => {
                let mlp = Mlp::new(
                    store,
                    rng,
                    &format!("{name}.mlp"),
                    &[
                        m * NUM_FEATURES * cfg.window,
                        cfg.head_hidden,
                        cfg.head_hidden,
                    ],
                    Activation::Relu,
                );
                (Body::MlpOnly { mlp }, cfg.head_hidden)
            }
        };
        let head1 = Linear::new(
            store,
            rng,
            &format!("{name}.head1"),
            body_dim + extra_dim,
            cfg.head_hidden,
        );
        let head2 = Linear::new(store, rng, &format!("{name}.head2"), cfg.head_hidden, m);
        let head = GaussianHead::new(store, name, m, cfg.init_log_std);
        CitActor {
            body,
            head1,
            head2,
            head,
            num_assets: m,
            window: cfg.window,
            extra_dim,
        }
    }

    /// Body feature extraction: `[m, d, z]` window → flat feature `Var`.
    fn body_features(&self, ctx: &mut Ctx<'_>, window: &Tensor) -> Var {
        let m = self.num_assets;
        match &self.body {
            Body::TcnAttention { tcn, att } => {
                let x = ctx.input(window.clone());
                let h = tcn.forward(ctx, x);
                let h = att.forward(ctx, h);
                let last = ctx.g.select_last_time(h);
                let f = tcn.hidden();
                ctx.g.reshape(last, &[m * f])
            }
            Body::GruAttention { gru, att } => {
                let h = gru.forward_window(ctx, window); // [m, f]
                let f = gru.hidden();
                let h3 = ctx.g.reshape(h, &[m, f, 1]);
                let mixed = att.forward(ctx, h3);
                let last = ctx.g.select_last_time(mixed);
                ctx.g.reshape(last, &[m * f])
            }
            Body::GruOnly { gru } => {
                let seq = window.reshaped(&[1, m * NUM_FEATURES, self.window]);
                let h = gru.forward_window(ctx, &seq); // [1, hidden]
                let hid = gru.hidden();
                ctx.g.reshape(h, &[hid])
            }
            Body::MlpOnly { mlp } => {
                let flat = ctx.input(window.reshaped(&[m * NUM_FEATURES * self.window]));
                mlp.forward_vec(ctx, flat)
            }
        }
    }

    /// Full forward pass producing the Gaussian mean `μ ∈ R^m`.
    ///
    /// # Panics
    /// Panics when `extra` does not match the configured extra dimension.
    pub fn mean(&self, ctx: &mut Ctx<'_>, window: &Tensor, extra: &[f32]) -> Var {
        assert_eq!(extra.len(), self.extra_dim, "extra dim mismatch");
        let feat = self.body_features(ctx, window);
        let extra_in = ctx.input(Tensor::vector(extra));
        let joint = ctx.g.concat(&[feat, extra_in]);
        let h = self.head1.forward_vec(ctx, joint);
        let h = ctx.g.relu(h);
        self.head2.forward_vec(ctx, h)
    }

    /// Convenience: the numeric mean outside any gradient context.
    pub fn mean_numeric(&self, store: &ParamStore, window: &Tensor, extra: &[f32]) -> Tensor {
        let mut ctx = Ctx::new(store);
        let mv = self.mean(&mut ctx, window, extra);
        ctx.g.value(mv).clone()
    }

    /// [`CitActor::mean_numeric`] on a pooled graph arena, so hot callers
    /// (rollout decisions, counterfactual baselines) stop reallocating node
    /// storage on every forward pass.
    pub fn mean_numeric_in(
        &self,
        store: &ParamStore,
        pool: &GraphPool,
        window: &Tensor,
        extra: &[f32],
    ) -> Tensor {
        let mut ctx = Ctx::with_graph(store, pool.take());
        let mv = self.mean(&mut ctx, window, extra);
        let out = ctx.g.value(mv).clone();
        pool.put(ctx.into_graph());
        out
    }
}

/// One-hot agent ID of length `n`.
pub fn one_hot(k: usize, n: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; n];
    v[k] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window(m: usize, z: usize) -> Tensor {
        let p = SynthConfig {
            num_assets: m,
            num_days: 120,
            test_start: 90,
            ..Default::default()
        }
        .generate();
        crate::decomposition::raw_window(&p, 80, z)
    }

    fn actor_of(body: ActorBody, m: usize, extra: usize) -> (ParamStore, CitActor, CitConfig) {
        let mut cfg = CitConfig::smoke(1);
        cfg.actor_body = body;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let actor = CitActor::new(&mut store, &mut rng, "a", &cfg, m, extra);
        (store, actor, cfg)
    }

    #[test]
    fn all_bodies_produce_mean_of_m() {
        for body in [
            ActorBody::TcnAttention,
            ActorBody::GruAttention,
            ActorBody::GruOnly,
            ActorBody::MlpOnly,
        ] {
            let (store, actor, cfg) = actor_of(body, 3, 5);
            let w = window(3, cfg.window);
            let mean = actor.mean_numeric(&store, &w, &[0.0, 1.0, 0.0, 0.5, 0.5]);
            assert_eq!(mean.shape(), &[3], "{body:?}");
            assert!(mean.all_finite(), "{body:?}");
        }
    }

    #[test]
    fn extra_vector_changes_output() {
        let (store, actor, cfg) = actor_of(ActorBody::TcnAttention, 3, 2);
        let w = window(3, cfg.window);
        let a = actor.mean_numeric(&store, &w, &[1.0, 0.0]);
        let b = actor.mean_numeric(&store, &w, &[0.0, 1.0]);
        assert_ne!(a.data(), b.data(), "agent ID must influence the policy");
    }

    #[test]
    fn gradients_flow_through_full_actor() {
        let (store, actor, cfg) = actor_of(ActorBody::TcnAttention, 3, 2);
        let w = window(3, cfg.window);
        let mut ctx = Ctx::new(&store);
        let mean = actor.mean(&mut ctx, &w, &[1.0, 0.0]);
        let latent = Tensor::vector(&[0.1, 0.2, -0.1]);
        let lp = actor.head.log_prob(&mut ctx, mean, &latent);
        let loss = ctx.g.neg(lp);
        let grads = ctx.backward(loss);
        assert!(
            grads.len() > 10,
            "expected gradients on most actor params, got {}",
            grads.len()
        );
        assert!(grads.iter().all(|(_, g)| g.all_finite()));
    }

    #[test]
    #[should_panic(expected = "extra dim")]
    fn wrong_extra_dim_panics() {
        let (store, actor, cfg) = actor_of(ActorBody::MlpOnly, 3, 2);
        let w = window(3, cfg.window);
        let _ = actor.mean_numeric(&store, &w, &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn one_hot_works() {
        assert_eq!(one_hot(1, 3), vec![0.0, 1.0, 0.0]);
    }
}
