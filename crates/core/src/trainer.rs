//! The cross-insight trader: horizon-specific policies, the cross-insight
//! policy, the centralised critic and the counterfactual mechanism
//! (paper Section IV), trained with the actor-critic scheme of Eq. 2–8.

use crate::actor::{one_hot, CitActor};
use crate::config::{CitConfig, CriticMode};
use crate::critic::{market_state, CriticNet};
use crate::decomposition::{raw_window, HorizonWindowCache};
use crate::error::CitError;
use cit_compute::{chunk_ranges, parallel_map, resolve_threads};
use cit_dwt::DwtCacheStats;
use cit_faults::FaultInjector;
use cit_market::{AssetPanel, DecisionContext, EnvConfig, EnvSnapshot, PortfolioEnv, Strategy};
use cit_nn::serialize::{self, CheckpointError, TrainState, TrainerState};
use cit_nn::{Adam, AdamState, Ctx, OptimState, ParamId, ParamStore};
use cit_rl::{normalize_advantages, returns::lambda_targets, TrainReport};
use cit_telemetry::{Record, Telemetry};
use cit_tensor::{softmax_last_tensor, GraphPool, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Everything produced by one decision pass of all policies at a day `t`.
pub struct Decision {
    /// Latent Gaussian samples `u^k` of the horizon policies.
    pub pre_latents: Vec<Tensor>,
    /// Gaussian means `μ^k` (the counterfactual default actions are
    /// `softmax(μ^k)`).
    pub pre_means: Vec<Tensor>,
    /// Pre-decisions `a^k = softmax(u^k)`.
    pub pre_actions: Vec<Vec<f64>>,
    /// The auxiliary input each horizon actor saw (ID one-hot + previous
    /// own action).
    pub extras: Vec<Vec<f32>>,
    /// Latent sample `ũ` of the cross-insight policy.
    pub cross_latent: Tensor,
    /// The cross-insight policy's auxiliary input (all pre-decisions).
    pub cross_extra: Vec<f32>,
    /// The executed trade action `ã = softmax(ũ)`.
    pub final_action: Vec<f64>,
    /// The horizon windows `P^k` the policies saw, kept so the update pass
    /// can rebuild the differentiable forwards without redoing the DWT.
    pub windows: Vec<Tensor>,
    /// The raw normalised window the cross-insight policy saw.
    pub raw: Tensor,
}

/// Mid-training progress carried across a save/resume cycle: everything
/// beyond parameters, optimizer moments and the RNG stream that the
/// training loop needs to continue bit-identically from where it stopped.
#[derive(Debug, Clone)]
struct Progress {
    /// Environment steps taken so far.
    steps: usize,
    /// Optimiser updates applied so far.
    update_idx: usize,
    /// Per-update mean rewards accumulated so far (the learning curve).
    update_rewards: Vec<f64>,
    /// Each horizon policy's previous action.
    prev_actions: Vec<Vec<f64>>,
    /// The training environment's state (day, wealth, drifted weights).
    env: EnvSnapshot,
}

impl Progress {
    /// Flattens the progress into the name-keyed [`TrainerState`] the v2
    /// checkpoint format round-trips.
    fn encode(&self) -> TrainerState {
        let mut state = TrainerState {
            counters: vec![
                ("steps".into(), self.steps as u64),
                ("update_idx".into(), self.update_idx as u64),
                ("env_day".into(), self.env.t as u64),
            ],
            series: vec![
                ("env_wealth".into(), vec![self.env.wealth]),
                ("env_peak_wealth".into(), vec![self.env.peak_wealth]),
                ("env_weights".into(), self.env.weights.clone()),
                (
                    "prev_actions".into(),
                    self.prev_actions.iter().flatten().copied().collect(),
                ),
            ],
        };
        if !self.update_rewards.is_empty() {
            state
                .series
                .push(("update_rewards".into(), self.update_rewards.clone()));
        }
        state
    }

    /// Rebuilds the progress from a loaded [`TrainerState`], validating the
    /// shapes against the trader's `n` policies over `m` assets. An empty
    /// state (v1 file, or a save taken before any training) maps to `None`.
    fn decode(state: &TrainerState, n: usize, m: usize) -> Result<Option<Self>, CheckpointError> {
        if state.is_empty() {
            return Ok(None);
        }
        let counter = |name: &str| {
            state.counter(name).ok_or_else(|| {
                CheckpointError::Malformed(format!("missing trainer counter {name}"))
            })
        };
        let series = |name: &str| {
            state
                .series(name)
                .ok_or_else(|| CheckpointError::Malformed(format!("missing trainer series {name}")))
        };
        let scalar = |name: &str| {
            let s = series(name)?;
            if s.len() != 1 {
                return Err(CheckpointError::Malformed(format!(
                    "trainer series {name} must hold exactly one value"
                )));
            }
            Ok(s[0])
        };
        let weights = series("env_weights")?.to_vec();
        if weights.len() != m {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint env_weights has {} assets, model has {m}",
                weights.len()
            )));
        }
        let flat = series("prev_actions")?;
        if flat.len() != n * m {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint prev_actions has {} values, model needs {n}×{m}",
                flat.len()
            )));
        }
        Ok(Some(Progress {
            steps: counter("steps")? as usize,
            update_idx: counter("update_idx")? as usize,
            update_rewards: state
                .series("update_rewards")
                .map(<[f64]>::to_vec)
                .unwrap_or_default(),
            prev_actions: flat.chunks(m).map(<[f64]>::to_vec).collect(),
            env: EnvSnapshot {
                t: counter("env_day")? as usize,
                wealth: scalar("env_wealth")?,
                peak_wealth: scalar("env_peak_wealth")?,
                weights,
            },
        }))
    }
}

/// A known-good in-memory training snapshot the supervisor rolls back to
/// after a failed health check. Captured at update boundaries (where the
/// parameters, optimiser moments, RNG stream and environment are mutually
/// consistent) — the same state a v2 checkpoint persists, without disk I/O.
struct Recovery {
    store: ParamStore,
    opt: AdamState,
    rng: [u64; 4],
    progress: Progress,
}

/// Freshly initialised parameter store and policy/critic networks — the
/// shared construction path of [`CrossInsightTrader::try_new`] and the
/// inference-only [`crate::DecisionModel`]. Both build the *same* networks
/// in the *same* registration order from the same seeded RNG, so a
/// checkpoint written by one loads into the other.
pub(crate) struct Networks {
    pub(crate) store: ParamStore,
    pub(crate) rng: StdRng,
    pub(crate) horizon_actors: Vec<CitActor>,
    pub(crate) cross_actor: CitActor,
    pub(crate) critic: CriticNet,
}

/// Validates `cfg` against an `m`-asset market and initialises the full
/// parameter set: `n` horizon actors (`pi{k}.*`), the cross-insight actor
/// (`cross.*`) and the critic(s).
pub(crate) fn build_networks(cfg: &CitConfig, m: usize) -> Result<Networks, CitError> {
    if cfg.num_policies < 1 {
        return Err(CitError::Config("need at least one horizon policy".into()));
    }
    if cfg.window < 1 << (cfg.num_policies - 1).max(1) {
        return Err(CitError::Config(format!(
            "window {} too short for {} DWT levels",
            cfg.window,
            cfg.num_policies - 1
        )));
    }
    if m < 1 {
        return Err(CitError::Config("need at least one asset".into()));
    }
    let n = cfg.num_policies;
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let horizon_actors: Vec<CitActor> = (0..n)
        .map(|k| CitActor::new(&mut store, &mut rng, &format!("pi{k}"), cfg, m, n + m))
        .collect();
    let cross_actor = CitActor::new(&mut store, &mut rng, "cross", cfg, m, n * m);
    let critic = CriticNet::new(&mut store, &mut rng, cfg, m);
    Ok(Networks {
        store,
        rng,
        horizon_actors,
        cross_actor,
        critic,
    })
}

/// The full cross-insight trader model.
pub struct CrossInsightTrader {
    cfg: CitConfig,
    num_assets: usize,
    store: ParamStore,
    horizon_actors: Vec<CitActor>,
    cross_actor: CitActor,
    critic: CriticNet,
    rng: StdRng,
    /// Previous per-policy actions carried across evaluation steps.
    eval_prev: Vec<Vec<f64>>,
    /// Learning curve of the most recent [`CrossInsightTrader::train`] call.
    pub last_report: Option<TrainReport>,
    telemetry: Telemetry,
    /// Resolved worker-thread count (config > `CIT_THREADS` > hardware).
    threads: usize,
    /// Sliding-window DWT cache feeding [`Decision::windows`].
    dwt: HorizonWindowCache,
    /// Recycled graph arenas for every forward/backward pass.
    pool: GraphPool,
    /// Adam moments of the most recent training run (carried so
    /// [`CrossInsightTrader::save`] captures the full optimiser state).
    opt_state: Option<AdamState>,
    /// Mid-training progress, either captured by the last `train` call or
    /// restored by [`CrossInsightTrader::load`].
    progress: Option<Progress>,
    /// Set only by `load`: the next `train` call continues from `progress`
    /// instead of starting fresh.
    resume_pending: bool,
    /// Destination of periodic auto-checkpoints (see
    /// [`CitConfig::checkpoint_every`]).
    checkpoint_path: Option<PathBuf>,
    /// Fault-injection handle for chaos testing (disabled by default:
    /// every injection point is then a single branch).
    faults: FaultInjector,
}

impl CrossInsightTrader {
    /// Builds the model for a panel (network sizes depend on asset count).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration; use
    /// [`CrossInsightTrader::try_new`] for a recoverable error instead.
    pub fn new(panel: &AssetPanel, cfg: CitConfig) -> Self {
        Self::try_new(panel, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the model for a panel, returning a typed error when the
    /// configuration is inconsistent (instead of panicking like
    /// [`CrossInsightTrader::new`]).
    pub fn try_new(panel: &AssetPanel, cfg: CitConfig) -> Result<Self, CitError> {
        // Tune the matmul tile shapes for this host before the first
        // forward pass; a no-op after the first call (and under
        // CIT_AUTOTUNE=off). Never affects results, only wall-clock.
        cit_compute::autotune::ensure_installed();
        let m = panel.num_assets();
        let n = cfg.num_policies;
        let Networks {
            store,
            rng,
            horizon_actors,
            cross_actor,
            critic,
        } = build_networks(&cfg, m)?;
        let eval_prev = vec![vec![1.0 / m as f64; m]; n];
        Ok(CrossInsightTrader {
            cfg,
            num_assets: m,
            store,
            horizon_actors,
            cross_actor,
            critic,
            rng,
            eval_prev,
            last_report: None,
            telemetry: Telemetry::disabled(),
            threads: resolve_threads(cfg.threads),
            dwt: HorizonWindowCache::new(m, cfg.window, n),
            pool: GraphPool::new(),
            opt_state: None,
            progress: None,
            resume_pending: false,
            checkpoint_path: None,
            faults: FaultInjector::disabled(),
        })
    }

    /// Builder: attaches a fault-injection handle (chaos testing). With the
    /// default disabled handle every injection point is a no-op.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the fault-injection handle in place.
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// The fault-injection handle in force (disabled by default).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Builder: enables periodic auto-checkpointing to `path`. A full v2
    /// checkpoint is written atomically every
    /// [`CitConfig::checkpoint_every`] optimiser updates (never, when that
    /// is 0).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Sets or clears the auto-checkpoint destination in place.
    pub fn set_checkpoint_path(&mut self, path: Option<PathBuf>) {
        self.checkpoint_path = path;
    }

    /// The auto-checkpoint destination in force, if any.
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint_path.as_deref()
    }

    /// Attaches a telemetry handle: training then emits per-update
    /// `train.update` / `train.advantage` records and span timings for
    /// every phase; decisions time the DWT and actor forwards.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle in force (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration in force.
    pub fn config(&self) -> &CitConfig {
        &self.cfg
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.store.num_elements()
    }

    /// Runs every policy once at day `t`. `prev_actions` holds each horizon
    /// policy's previous action; `stochastic` switches between exploration
    /// sampling (training) and the deterministic mean action (evaluation).
    pub fn decide(
        &mut self,
        panel: &AssetPanel,
        t: usize,
        prev_actions: &[Vec<f64>],
        stochastic: bool,
    ) -> Decision {
        let (n, z) = (self.cfg.num_policies, self.cfg.window);
        let windows = {
            let _timer = self.telemetry.span("dwt.horizon_windows");
            self.dwt.windows(panel, t)
        };
        let raw = raw_window(panel, t, z);

        let forward_timer = self.telemetry.span("actor.forward");
        let extras: Vec<Vec<f32>> = (0..n)
            .map(|k| {
                let mut extra = one_hot(k, n);
                extra.extend(prev_actions[k].iter().map(|&v| v as f32));
                extra
            })
            .collect();
        // The n horizon forwards are independent of one another (and of the
        // RNG): run them on the worker pool, results in policy order.
        let pre_means: Vec<Tensor> = {
            let store = &self.store;
            let pool = &self.pool;
            let actors = &self.horizon_actors;
            let tasks: Vec<_> = (0..n)
                .map(|k| {
                    let (w, e) = (&windows[k], &extras[k]);
                    move || actors[k].mean_numeric_in(store, pool, w, e)
                })
                .collect();
            parallel_map(self.threads, tasks)
        };
        let mut pre_latents = Vec::with_capacity(n);
        let mut pre_actions = Vec::with_capacity(n);
        for (k, mean) in pre_means.iter().enumerate() {
            let mut latent = if stochastic {
                self.horizon_actors[k]
                    .head
                    .sample(&self.store, mean, &mut self.rng)
                    .latent
            } else {
                mean.clone()
            };
            if self.faults.is_enabled() {
                if let Some(v) = self.faults.tensor_poison(&format!("pi{k}.latent")) {
                    latent.data_mut()[0] = v;
                }
            }
            pre_actions.push(temperature_action(&latent, self.cfg.action_temperature));
            pre_latents.push(latent);
        }

        let cross_extra: Vec<f32> = pre_actions
            .iter()
            .flat_map(|a| a.iter().map(|&v| v as f32))
            .collect();
        let cross_mean =
            self.cross_actor
                .mean_numeric_in(&self.store, &self.pool, &raw, &cross_extra);
        let mut cross_latent = if stochastic {
            self.cross_actor
                .head
                .sample(&self.store, &cross_mean, &mut self.rng)
                .latent
        } else {
            cross_mean
        };
        if self.faults.is_enabled() {
            if let Some(v) = self.faults.tensor_poison("cross.latent") {
                cross_latent.data_mut()[0] = v;
            }
        }
        drop(forward_timer);
        let final_action = temperature_action(&cross_latent, self.cfg.action_temperature);
        Decision {
            pre_latents,
            pre_means,
            pre_actions,
            extras,
            cross_latent,
            cross_extra,
            final_action,
            windows,
            raw,
        }
    }

    /// Q-values of an executed decision under the current critic(s).
    ///
    /// Returns one value per optimisation target: `values[k]` for horizon
    /// policy `k` and `values[n]` for the cross-insight policy. With a
    /// centralised critic all entries coincide.
    fn q_values(&self, market: &[f32], d: &Decision) -> Vec<f64> {
        let n = self.cfg.num_policies;
        match &self.critic {
            CriticNet::Central(c) => {
                let x = c.input_vector(market, &d.pre_actions, &d.final_action);
                let q = c.q_numeric_in(&self.store, &self.pool, &x);
                vec![q; n + 1]
            }
            CriticNet::Dec(dc) => {
                let mut qs: Vec<f64> = (0..n)
                    .map(|k| {
                        let x = dc.input_vector(market, &d.pre_actions[k]);
                        dc.q_numeric_in(&self.store, &self.pool, k, &x)
                    })
                    .collect();
                let x = dc.input_vector(market, &d.final_action);
                qs.push(dc.q_numeric_in(&self.store, &self.pool, n, &x));
                qs
            }
        }
    }

    /// Counterfactual baselines `B^k = Q(x, (a^{-k}, softmax(μ^k)))`
    /// (paper Eq. 8) for every horizon policy.
    fn counterfactual_baselines(&self, market: &[f32], d: &Decision) -> Vec<f64> {
        let CriticNet::Central(c) = &self.critic else {
            panic!("counterfactual baselines require the centralised critic");
        };
        let n = self.cfg.num_policies;
        (0..n)
            .map(|k| {
                let mut pre = d.pre_actions.clone();
                pre[k] = temperature_action(&d.pre_means[k], self.cfg.action_temperature);
                let x = c.input_vector(market, &pre, &d.final_action);
                c.q_numeric_in(&self.store, &self.pool, &x)
            })
            .collect()
    }

    /// Trains on the panel's training period, recording per-update mean
    /// rewards (the learning curves of Figure 8).
    ///
    /// # Panics
    ///
    /// Panics when the training period is too short or training diverges
    /// beyond the supervisor's rollback budget; use
    /// [`CrossInsightTrader::try_train`] for typed errors. Auto-checkpoint
    /// write failures never abort: they are logged (`checkpoint.error`)
    /// and training continues with the previous checkpoint intact.
    pub fn train(&mut self, panel: &AssetPanel) -> TrainReport {
        self.try_train(panel).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains on the panel's training period, returning a typed error for
    /// configuration problems instead of panicking.
    ///
    /// When the trader was restored via [`CrossInsightTrader::load`] from a
    /// checkpoint that carried training progress, this continues that run
    /// bit-identically — same optimizer moments, RNG stream, environment
    /// state and step counters — until `cfg.total_steps` is reached.
    /// Otherwise training starts fresh (calling `try_train` twice retrains
    /// from scratch both times).
    pub fn try_train(&mut self, panel: &AssetPanel) -> Result<TrainReport, CitError> {
        let cfg = self.cfg;
        let (m, n) = (self.num_assets, cfg.num_policies);
        let env_cfg = EnvConfig {
            window: cfg.window,
            transaction_cost: cfg.transaction_cost,
        };
        let start = cfg.min_start();
        let end = panel.test_start();
        if start + 2 >= end {
            return Err(CitError::Config(format!(
                "training period too short: first decidable day {start}, test starts at {end}"
            )));
        }
        if cfg.critic_mode == CriticMode::Counterfactual
            && !matches!(self.critic, CriticNet::Central(_))
        {
            return Err(CitError::Config(
                "counterfactual baselines require the centralised critic".into(),
            ));
        }
        let mut env = PortfolioEnv::new(panel, env_cfg, start, end);
        let mut opt = Adam::new(cfg.lr, cfg.weight_decay);
        let uniform = vec![1.0 / m as f64; m];
        let mut prev_actions = vec![uniform.clone(); n];
        let mut steps = 0usize;
        let mut update_rewards = Vec::new();
        let tel = self.telemetry.clone();
        let step_counter = tel.counter("train.env_steps");
        let update_counter = tel.counter("train.updates");
        let mut update_idx = 0usize;

        // ---- Training supervisor state ----
        // Health checks are read-only on the healthy path (no RNG use, no
        // math changes), so enabling the supervisor never perturbs a
        // healthy run's results. Known-good snapshots are captured at
        // update boundaries — every `snapshot_every` updates, amortising
        // the clone cost — and restored wholesale after a failed check.
        let supervise = cfg.max_rollbacks > 0;
        let snapshot_every = if cfg.checkpoint_every > 0 {
            cfg.checkpoint_every
        } else {
            16
        };
        let mut cur_lr = cfg.lr;
        let mut good: Option<Recovery> = None;
        let mut last_good_update = usize::MAX;
        let mut rollbacks = 0usize;
        // The update index whose health check failed last; passing it
        // successfully after a rollback counts as recovery.
        let mut pending_recovery: Option<usize> = None;
        let mut grad_norm_history: VecDeque<f64> = VecDeque::new();

        // Continue a run restored by `load` (the flag is consumed, so a
        // later `try_train` on the same trader starts fresh again).
        if std::mem::take(&mut self.resume_pending) {
            if let Some(p) = self.progress.take() {
                if p.env.t < start || p.env.t >= end {
                    return Err(CitError::Config(format!(
                        "checkpoint environment day {} outside this panel's training span [{start}, {end})",
                        p.env.t
                    )));
                }
                env.restore(&p.env);
                prev_actions = p.prev_actions;
                steps = p.steps;
                update_idx = p.update_idx;
                update_rewards = p.update_rewards;
                if let Some(state) = self.opt_state.take() {
                    opt.import_state(state);
                }
                tel.emit(
                    Record::new("checkpoint.resume")
                        .with("scope", "trainer")
                        .with("steps", steps)
                        .with("update", update_idx),
                );
            }
        }

        // ---- Heartbeat state ----
        // Pure diagnostics: EWMAs and a wall clock read only when
        // telemetry is enabled, never touching the RNG or the math, so a
        // monitored run stays bit-identical to an unmonitored one.
        let heartbeat_every = if tel.is_enabled() {
            cfg.heartbeat_every
        } else {
            0
        };
        let mut hb_last_update = update_idx;
        let mut hb_last_time = Instant::now();
        let mut hb_actor_ewma: Option<f64> = None;
        let mut hb_critic_ewma: Option<f64> = None;
        let mut hb_grad_ewma: Option<f64> = None;
        const HB_ALPHA: f64 = 0.1;
        let ewma = |prev: &mut Option<f64>, v: f64| -> f64 {
            let next = match *prev {
                Some(p) => p + HB_ALPHA * (v - p),
                None => v,
            };
            *prev = Some(next);
            next
        };

        while steps < cfg.total_steps {
            let _update_timer = tel.span("train.update");
            if supervise
                && (good.is_none()
                    || (update_idx != last_good_update
                        && update_idx.is_multiple_of(snapshot_every)))
            {
                good = Some(Recovery {
                    store: self.store.clone(),
                    opt: opt.export_state(),
                    rng: self.rng.state(),
                    progress: Progress {
                        steps,
                        update_idx,
                        update_rewards: update_rewards.clone(),
                        prev_actions: prev_actions.clone(),
                        env: env.snapshot(),
                    },
                });
                last_good_update = update_idx;
            }
            // ---- Rollout ----
            let rollout_timer = tel.span("train.rollout");
            let mut days = Vec::with_capacity(cfg.rollout);
            let mut decisions: Vec<Decision> = Vec::with_capacity(cfg.rollout);
            let mut rewards = Vec::with_capacity(cfg.rollout);
            for _ in 0..cfg.rollout {
                let _step_timer = tel.span("train.step");
                let t = env.current_day();
                let d = self.decide(panel, t, &prev_actions, true);
                let res = env.step(&d.final_action);
                prev_actions = d.pre_actions.clone();
                days.push(t);
                decisions.push(d);
                rewards.push(res.reward);
                steps += 1;
                step_counter.inc();
                if res.done {
                    env.reset();
                    prev_actions = vec![uniform.clone(); n];
                    break;
                }
            }
            drop(rollout_timer);
            if decisions.is_empty() {
                continue;
            }
            let len = decisions.len();

            let mut failure: Option<String> = None;
            let mut actor_loss = 0.0f64;
            let mut critic_loss = 0.0f64;
            let mut grad_norm = 0.0f32;
            let mut td_stats = (0.0f64, 0.0f64);
            'update: {
                // Health check: a poisoned or diverged policy surfaces as a
                // non-finite latent in the rollout.
                if supervise
                    && decisions.iter().any(|d| {
                        !d.cross_latent.all_finite()
                            || d.pre_latents.iter().any(|l| !l.all_finite())
                    })
                {
                    failure = Some("non-finite policy latent in rollout".into());
                    break 'update;
                }

                // ---- Q estimates and λ-targets ----
                let target_timer = tel.span("train.targets");
                let markets: Vec<Vec<f32>> = days.iter().map(|&t| market_state(panel, t)).collect();
                // qs[t][j]: value for optimisation target j at step t.
                let qs: Vec<Vec<f64>> = decisions
                    .iter()
                    .zip(&markets)
                    .map(|(d, mkt)| self.q_values(mkt, d))
                    .collect();
                // Bootstrap from a deterministic decision at the next day.
                let boot_t = env.current_day();
                let boot_decision = {
                    // Deterministic pass must not consume RNG state differently
                    // per mode; use mean actions.
                    let prev = prev_actions.clone();
                    self.decide(panel, boot_t, &prev, false)
                };
                let boot_market = market_state(panel, boot_t);
                let boot_q = self.q_values(&boot_market, &boot_decision);

                let num_targets = n + 1;
                let mut targets: Vec<Vec<f64>> = Vec::with_capacity(num_targets);
                for j in 0..num_targets {
                    let series: Vec<f64> = qs.iter().map(|q| q[j]).collect();
                    let mut values = series;
                    values.push(boot_q[j]);
                    targets.push(lambda_targets(
                        &rewards, &values, cfg.gamma, cfg.lambda, cfg.nstep,
                    ));
                }
                drop(target_timer);
                td_stats = mean_std(&targets[n]);
                if supervise {
                    let finite = qs.iter().flatten().all(|v| v.is_finite())
                        && boot_q.iter().all(|v| v.is_finite())
                        && targets.iter().flatten().all(|v| v.is_finite());
                    if !finite {
                        failure = Some("non-finite Q estimate or λ-target".into());
                        break 'update;
                    }
                }

                // ---- Advantages ----
                let advantage_timer = tel.span("train.advantages");
                // Cross-insight policy: Q-weighted gradient (Eq. 3) with a
                // constant baseline (batch centring) for variance reduction.
                let mut adv_cross: Vec<f64> = (0..len).map(|t| qs[t][n]).collect();
                normalize_advantages(&mut adv_cross);
                // Horizon policies, per critic mode.
                let mut adv_horizon: Vec<Vec<f64>> = match cfg.critic_mode {
                    CriticMode::Counterfactual => {
                        // n critic evaluations per step, all independent:
                        // chunk the steps across the worker pool.
                        let this = &*self;
                        let tasks: Vec<_> = chunk_ranges(len, this.threads)
                            .into_iter()
                            .map(|(lo, hi)| {
                                let (markets, decisions) = (&markets, &decisions);
                                move || {
                                    (lo..hi)
                                        .map(|t| {
                                            this.counterfactual_baselines(
                                                &markets[t],
                                                &decisions[t],
                                            )
                                        })
                                        .collect::<Vec<_>>()
                                }
                            })
                            .collect();
                        let baselines: Vec<Vec<f64>> = parallel_map(this.threads, tasks)
                            .into_iter()
                            .flatten()
                            .collect();
                        let mut advs = vec![vec![0.0f64; len]; n];
                        for t in 0..len {
                            for k in 0..n {
                                advs[k][t] = qs[t][k] - baselines[t][k];
                            }
                        }
                        advs
                    }
                    CriticMode::SharedQ => (0..n)
                        .map(|k| (0..len).map(|t| qs[t][k]).collect())
                        .collect(),
                    CriticMode::Decentralized => (0..n)
                        .map(|k| (0..len).map(|t| qs[t][k]).collect())
                        .collect(),
                };
                // Raw counterfactual advantages Â^k (Eq. 8) before batch
                // normalisation — these are the per-horizon credit-assignment
                // signals the paper's counterfactual mechanism produces.
                if tel.is_enabled() {
                    for (k, adv) in adv_horizon.iter().enumerate() {
                        let (mean, std) = mean_std(adv);
                        tel.emit(
                            Record::new("train.advantage")
                                .with("update", update_idx)
                                .with("horizon", k)
                                .with("mean", mean)
                                .with("std", std),
                        );
                    }
                }
                for adv in adv_horizon.iter_mut() {
                    normalize_advantages(adv);
                }
                drop(advantage_timer);
                if supervise {
                    let finite = adv_cross.iter().all(|v| v.is_finite())
                        && adv_horizon.iter().flatten().all(|v| v.is_finite());
                    if !finite {
                        failure = Some("non-finite advantage".into());
                        break 'update;
                    }
                }

                // ---- Split-graph loss, one task per optimisation target ----
                // Horizon policy k touches only pi{k}.* parameters; the cross
                // policy and the critic(s) own the rest. The joint loss
                // therefore factors into n+1 independent graphs whose backward
                // passes run concurrently on the worker pool. Gradients are
                // reduced in fixed task order, so results are bit-identical for
                // every thread count.
                let graph_timer = tel.span("train.graph_build");
                let linv = 1.0 / len as f32;
                // (gradients, actor-loss part, critic-loss part)
                type TaskOut = (Vec<(ParamId, Tensor)>, f64, f64);
                let this = &*self;
                let adv_cross_ref = &adv_cross;
                let decisions_ref = &decisions;
                let markets_ref = &markets;
                let targets_ref = &targets;
                let mut tasks: Vec<Box<dyn FnOnce() -> TaskOut + Send + '_>> =
                    Vec::with_capacity(n + 1);
                for (k, adv_k) in adv_horizon.iter().enumerate() {
                    let tel_k = tel.clone();
                    // Horizon actor k (Eq. 2 with Ψ = Â^k).
                    tasks.push(Box::new(move || {
                        let mut ctx =
                            Ctx::with_graph_telemetry(&this.store, this.pool.take(), tel_k);
                        let mut total: Option<Var> = None;
                        for t in 0..len {
                            let d = &decisions_ref[t];
                            let mean =
                                this.horizon_actors[k].mean(&mut ctx, &d.windows[k], &d.extras[k]);
                            let logp = this.horizon_actors[k].head.log_prob(
                                &mut ctx,
                                mean,
                                &d.pre_latents[k],
                            );
                            let term = ctx.g.scale(logp, -(adv_k[t] as f32) * linv);
                            total = Some(match total {
                                Some(a) => ctx.g.add(a, term),
                                None => term,
                            });
                        }
                        let loss = total.expect("non-empty rollout");
                        let grads = ctx.backward(loss);
                        let lv = ctx.g.value(loss).data()[0] as f64;
                        this.pool.put(ctx.into_graph());
                        (grads, lv, 0.0)
                    }));
                }
                {
                    let tel_c = tel.clone();
                    // Cross-insight actor (Eq. 3) + critic regression (Eq. 6).
                    tasks.push(Box::new(move || {
                        let mut ctx =
                            Ctx::with_graph_telemetry(&this.store, this.pool.take(), tel_c.clone());
                        let mut actor_total: Option<Var> = None;
                        let mut critic_total: Option<Var> = None;
                        let add_term = |ctx: &mut Ctx<'_>, v: Var, acc: &mut Option<Var>| {
                            *acc = Some(match *acc {
                                Some(a) => ctx.g.add(a, v),
                                None => v,
                            });
                        };
                        for t in 0..len {
                            let d = &decisions_ref[t];
                            let mean = this.cross_actor.mean(&mut ctx, &d.raw, &d.cross_extra);
                            let logp =
                                this.cross_actor
                                    .head
                                    .log_prob(&mut ctx, mean, &d.cross_latent);
                            let term = ctx.g.scale(logp, -(adv_cross_ref[t] as f32) * linv);
                            add_term(&mut ctx, term, &mut actor_total);

                            let _critic_timer = tel_c.span("critic.update");
                            match &this.critic {
                                CriticNet::Central(c) => {
                                    let x = c.input_vector(
                                        &markets_ref[t],
                                        &d.pre_actions,
                                        &d.final_action,
                                    );
                                    let q = c.q(&mut ctx, &x);
                                    let y = ctx.input(Tensor::vector(&[targets_ref[n][t] as f32]));
                                    let diff = ctx.g.sub(q, y);
                                    let sq = ctx.g.mul(diff, diff);
                                    let scaled = ctx.g.scale(sq, 0.5 * linv);
                                    let s = ctx.g.sum_all(scaled);
                                    add_term(&mut ctx, s, &mut critic_total);
                                }
                                CriticNet::Dec(dc) => {
                                    for (k, target_k) in targets_ref.iter().take(n).enumerate() {
                                        let x = dc.input_vector(&markets_ref[t], &d.pre_actions[k]);
                                        let q = dc.q(&mut ctx, k, &x);
                                        let y = ctx.input(Tensor::vector(&[target_k[t] as f32]));
                                        let diff = ctx.g.sub(q, y);
                                        let sq = ctx.g.mul(diff, diff);
                                        let scaled = ctx.g.scale(sq, 0.5 * linv);
                                        let s = ctx.g.sum_all(scaled);
                                        add_term(&mut ctx, s, &mut critic_total);
                                    }
                                    let x = dc.input_vector(&markets_ref[t], &d.final_action);
                                    let q = dc.q(&mut ctx, n, &x);
                                    let y = ctx.input(Tensor::vector(&[targets_ref[n][t] as f32]));
                                    let diff = ctx.g.sub(q, y);
                                    let sq = ctx.g.mul(diff, diff);
                                    let scaled = ctx.g.scale(sq, 0.5 * linv);
                                    let s = ctx.g.sum_all(scaled);
                                    add_term(&mut ctx, s, &mut critic_total);
                                }
                            }
                        }
                        let actor_var = actor_total.expect("non-empty rollout");
                        let critic_var = critic_total.expect("critic regression term present");
                        let loss = ctx.g.add(actor_var, critic_var);
                        let grads = ctx.backward(loss);
                        let a = ctx.g.value(actor_var).data()[0] as f64;
                        let c = ctx.g.value(critic_var).data()[0] as f64;
                        this.pool.put(ctx.into_graph());
                        (grads, a, c)
                    }));
                }
                let results = parallel_map(this.threads, tasks);
                drop(graph_timer);

                // Fixed-order reduction: task order, not completion order.
                let opt_timer = tel.span("train.opt_step");
                for (grads, a, c) in results {
                    self.store.apply_grads(grads);
                    actor_loss += a;
                    critic_loss += c;
                }
                self.apply_entropy_bonus();
                // Chaos hook: poison a named parameter's gradient at this
                // update (each fault fires once, so a rollback replaying the
                // update is clean — that is what makes recovery bit-identical
                // to an uninjected run).
                if self.faults.is_enabled() {
                    for (param, v) in self.faults.grad_poison(update_idx as u64) {
                        let hit = self
                            .store
                            .ids()
                            .find(|&id| self.store.name(id).starts_with(&param));
                        if let Some(id) = hit {
                            let shape = self.store.value(id).shape().to_vec();
                            self.store.accumulate_grad(id, &Tensor::full(&shape, v));
                            tel.emit(
                                Record::new("fault.injected")
                                    .with("kind", "grad")
                                    .with("param", param)
                                    .with("update", update_idx),
                            );
                        }
                    }
                }
                grad_norm = self.store.clip_grad_norm(cfg.grad_clip);
                if supervise {
                    if !grad_norm.is_finite() {
                        // `clip_grad_norm` already zeroed the poisoned grads.
                        failure = Some("non-finite gradient norm".into());
                    } else if cfg.grad_spike_factor > 0.0 && grad_norm_history.len() >= 8 {
                        let mut sorted: Vec<f64> = grad_norm_history.iter().copied().collect();
                        sorted.sort_by(f64::total_cmp);
                        let median = sorted[sorted.len() / 2];
                        if median > 0.0 && f64::from(grad_norm) > cfg.grad_spike_factor * median {
                            failure = Some(format!(
                            "grad-norm spike: {grad_norm:.4} > {:.1}× rolling median {median:.4}",
                            cfg.grad_spike_factor
                        ));
                        }
                    }
                    if failure.is_none() && !(actor_loss.is_finite() && critic_loss.is_finite()) {
                        failure = Some("non-finite loss".into());
                    }
                    if failure.is_some() {
                        self.store.zero_grads();
                        break 'update;
                    }
                }
                opt.step(&mut self.store);
                drop(opt_timer);
            }

            // ---- Supervisor: rollback on a failed health check ----
            if let Some(reason) = failure {
                rollbacks += 1;
                let recovery = match good.as_ref() {
                    Some(g) if rollbacks <= cfg.max_rollbacks => g,
                    _ => {
                        return Err(CitError::Diverged {
                            update: update_idx,
                            rollbacks: rollbacks.saturating_sub(1),
                            reason,
                        })
                    }
                };
                tel.emit(
                    Record::new("supervisor.rollback")
                        .with("update", update_idx)
                        .with("restored_update", recovery.progress.update_idx)
                        .with("attempt", rollbacks)
                        .with("reason", reason),
                );
                tel.counter("supervisor.rollbacks").inc();
                pending_recovery = Some(pending_recovery.map_or(update_idx, |f| f.max(update_idx)));
                // Restore the last known-good state wholesale: parameters,
                // optimiser moments, RNG stream, environment and counters.
                self.store = recovery.store.clone();
                opt.import_state(recovery.opt.clone());
                self.rng = StdRng::from_state(recovery.rng);
                env.restore(&recovery.progress.env);
                prev_actions = recovery.progress.prev_actions.clone();
                steps = recovery.progress.steps;
                update_idx = recovery.progress.update_idx;
                update_rewards = recovery.progress.update_rewards.clone();
                // Back off the learning rate for the retry (compounding
                // across consecutive rollbacks; 1.0 retries unchanged).
                cur_lr *= cfg.lr_backoff;
                opt.set_lr(cur_lr);
                grad_norm_history.clear();
                continue;
            }
            if supervise {
                grad_norm_history.push_back(f64::from(grad_norm));
                if grad_norm_history.len() > 33 {
                    grad_norm_history.pop_front();
                }
                if pending_recovery.is_some_and(|failed| update_idx >= failed) {
                    tel.emit(
                        Record::new("supervisor.recovered")
                            .with("update", update_idx)
                            .with("rollbacks", rollbacks)
                            .with("lr", f64::from(cur_lr)),
                    );
                    tel.counter("supervisor.recoveries").inc();
                    rollbacks = 0;
                    pending_recovery = None;
                }
            }

            let mean_reward = rewards.iter().sum::<f64>() / rewards.len() as f64;
            update_rewards.push(mean_reward);
            update_counter.inc();
            if tel.is_enabled() {
                let (log_std_mean, entropy_mean) = self.gaussian_stats();
                let (target_mean, target_std) = td_stats;
                tel.emit(
                    Record::new("train.update")
                        .with("update", update_idx)
                        .with("steps", steps)
                        .with("mean_reward", mean_reward)
                        .with("actor_loss", actor_loss)
                        .with("critic_loss", critic_loss)
                        .with("grad_norm", grad_norm as f64)
                        .with("td_target_mean", target_mean)
                        .with("td_target_std", target_std)
                        .with("log_std_mean", log_std_mean)
                        .with("entropy", entropy_mean),
                );
            }
            if heartbeat_every > 0 {
                let actor_ewma = ewma(&mut hb_actor_ewma, actor_loss);
                let critic_ewma = ewma(&mut hb_critic_ewma, critic_loss);
                let grad_ewma = ewma(&mut hb_grad_ewma, f64::from(grad_norm));
                if (update_idx + 1).is_multiple_of(heartbeat_every) {
                    let now = Instant::now();
                    let dt = now.duration_since(hb_last_time).as_secs_f64();
                    let updates_per_s = if dt > 0.0 {
                        (update_idx + 1 - hb_last_update) as f64 / dt
                    } else {
                        0.0
                    };
                    hb_last_time = now;
                    hb_last_update = update_idx + 1;
                    let progress = (steps as f64 / cfg.total_steps.max(1) as f64).clamp(0.0, 1.0);
                    tel.gauge("train.progress").set(progress);
                    tel.gauge("train.updates_per_s").set(updates_per_s);
                    tel.emit(
                        Record::new("train.heartbeat")
                            .with("update", update_idx)
                            .with("steps", steps)
                            .with("progress", progress)
                            .with("updates_per_s", updates_per_s)
                            .with("actor_loss_ewma", actor_ewma)
                            .with("critic_loss_ewma", critic_ewma)
                            .with("grad_norm_ewma", grad_ewma)
                            .with("rollbacks", tel.counter("supervisor.rollbacks").get()),
                    );
                }
            }
            update_idx += 1;

            // Periodic crash-safe checkpoint at the update boundary, where
            // the optimiser, RNG and environment are all consistent.
            if cfg.checkpoint_every > 0 && update_idx.is_multiple_of(cfg.checkpoint_every) {
                if let Some(path) = self.checkpoint_path.clone() {
                    let progress = Progress {
                        steps,
                        update_idx,
                        update_rewards: update_rewards.clone(),
                        prev_actions: prev_actions.clone(),
                        env: env.snapshot(),
                    };
                    // A failed periodic write must not kill the run: the
                    // previous checkpoint is still intact on disk (writes
                    // are atomic), so log the error and keep training.
                    if let Err(e) = self.write_checkpoint(&path, &opt, &progress) {
                        tel.emit(
                            Record::new("checkpoint.error")
                                .with("scope", "trainer")
                                .with("update", update_idx)
                                .with("path", path.display().to_string())
                                .with("error", e.to_string()),
                        );
                        tel.counter("checkpoint.write_errors").inc();
                    }
                }
            }
        }
        // Capture the final training state so `save` persists a checkpoint
        // that a fresh trader can `load` and continue from (e.g. with a
        // larger `total_steps`).
        self.opt_state = Some(opt.export_state());
        self.progress = Some(Progress {
            steps,
            update_idx,
            update_rewards: update_rewards.clone(),
            prev_actions,
            env: env.snapshot(),
        });
        tel.gauge("train.final_mean_reward")
            .set(update_rewards.last().copied().unwrap_or(0.0));
        if heartbeat_every > 0 {
            tel.gauge("train.progress")
                .set((steps as f64 / cfg.total_steps.max(1) as f64).clamp(0.0, 1.0));
        }
        let report = TrainReport {
            update_rewards,
            steps,
        };
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// Writes a full v2 checkpoint (atomically) and emits a
    /// `checkpoint.save` telemetry record.
    fn write_checkpoint(
        &self,
        path: &Path,
        opt: &Adam,
        progress: &Progress,
    ) -> Result<(), CitError> {
        let state = TrainState {
            optimizer: Some(OptimState::Adam(opt.export_state())),
            rng: Some(self.rng.state()),
            trainer: progress.encode(),
        };
        serialize::save_v2_with(&self.store, &state, path, &self.faults)?;
        self.telemetry.emit(
            Record::new("checkpoint.save")
                .with("scope", "trainer")
                .with("steps", progress.steps)
                .with("update", progress.update_idx)
                .with("path", path.display().to_string()),
        );
        Ok(())
    }

    /// Mean `log σ` across every Gaussian head, and the mean closed-form
    /// policy entropy `Σ log σ_i + d/2·(1 + ln 2π)` per head.
    fn gaussian_stats(&self) -> (f64, f64) {
        let mut log_std_sum = 0.0f64;
        let mut log_std_count = 0usize;
        let mut entropies = Vec::new();
        for pid in self.store.ids() {
            if !self.store.name(pid).ends_with(".log_std") {
                continue;
            }
            let vals = self.store.value(pid).data();
            let sum: f64 = vals.iter().map(|&v| v as f64).sum();
            let d = vals.len() as f64;
            log_std_sum += sum;
            log_std_count += vals.len();
            entropies.push(sum + 0.5 * d * (1.0 + (2.0 * std::f64::consts::PI).ln()));
        }
        if log_std_count == 0 {
            return (0.0, 0.0);
        }
        let entropy_mean = entropies.iter().sum::<f64>() / entropies.len() as f64;
        (log_std_sum / log_std_count as f64, entropy_mean)
    }

    fn apply_entropy_bonus(&mut self) {
        if self.cfg.entropy_coef == 0.0 {
            return;
        }
        let ids: Vec<_> = self
            .store
            .ids()
            .filter(|&pid| self.store.name(pid).ends_with(".log_std"))
            .collect();
        for id in ids {
            let g = Tensor::full(&[self.num_assets], -self.cfg.entropy_coef);
            self.store.accumulate_grad(id, &g);
        }
    }

    /// Deterministic per-policy pre-decisions at day `t` (for the Figure
    /// 5/6 per-policy analysis). Returns `n` portfolios plus the fused one.
    pub fn policy_actions(
        &mut self,
        panel: &AssetPanel,
        t: usize,
        prev_actions: &[Vec<f64>],
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let d = self.decide(panel, t, prev_actions, false);
        (d.pre_actions, d.final_action)
    }

    /// Saves a full v2 checkpoint to `path` (see [`cit_nn::serialize`]):
    /// parameters, plus — when the trader has trained — the Adam moments,
    /// the RNG stream and the training progress, so a fresh trader that
    /// [`CrossInsightTrader::load`]s the file continues the run
    /// bit-identically. The write is atomic (temp file + fsync + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let state = TrainState {
            optimizer: self.opt_state.clone().map(OptimState::Adam),
            rng: Some(self.rng.state()),
            trainer: self
                .progress
                .as_ref()
                .map(Progress::encode)
                .unwrap_or_default(),
        };
        serialize::save_v2(&self.store, &state, path)?;
        self.telemetry.emit(
            Record::new("checkpoint.save")
                .with("scope", "trainer")
                .with("steps", self.progress.as_ref().map_or(0, |p| p.steps))
                .with("path", path.display().to_string()),
        );
        Ok(())
    }

    /// Restores a checkpoint written by [`CrossInsightTrader::save`] (v2)
    /// or any legacy v1 params-only file. The trader must be constructed
    /// with the same configuration and panel shape first.
    ///
    /// A v2 checkpoint carrying training progress arms the next
    /// [`CrossInsightTrader::train`] call to resume that run exactly; a v1
    /// (or progress-free) file restores parameters only and the next
    /// `train` starts fresh.
    pub fn load(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let state = serialize::load_full(&mut self.store, path)?;
        self.opt_state = match state.optimizer {
            Some(OptimState::Adam(a)) => Some(a),
            Some(OptimState::Sgd(_)) => {
                return Err(CheckpointError::Mismatch(
                    "checkpoint carries SGD state but the trader optimises with Adam".into(),
                ))
            }
            None => None,
        };
        if let Some(s) = state.rng {
            if s.iter().all(|&w| w == 0) {
                return Err(CheckpointError::Malformed(
                    "all-zero RNG state is invalid for xoshiro256++".into(),
                ));
            }
            self.rng = StdRng::from_state(s);
        }
        self.progress = Progress::decode(&state.trainer, self.cfg.num_policies, self.num_assets)?;
        self.resume_pending = self.progress.is_some();
        self.telemetry.emit(
            Record::new("checkpoint.resume")
                .with("scope", "trainer")
                .with("steps", self.progress.as_ref().map_or(0, |p| p.steps))
                .with("resumable", if self.resume_pending { 1 } else { 0 })
                .with("path", path.display().to_string()),
        );
        Ok(())
    }

    /// Name-keyed copies of every parameter value, in registration order.
    /// Lets determinism tests compare two training runs bit-for-bit.
    pub fn export_params(&self) -> Vec<(String, Vec<f32>)> {
        self.store
            .ids()
            .map(|id| {
                (
                    self.store.name(id).to_string(),
                    self.store.value(id).data().to_vec(),
                )
            })
            .collect()
    }

    /// Hit/miss counters of the sliding-window DWT cache.
    pub fn dwt_stats(&self) -> DwtCacheStats {
        self.dwt.stats()
    }

    /// The resolved worker-thread count in force.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resets evaluation state (previous actions) to uniform.
    pub fn reset_eval(&mut self) {
        let m = self.num_assets;
        self.eval_prev = vec![vec![1.0 / m as f64; m]; self.cfg.num_policies];
    }
}

/// Mean and population standard deviation of a sample.
fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// `softmax(τ·u)` — the latent-to-portfolio map shared by sampling,
/// deterministic evaluation, the counterfactual default action and the
/// inference-only [`crate::DecisionModel`].
pub(crate) fn temperature_action(latent: &Tensor, temperature: f32) -> Vec<f64> {
    let scaled = latent.scale(temperature);
    softmax_last_tensor(&scaled)
        .data()
        .iter()
        .map(|&v| v as f64)
        .collect()
}

impl Strategy for CrossInsightTrader {
    fn name(&self) -> String {
        "CIT".to_string()
    }

    fn reset(&mut self, _m: usize) {
        self.reset_eval();
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let prev = self.eval_prev.clone();
        let d = self.decide(ctx.panel, ctx.t, &prev, false);
        self.eval_prev = d.pre_actions.clone();
        d.final_action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 3,
            num_days: 220,
            test_start: 160,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn decide_produces_valid_decision() {
        let p = panel();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(1));
        let m = 3;
        let prev = vec![vec![1.0 / 3.0; m]; 2];
        let d = cit.decide(&p, 100, &prev, true);
        assert_eq!(d.pre_actions.len(), 2);
        for a in &d.pre_actions {
            assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-5);
        }
        assert!((d.final_action.iter().sum::<f64>() - 1.0).abs() < 1e-5);
        assert_eq!(d.cross_extra.len(), 2 * 3);
    }

    #[test]
    fn deterministic_decide_is_reproducible() {
        let p = panel();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(2));
        let prev = vec![vec![1.0 / 3.0; 3]; 2];
        let a = cit.decide(&p, 100, &prev, false).final_action;
        let b = cit.decide(&p, 100, &prev, false).final_action;
        assert_eq!(a, b);
    }

    #[test]
    fn counterfactual_baseline_differs_from_q_when_sampled() {
        let p = panel();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(3));
        let prev = vec![vec![1.0 / 3.0; 3]; 2];
        let d = cit.decide(&p, 100, &prev, true);
        let market = market_state(&p, 100);
        let q = cit.q_values(&market, &d)[0];
        let baselines = cit.counterfactual_baselines(&market, &d);
        // A sampled action differs from the mean action, so at least one
        // baseline should differ from Q (not a strict invariant, but with
        // random init collisions are measure-zero).
        assert!(baselines.iter().any(|b| (b - q).abs() > 1e-9));
    }

    #[test]
    fn training_smoke_counterfactual() {
        let p = panel();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(4));
        let rep = cit.train(&p);
        assert!(rep.steps >= 200);
        assert!(!rep.update_rewards.is_empty());
        // Model still sane after training.
        let prev = vec![vec![1.0 / 3.0; 3]; 2];
        let d = cit.decide(&p, 170, &prev, false);
        assert!(d.final_action.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn training_smoke_shared_q_and_dec_critic() {
        let p = panel();
        for mode in [CriticMode::SharedQ, CriticMode::Decentralized] {
            let mut cfg = CitConfig::smoke(5);
            cfg.critic_mode = mode;
            let mut cit = CrossInsightTrader::new(&p, cfg);
            let rep = cit.train(&p);
            assert!(rep.steps >= 200, "{mode:?}");
        }
    }

    #[test]
    fn strategy_interface_runs_backtest() {
        let p = panel();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(6));
        cit.train(&p);
        let res = cit_market::run_test_period(
            &p,
            EnvConfig {
                window: 16,
                transaction_cost: 1e-3,
            },
            &mut cit,
        );
        assert_eq!(res.wealth.len(), p.num_days() - p.test_start());
        assert!(res.metrics.mdd <= 1.0);
    }

    #[test]
    fn temperature_concentrates_actions() {
        // Higher temperature must produce (weakly) more concentrated
        // portfolios from the same latent scores.
        let latent = Tensor::vector(&[0.5, 0.1, -0.2]);
        let cold = temperature_action(&latent, 1.0);
        let hot = temperature_action(&latent, 8.0);
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        assert!(max(&hot) > max(&cold), "hot {hot:?} vs cold {cold:?}");
        assert!((hot.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!((cold.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn telemetry_reports_losses_and_per_horizon_advantages() {
        let p = panel();
        let (tel, sink) = cit_telemetry::Telemetry::memory();
        let mut cit = CrossInsightTrader::new(&p, CitConfig::smoke(8)).with_telemetry(tel.clone());
        let rep = cit.train(&p);
        assert!(rep.steps >= 200);

        let updates = sink.by_kind("train.update");
        assert_eq!(updates.len(), rep.update_rewards.len());
        for u in &updates {
            for key in [
                "actor_loss",
                "critic_loss",
                "grad_norm",
                "td_target_mean",
                "entropy",
            ] {
                let v = u.get_f64(key).unwrap_or_else(|| panic!("missing {key}"));
                assert!(v.is_finite(), "{key} not finite");
            }
            assert!(u.get_f64("grad_norm").unwrap() >= 0.0);
        }

        // One counterfactual-advantage record per horizon per update.
        let n = cit.config().num_policies;
        let advs = sink.by_kind("train.advantage");
        assert_eq!(advs.len(), updates.len() * n);
        for k in 0..n {
            assert!(
                advs.iter().any(|r| r.get_f64("horizon") == Some(k as f64)),
                "no advantage record for horizon {k}"
            );
        }

        // Hot-path spans fired.
        for span in [
            "train.update",
            "nn.backward",
            "dwt.horizon_windows",
            "actor.forward",
            "critic.update",
        ] {
            assert!(
                tel.span_histogram(span).count() > 0,
                "span {span} never recorded"
            );
        }
        assert_eq!(tel.counter("train.updates").get() as usize, updates.len());

        // Heartbeats: smoke config emits one every 5 updates, each with
        // rate, EWMA and progress fields, and the progress gauge lands
        // at 1.0 when the run completes.
        assert_eq!(cit.config().heartbeat_every, 5);
        let beats = sink.by_kind("train.heartbeat");
        assert_eq!(beats.len(), updates.len() / 5);
        for b in &beats {
            for key in [
                "progress",
                "updates_per_s",
                "actor_loss_ewma",
                "critic_loss_ewma",
                "grad_norm_ewma",
                "rollbacks",
            ] {
                let v = b.get_f64(key).unwrap_or_else(|| panic!("missing {key}"));
                assert!(v.is_finite(), "{key} not finite");
            }
            let p = b.get_f64("progress").unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
        let final_progress = tel.gauge("train.progress").get();
        assert!(
            (final_progress - 1.0).abs() < 1e-9,
            "progress gauge {final_progress} after a completed run"
        );
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        // Training with and without telemetry must produce bit-identical
        // learning curves (instrumentation must not touch the RNG or math).
        let p = panel();
        let mut plain = CrossInsightTrader::new(&p, CitConfig::smoke(9));
        let (tel, _sink) = cit_telemetry::Telemetry::memory();
        let mut instrumented = CrossInsightTrader::new(&p, CitConfig::smoke(9)).with_telemetry(tel);
        let a = plain.train(&p);
        let b = instrumented.train(&p);
        assert_eq!(a.update_rewards, b.update_rewards);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn window_too_short_for_levels_panics() {
        let p = panel();
        let mut cfg = CitConfig::smoke(7);
        cfg.num_policies = 6;
        cfg.window = 16; // needs 2^5 = 32
        let _ = CrossInsightTrader::new(&p, cfg);
    }
}
