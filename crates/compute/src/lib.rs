//! # cit-compute
//!
//! std-only thread-level parallelism for the Cross-Insight Trader.
//!
//! The paper's architecture is embarrassingly parallel across the `n`
//! horizon policies: each π^k reads its own DWT scale and the policies only
//! meet at the cross-insight layer and the centralised critic. This crate
//! provides the one primitive the trainer needs to exploit that —
//! [`parallel_map`], a scoped-thread fork/join that always returns results
//! in task order — plus the `CIT_THREADS` resolution logic shared by config
//! and benches.
//!
//! Determinism contract: `parallel_map(t, tasks)` returns exactly the same
//! `Vec` for every `t`, provided each task is a pure function of its inputs.
//! Thread count only changes wall-clock, never values or their order, so a
//! fixed-order gradient reduction over the results is bit-reproducible.
//!
//! The [`autotune`] module complements the thread pool on the single-kernel
//! axis: it installs a one-shot cached [`cit_tensor::TilingScheme`]
//! autotuner so the matmul micro-kernels run with tile shapes tuned for
//! this host (see `results/autotune_cache.json`).

#![deny(missing_docs)]

pub mod autotune;

/// Parses a `CIT_THREADS`-style override. Returns `None` when the value is
/// absent, not an integer, or zero.
pub fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().filter(|&t| t >= 1)
}

/// Worker-thread count implied by the environment: `CIT_THREADS` when set
/// to a positive integer, otherwise the hardware parallelism (1 if
/// unknown).
pub fn threads_from_env() -> usize {
    parse_threads(std::env::var("CIT_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves an explicit configuration value against the environment: a
/// positive `cfg_threads` wins (lets tests pin the count without touching
/// process-global env vars); `0` means "auto" and defers to
/// [`threads_from_env`].
pub fn resolve_threads(cfg_threads: usize) -> usize {
    if cfg_threads >= 1 {
        cfg_threads
    } else {
        threads_from_env()
    }
}

/// Runs `tasks` on up to `threads` scoped worker threads and returns their
/// results **in task order**, regardless of completion order.
///
/// Tasks are distributed round-robin; with `threads <= 1` (or fewer than
/// two tasks) everything runs inline on the caller's thread with zero
/// spawn overhead. A panicking task is re-raised on the caller after all
/// workers have been joined.
pub fn parallel_map<T, F>(threads: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let mut buckets: Vec<Vec<(usize, F)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, f) in tasks.into_iter().enumerate() {
        buckets[i % workers].push((i, f));
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, f)| (i, f()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut panicked = None;
        for h in handles {
            match h.join() {
                Ok(pairs) => {
                    for (i, v) in pairs {
                        slots[i] = Some(v);
                    }
                }
                Err(p) => panicked = Some(p),
            }
        }
        if let Some(p) = panicked {
            std::panic::resume_unwind(p);
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("parallel_map: worker dropped a task"))
        .collect()
}

/// Splits `len` items into at most `chunks` contiguous `(start, end)`
/// ranges of near-equal size (earlier ranges get the remainder). Used to
/// batch many tiny tasks into one closure per worker.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn resolve_prefers_explicit_config() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        let serial: Vec<usize> = (0..23).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let tasks: Vec<_> = (0..23usize).map(|i| move || i * i).collect();
            assert_eq!(parallel_map(threads, tasks), serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<Box<dyn FnOnce() -> i32 + Send>> = Vec::new();
        assert!(parallel_map(4, none).is_empty());
        assert_eq!(parallel_map(4, vec![|| 7]), vec![7]);
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn parallel_map_propagates_worker_panics() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task boom")),
            Box::new(|| 3),
        ];
        let _ = parallel_map(2, tasks);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, chunks) in [(10, 3), (3, 10), (16, 4), (1, 1), (7, 2)] {
            let ranges = chunk_ranges(len, chunks);
            assert_eq!(ranges.first().map(|r| r.0), Some(0));
            assert_eq!(ranges.last().map(|r| r.1), Some(len));
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must tile contiguously");
                assert!(w[0].1 > w[0].0);
            }
        }
        assert!(chunk_ranges(0, 4).is_empty());
    }
}
