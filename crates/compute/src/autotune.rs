//! One-shot cached kernel autotuner.
//!
//! The matmul kernels in `cit-tensor` are parameterised by a runtime
//! [`TilingScheme`]; which scheme is fastest depends on the host CPU (cache
//! sizes, SIMD width the compiler targeted, core count). This module
//! installs a process-global scheme provider that, at **first use per
//! `(layout, M, K, N)` size class**, benchmarks a small candidate-scheme
//! grid and caches the winner — in-process and in
//! `results/autotune_cache.json` (keyed by host + size class) so later
//! processes on the same machine skip the bench entirely.
//!
//! Resolution order, as seen by a kernel call (highest priority first):
//!
//! 1. forced scheme — `cit_tensor::kernels::force_scheme` or `CIT_TILING`
//! 2. cache file entry for this host + layout + size class
//! 3. one-shot candidate bench (first call only; ~ms per size class)
//! 4. per-layout static defaults (`TilingScheme::default_for`)
//!
//! Setting `CIT_AUTOTUNE=off` (or `0`/`false`) disables the tuner
//! entirely: no provider is installed, no benching runs, no file is read
//! or written, and every kernel call uses the static defaults (or a forced
//! scheme). Because every scheme produces bit-identical results (the
//! kernels' determinism contract), autotuning can never change model
//! outputs — only wall-clock.

use cit_tensor::kernels::{self, MatmulLayout, TilingScheme, SUPPORTED_REGISTER_TILES};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Mutex, Once};
use std::time::Instant;

/// A power-of-two bucketing of a matmul problem size: every dimension is
/// rounded up to the next power of two (clamped to `[8, 4096]`), so nearby
/// shapes share one tuned scheme instead of re-benching per exact shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeClass {
    /// Rounded output-rows dimension.
    pub m: usize,
    /// Rounded reduction dimension.
    pub k: usize,
    /// Rounded output-cols dimension.
    pub n: usize,
}

impl SizeClass {
    /// The size class of an `(m, k, n)` problem.
    pub fn of(m: usize, k: usize, n: usize) -> Self {
        fn bucket(d: usize) -> usize {
            d.next_power_of_two().clamp(8, 4096)
        }
        SizeClass {
            m: bucket(m),
            k: bucket(k),
            n: bucket(n),
        }
    }

    fn label(&self) -> String {
        format!("{}x{}x{}", self.m, self.k, self.n)
    }
}

/// `true` when `CIT_AUTOTUNE` disables the tuner (`off`, `0` or `false`).
pub fn autotune_disabled() -> bool {
    matches!(
        std::env::var("CIT_AUTOTUNE").ok().as_deref().map(str::trim),
        Some("off" | "0" | "false")
    )
}

/// The persistent cache location: `CIT_AUTOTUNE_CACHE` when set, otherwise
/// `results/autotune_cache.json` at the repository root. The file is
/// host-specific (entries are keyed by hostname) and always safe to
/// delete — the only cost is a one-shot re-bench per size class.
pub fn cache_path() -> PathBuf {
    if let Ok(p) = std::env::var("CIT_AUTOTUNE_CACHE") {
        if !p.trim().is_empty() {
            return PathBuf::from(p);
        }
    }
    // CARGO_MANIFEST_DIR of cit-compute is <repo>/crates/compute.
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/autotune_cache.json"
    ))
}

/// A stable identifier for this machine, used to key cache entries so a
/// checked-in or copied cache file can never poison a different host.
pub fn host_key() -> String {
    if let Ok(h) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let h = h.trim();
        if !h.is_empty() {
            return h.to_string();
        }
    }
    std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .unwrap_or_else(|| "unknown-host".to_string())
}

/// Installs the autotuning scheme provider into `cit-tensor` (idempotent;
/// the first call wins process-wide). Honors `CIT_AUTOTUNE=off` by
/// installing nothing. Called by the trainer, the serving decision model
/// and the bench harness on construction, so any entry point gets tuned
/// kernels without extra wiring.
pub fn ensure_installed() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        if autotune_disabled() {
            return;
        }
        let tuner = Tuner::new();
        let _ = kernels::install_scheme_provider(Box::new(move |layout, m, k, n| {
            tuner.resolve(layout, m, k, n)
        }));
    });
}

struct TunerState {
    /// Resolved winners, the fast path for every call after the first.
    mem: HashMap<(MatmulLayout, SizeClass), TilingScheme>,
    /// Merged persisted view (`host|layout|class` → encoded scheme),
    /// including entries loaded from disk for other hosts, which are
    /// preserved on rewrite.
    file: BTreeMap<String, String>,
}

struct Tuner {
    host: String,
    path: PathBuf,
    state: Mutex<TunerState>,
}

impl Tuner {
    fn new() -> Self {
        let path = cache_path();
        let file = load_cache(&path);
        Tuner {
            host: host_key(),
            path,
            state: Mutex::new(TunerState {
                mem: HashMap::new(),
                file,
            }),
        }
    }

    fn file_key(&self, layout: MatmulLayout, class: SizeClass) -> String {
        format!("{}|{}|{}", self.host, layout.label(), class.label())
    }

    fn resolve(&self, layout: MatmulLayout, m: usize, k: usize, n: usize) -> TilingScheme {
        let class = SizeClass::of(m, k, n);
        let key = (layout, class);
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(s) = state.mem.get(&key) {
            return *s;
        }
        let fkey = self.file_key(layout, class);
        if let Some(s) = state
            .file
            .get(&fkey)
            .and_then(|enc| TilingScheme::parse(enc))
        {
            let s = s.validated();
            state.mem.insert(key, s);
            return s;
        }
        // One-shot bench, performed under the lock so concurrent first
        // callers of the same class wait for one tuning pass instead of
        // racing their own.
        let winner = bench_candidates(layout, class);
        state.mem.insert(key, winner);
        state.file.insert(fkey, winner.encode());
        persist_cache(&self.path, &state.file);
        winner
    }
}

/// The candidate grid for one layout. Small on purpose: the one-shot bench
/// must stay in the low-millisecond range per size class.
fn candidates(layout: MatmulLayout) -> Vec<TilingScheme> {
    let d = TilingScheme::default_for(layout);
    match layout {
        // nn/nt share the packed-panel driver: the register tile is the
        // lever, cache blocks come from the defaults.
        MatmulLayout::Nn | MatmulLayout::Nt => SUPPORTED_REGISTER_TILES
            .iter()
            .map(|&(mr, nr)| TilingScheme::new(mr, nr, d.mc, d.kc, d.nc).validated())
            .collect(),
        // tn is an axpy driver: mr/nr are ignored, mc/nc block the panel.
        MatmulLayout::Tn => [(32, 256), (64, 256), (64, 512), (128, 512)]
            .iter()
            .map(|&(mc, nc)| TilingScheme::new(d.mr, d.nr, mc, d.kc, nc).validated())
            .collect(),
    }
}

/// Deterministic pseudo-random bench operands (values are irrelevant for
/// timing; kept in [-0.5, 0.5) to avoid subnormals).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Benchmarks every candidate on a representative problem of this size
/// class (dimensions capped at 256 to bound tuning cost) and returns the
/// fastest. Falls back to the static default when the class is degenerate.
fn bench_candidates(layout: MatmulLayout, class: SizeClass) -> TilingScheme {
    let (m, k, n) = (class.m.min(256), class.k.min(256), class.n.min(256));
    let a = fill(m * k, 11);
    let b = fill(k * n, 23);
    let mut out = vec![0.0f32; m * n];
    let mut run = |scheme: TilingScheme| match layout {
        MatmulLayout::Nn => kernels::matmul_nn_acc_with(scheme, m, k, n, &a, &b, &mut out),
        MatmulLayout::Nt => kernels::matmul_nt_acc_with(scheme, m, k, n, &a, &b, &mut out),
        MatmulLayout::Tn => kernels::matmul_tn_acc_with(scheme, m, k, n, &a, &b, &mut out),
    };

    let mut best = TilingScheme::default_for(layout);
    let mut best_ns = u128::MAX;
    for cand in candidates(layout) {
        // Warm-up run: page in the pack buffer and estimate cost.
        let t0 = Instant::now();
        run(cand);
        let warm_ns = t0.elapsed().as_nanos().max(1);
        // Enough reps to fill ~200µs, capped so huge classes stay cheap.
        let reps = (200_000 / warm_ns).clamp(1, 64) as usize;
        let mut cand_ns = u128::MAX;
        for _ in 0..2 {
            let t0 = Instant::now();
            for _ in 0..reps {
                run(cand);
            }
            cand_ns = cand_ns.min(t0.elapsed().as_nanos() / reps as u128);
        }
        if cand_ns < best_ns {
            best_ns = cand_ns;
            best = cand;
        }
    }
    best
}

/// Loads the cache file into a key → encoded-scheme map. The format is the
/// flat JSON object written by [`persist_cache`]; anything unparseable is
/// skipped, so a corrupt or foreign file degrades to an empty cache.
fn load_cache(path: &PathBuf) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return map;
    };
    for line in text.lines() {
        let mut parts = line.split('"');
        // `  "key": "value",` splits as [_, key, colon, value, _].
        let (Some(_), Some(key), Some(sep), Some(value)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if sep.trim() == ":" && key.contains('|') {
            map.insert(key.to_string(), value.to_string());
        }
    }
    map
}

/// Atomically rewrites the cache file (temp + rename). Failures are
/// swallowed: persistence is an optimisation, never a correctness concern.
fn persist_cache(path: &PathBuf, entries: &BTreeMap<String, String>) {
    let mut text = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        text.push_str(&format!("  \"{key}\": \"{value}\"{comma}\n"));
    }
    text.push_str("}\n");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, &text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_buckets_to_powers_of_two() {
        assert_eq!(SizeClass::of(10, 17, 100), SizeClass::of(9, 32, 65));
        assert_eq!(SizeClass::of(1, 1, 1), SizeClass { m: 8, k: 8, n: 8 });
        let c = SizeClass::of(5000, 128, 3000);
        assert_eq!((c.m, c.k, c.n), (4096, 128, 4096));
        assert_eq!(c.label(), "4096x128x4096");
    }

    #[test]
    fn cache_round_trips_through_file_format() {
        let dir = std::env::temp_dir().join(format!("cit_autotune_test_{}", std::process::id()));
        let path = dir.join("cache.json");
        let mut entries = BTreeMap::new();
        entries.insert(
            "hostA|nt|128x128x128".to_string(),
            TilingScheme::new(8, 8, 64, 256, 256).encode(),
        );
        entries.insert(
            "hostB|nn|32x32x32".to_string(),
            TilingScheme::new(4, 16, 64, 256, 256).encode(),
        );
        persist_cache(&path, &entries);
        let loaded = load_cache(&path);
        assert_eq!(loaded, entries);
        let scheme = TilingScheme::parse(&loaded["hostA|nt|128x128x128"]).expect("parse");
        assert_eq!((scheme.mr, scheme.nr), (8, 8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_tolerates_garbage() {
        let dir = std::env::temp_dir().join(format!("cit_autotune_garbage_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.json");
        std::fs::write(
            &path,
            "this is { not json \"at\" all\n\"no-pipe\": \"4x4\"\n",
        )
        .unwrap();
        assert!(load_cache(&path).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn candidate_grids_are_nonempty_and_validated() {
        for layout in [MatmulLayout::Nn, MatmulLayout::Nt, MatmulLayout::Tn] {
            let cands = candidates(layout);
            assert!(!cands.is_empty());
            for c in cands {
                assert_eq!(c, c.validated(), "{layout:?} candidate not validated");
            }
        }
    }

    #[test]
    fn bench_picks_some_supported_candidate() {
        let winner = bench_candidates(MatmulLayout::Nt, SizeClass::of(32, 32, 32));
        assert!(SUPPORTED_REGISTER_TILES.contains(&(winner.mr, winner.nr)));
    }
}
