//! Offline stand-in for the `rand` crate.
//!
//! The build environment resolves dependencies offline, so the real
//! `rand` is unavailable. This crate provides the exact API subset the
//! workspace uses — [`rngs::StdRng`], [`Rng::random`],
//! [`Rng::random_range`] and [`SeedableRng::seed_from_u64`] — with the
//! same call-site syntax, backed by xoshiro256++ (a small, fast,
//! well-tested generator) seeded via SplitMix64.
//!
//! Determinism note: streams differ from the real `rand` crate's
//! `StdRng` (ChaCha12), but every consumer in this workspace only relies
//! on *seeded reproducibility*, which holds: the same seed always yields
//! the same stream.

#![deny(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirroring the real crate's design).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers).
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range, e.g.
    /// `rng.random_range(0.0..1.0)` or `rng.random_range(0..n)`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait SampleStandard {
    /// Draws one sample from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one sample uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    };
}
float_range!(f64);
float_range!(f32);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is at
                // most 2⁻⁶⁴ per draw — immaterial for simulation use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    };
}
int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i64);
int_range!(i32);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // initialisation recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Exports the full generator state (the four xoshiro256++ words),
        /// so a checkpoint can later reproduce the stream bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously returned by
        /// [`StdRng::state`]. The restored generator continues the exact
        /// stream the original would have produced.
        ///
        /// # Panics
        /// Panics on the all-zero state, which is invalid for xoshiro
        /// generators (the stream would be constant zero).
        pub fn from_state(state: [u64; 4]) -> Self {
            assert!(
                state.iter().any(|&w| w != 0),
                "all-zero xoshiro256++ state is invalid"
            );
            StdRng { s: state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let i: usize = rng.random_range(0..5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
        for _ in 0..1000 {
            let x: f32 = rng.random_range(-0.1f32..0.1);
            assert!(x.abs() <= 0.1);
        }
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(9);
        // Advance, snapshot, then check the restored copy tracks exactly.
        for _ in 0..17 {
            let _ = a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.random()
        }
        fn draw_nested(rng: &mut impl Rng) -> f64 {
            draw(rng)
        }
        let mut rng = StdRng::seed_from_u64(11);
        assert!(draw_nested(&mut rng).is_finite());
    }
}
