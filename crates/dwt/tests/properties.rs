//! Property-based invariants of the wavelet transform.

use cit_dwt::{decompose, horizon_scales, reconstruct, wavelet_smooth};
use proptest::prelude::*;

fn arb_signal() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 8..128)
}

proptest! {
    #[test]
    fn perfect_reconstruction(x in arb_signal(), levels in 1usize..4) {
        let p = decompose(&x, levels);
        let back = reconstruct(&p);
        prop_assert_eq!(back.len(), x.len());
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }

    #[test]
    fn horizon_bands_partition_signal(x in arb_signal(), n in 1usize..5) {
        let scales = horizon_scales(&x, n);
        prop_assert_eq!(scales.len(), n);
        for s in &scales {
            prop_assert_eq!(s.len(), x.len());
        }
        for t in 0..x.len() {
            let sum: f64 = scales.iter().map(|s| s[t]).sum();
            prop_assert!((sum - x[t]).abs() < 1e-8);
        }
    }

    #[test]
    fn smoothing_never_changes_length(x in arb_signal(), drop in 0usize..3) {
        let s = wavelet_smooth(&x, 3, drop);
        prop_assert_eq!(s.len(), x.len());
    }

    #[test]
    fn decomposition_is_linear(x in proptest::collection::vec(-50.0f64..50.0, 16..64), c in -3.0f64..3.0) {
        // decompose(c·x) == c·decompose(x)
        let scaled: Vec<f64> = x.iter().map(|v| c * v).collect();
        let pa = decompose(&x, 2);
        let pb = decompose(&scaled, 2);
        for (da, db) in pa.details.iter().zip(&pb.details) {
            for (a, b) in da.iter().zip(db) {
                prop_assert!((c * a - b).abs() < 1e-7);
            }
        }
        for (a, b) in pa.approx.iter().zip(&pb.approx) {
            prop_assert!((c * a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn approx_band_preserves_mean_for_pow2(exp in 3u32..7, offset in -10.0f64..10.0) {
        // For power-of-two lengths the approximation band has exactly the
        // same mean as the input (Haar averages pairs).
        let n = 1usize << exp;
        let x: Vec<f64> = (0..n).map(|i| offset + (i as f64 * 0.37).sin()).collect();
        let scales = horizon_scales(&x, 3);
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        prop_assert!((mean(&scales[0]) - mean(&x)).abs() < 1e-8);
    }
}
