//! Property-style invariants of the wavelet transform, exercised over
//! seeded pseudo-random inputs (deterministic loops instead of proptest,
//! which is unavailable in the offline build environment).

use cit_dwt::{decompose, horizon_scales, reconstruct, wavelet_smooth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn signal(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.random_range(-100.0..100.0)).collect()
}

#[test]
fn perfect_reconstruction() {
    let mut rng = StdRng::seed_from_u64(11);
    for case in 0..32 {
        let len = rng.random_range(8usize..128);
        let levels = rng.random_range(1usize..4);
        let x = signal(&mut rng, len);
        let p = decompose(&x, levels);
        let back = reconstruct(&p);
        assert_eq!(back.len(), x.len(), "case {case}");
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn horizon_bands_partition_signal() {
    let mut rng = StdRng::seed_from_u64(12);
    for case in 0..32 {
        let len = rng.random_range(8usize..128);
        let n = rng.random_range(1usize..5);
        let x = signal(&mut rng, len);
        let scales = horizon_scales(&x, n);
        assert_eq!(scales.len(), n, "case {case}");
        for s in &scales {
            assert_eq!(s.len(), x.len(), "case {case}");
        }
        for t in 0..x.len() {
            let sum: f64 = scales.iter().map(|s| s[t]).sum();
            assert!((sum - x[t]).abs() < 1e-8, "case {case} t={t}");
        }
    }
}

#[test]
fn smoothing_never_changes_length() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..24 {
        let len = rng.random_range(8usize..128);
        let drop = rng.random_range(0usize..3);
        let x = signal(&mut rng, len);
        let s = wavelet_smooth(&x, 3, drop);
        assert_eq!(s.len(), x.len());
    }
}

#[test]
fn decomposition_is_linear() {
    // decompose(c·x) == c·decompose(x)
    let mut rng = StdRng::seed_from_u64(14);
    for case in 0..24 {
        let len = rng.random_range(16usize..64);
        let c: f64 = rng.random_range(-3.0..3.0);
        let x: Vec<f64> = (0..len).map(|_| rng.random_range(-50.0..50.0)).collect();
        let scaled: Vec<f64> = x.iter().map(|v| c * v).collect();
        let pa = decompose(&x, 2);
        let pb = decompose(&scaled, 2);
        for (da, db) in pa.details.iter().zip(&pb.details) {
            for (a, b) in da.iter().zip(db) {
                assert!((c * a - b).abs() < 1e-7, "case {case}");
            }
        }
        for (a, b) in pa.approx.iter().zip(&pb.approx) {
            assert!((c * a - b).abs() < 1e-7, "case {case}");
        }
    }
}

#[test]
fn approx_band_preserves_mean_for_pow2() {
    // For power-of-two lengths the approximation band has exactly the
    // same mean as the input (Haar averages pairs).
    let mut rng = StdRng::seed_from_u64(15);
    for exp in 3u32..7 {
        for _ in 0..4 {
            let offset = rng.random_range(-10.0..10.0);
            let n = 1usize << exp;
            let x: Vec<f64> = (0..n).map(|i| offset + (i as f64 * 0.37).sin()).collect();
            let scales = horizon_scales(&x, 3);
            let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
            assert!((mean(&scales[0]) - mean(&x)).abs() < 1e-8);
        }
    }
}
