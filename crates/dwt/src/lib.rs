//! # cit-dwt
//!
//! Multi-level Haar discrete wavelet transform (DWT) and the horizon
//! decomposition of paper Section IV-A: a price window is split into `n`
//! disjoint frequency bands — long-term trend through short-term
//! fluctuation — and each band feeds one horizon-specific policy.
//!
//! ```
//! let window: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin() + i as f64 * 0.01).collect();
//! let scales = cit_dwt::horizon_scales(&window, 3);
//! // The bands sum back to the original signal exactly.
//! let recon: f64 = scales.iter().map(|s| s[10]).sum();
//! assert!((recon - window[10]).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

mod haar;
mod horizon;
mod sliding;
pub mod timed;

pub use haar::{decompose, haar_inverse_step, haar_step, reconstruct, WaveletPyramid};
pub use horizon::{horizon_scales, wavelet_smooth};
pub use sliding::{DwtCacheStats, SlidingDwt};
