//! Incremental sliding-window Haar decomposition.
//!
//! The trainer asks for the horizon decomposition of `window[t+1−z ..= t]`
//! at every environment step — each request shifts the previous window by
//! one sample and recomputes every level from scratch. Decimated Haar
//! analysis pairs samples `(2i, 2i+1)`, so a shift of exactly
//! `2^levels` samples preserves the pairing at *every* level (level `l`'s
//! input shifts by `2^(levels−l)`, always even). [`SlidingDwt`] exploits
//! this with a ring of `2^levels` slots keyed by `end % 2^levels`: after a
//! warm-up of one period, every stride-1 request finds the slot filled by
//! `end − 2^levels` and only computes the new coefficient tail
//! (`2^levels − 1` coefficients) plus the last `2^levels` samples of each
//! band reconstruction, instead of the full `O(z · n)` rebuild.
//!
//! Cached results are **bitwise identical** to [`horizon_scales`]: the
//! incremental path evaluates exactly the same floating-point operations on
//! exactly the same operands as a cold decomposition, it just skips the
//! ones whose results are already known. Windows whose length is not a
//! multiple of `2^levels` (odd-padding would break pair alignment) fall
//! back to a full per-call computation and are never cached incrementally.

use crate::haar::{decompose, haar_inverse_step, haar_step, reconstruct, WaveletPyramid};
use crate::horizon::horizon_scales;

/// Hit/miss counters of a [`SlidingDwt`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DwtCacheStats {
    /// Requests answered entirely from cache (same `end`, same window).
    pub memo_hits: u64,
    /// Requests answered by an incremental tail update.
    pub incremental: u64,
    /// Requests that required a full decomposition.
    pub full: u64,
}

struct Slot {
    end: usize,
    window: Vec<f64>,
    pyramid: Option<WaveletPyramid>,
    scales: Vec<Vec<f64>>,
}

/// A sliding-window cache around [`horizon_scales`].
///
/// One instance serves one scalar series (one asset/feature pair); `end` is
/// the series index of the window's last sample, so consecutive calls with
/// `end, end+1, end+2, …` hit the incremental path once the ring is warm.
///
/// ```
/// use cit_dwt::{horizon_scales, SlidingDwt};
///
/// let series: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
/// let (z, n_scales) = (16, 3); // z is a multiple of period() = 2^(n-1) = 4
/// let mut cache = SlidingDwt::new(z, n_scales);
/// for end in (z - 1)..series.len() {
///     let window = &series[end + 1 - z..=end];
///     // Bitwise identical to a cold decomposition of the same window.
///     assert_eq!(cache.scales_at(end, window), &horizon_scales(window, n_scales));
/// }
/// // After one warm-up period, stride-1 sweeps run incrementally.
/// let stats = cache.stats();
/// assert!(stats.incremental > stats.full, "{stats:?}");
/// ```
pub struct SlidingDwt {
    z: usize,
    n_scales: usize,
    levels: usize,
    /// Slide distance that preserves Haar pair alignment (`2^levels`).
    period: usize,
    /// Whether `z` admits the incremental path at all.
    aligned: bool,
    slots: Vec<Option<Slot>>,
    stats: DwtCacheStats,
}

impl SlidingDwt {
    /// Creates a cache for windows of length `z` split into `n_scales`
    /// horizon bands (mirroring [`horizon_scales`]).
    ///
    /// # Panics
    /// Panics if `z == 0` or `n_scales == 0`.
    pub fn new(z: usize, n_scales: usize) -> Self {
        assert!(z >= 1, "SlidingDwt: window length must be positive");
        assert!(n_scales >= 1, "SlidingDwt: need at least one scale");
        let levels = n_scales - 1;
        let period = 1usize << levels;
        let aligned = z.is_multiple_of(period);
        SlidingDwt {
            z,
            n_scales,
            levels,
            period,
            aligned,
            slots: (0..period).map(|_| None).collect(),
            stats: DwtCacheStats::default(),
        }
    }

    /// Cache counters so far.
    pub fn stats(&self) -> DwtCacheStats {
        self.stats
    }

    /// The slide distance (in samples) served incrementally: `2^(n_scales−1)`.
    pub fn period(&self) -> usize {
        self.period
    }

    /// The horizon bands of `window`, whose last sample has series index
    /// `end`. Semantically identical to `horizon_scales(window, n_scales)`.
    ///
    /// # Panics
    /// Panics if `window.len() != z`.
    pub fn scales_at(&mut self, end: usize, window: &[f64]) -> &[Vec<f64>] {
        assert_eq!(window.len(), self.z, "SlidingDwt: window length mismatch");
        let idx = end % self.period;
        let reuse = match self.slots[idx].as_ref() {
            Some(s) if s.end == end && s.window == window => Reuse::Memo,
            Some(s)
                if self.aligned
                    && self.levels >= 1
                    && s.end + self.period == end
                    && s.window[self.period..] == window[..self.z - self.period] =>
            {
                Reuse::Incremental
            }
            _ => Reuse::None,
        };
        match reuse {
            Reuse::Memo => self.stats.memo_hits += 1,
            Reuse::Incremental => {
                self.stats.incremental += 1;
                let slot = self.slots[idx].as_mut().expect("slot checked above");
                slide_slot(slot, end, window, self.levels, self.period, self.n_scales);
            }
            Reuse::None => {
                self.stats.full += 1;
                self.slots[idx] = Some(self.full_slot(end, window));
            }
        }
        &self.slots[idx].as_ref().expect("slot filled above").scales
    }

    fn full_slot(&self, end: usize, window: &[f64]) -> Slot {
        if self.levels == 0 {
            return Slot {
                end,
                window: window.to_vec(),
                pyramid: None,
                scales: horizon_scales(window, 1),
            };
        }
        let pyramid = decompose(window, self.levels);
        // Same masked reconstructions as `horizon_scales`, sharing the one
        // decomposition.
        let mut scales = Vec::with_capacity(self.n_scales);
        scales.push(reconstruct(&pyramid.masked(true, &[])));
        for k in 1..self.n_scales {
            let detail_level = self.n_scales - 1 - k;
            scales.push(reconstruct(&pyramid.masked(false, &[detail_level])));
        }
        Slot {
            end,
            window: window.to_vec(),
            pyramid: Some(pyramid),
            scales,
        }
    }
}

enum Reuse {
    Memo,
    Incremental,
    None,
}

/// Advances `slot` by one period: shifts every coefficient stream and band
/// left by its per-level stride and fills the vacated tails from the
/// `period` new samples at the end of `window`.
fn slide_slot(
    slot: &mut Slot,
    end: usize,
    window: &[f64],
    levels: usize,
    period: usize,
    n_scales: usize,
) {
    let z = window.len();
    let pyramid = slot
        .pyramid
        .as_mut()
        .expect("aligned slots carry a pyramid");
    // Cascade the new input tail down the analysis levels. The new approx
    // coefficients of level l are exactly the input tail level l+1 needs.
    let mut tail: Vec<f64> = window[z - period..].to_vec();
    for l in 0..levels {
        let (a_new, d_new) = haar_step(&tail);
        shift_append(&mut pyramid.details[l], &d_new);
        tail = a_new;
    }
    shift_append(&mut pyramid.approx, &tail);
    // Each band reconstruction shifts by `period` samples; only the last
    // `period` outputs touch new coefficients.
    for (k, band) in slot.scales.iter_mut().enumerate() {
        band.copy_within(period.., 0);
        let keep_approx = k == 0;
        let detail_level = (k >= 1).then(|| n_scales - 1 - k);
        let fresh = band_tail(pyramid, keep_approx, detail_level, levels, period);
        band[z - period..].copy_from_slice(&fresh);
    }
    slot.end = end;
    slot.window.copy_within(period.., 0);
    slot.window[z - period..].copy_from_slice(&window[z - period..]);
}

/// Rotates `stream` left by `fresh.len()` and writes `fresh` at the end.
fn shift_append(stream: &mut [f64], fresh: &[f64]) {
    let s = fresh.len();
    stream.copy_within(s.., 0);
    let n = stream.len();
    stream[n - s..].copy_from_slice(fresh);
}

/// Reconstructs the last `tail_len` output samples of a masked pyramid
/// (`tail_len` must be `2^levels`-aligned, which the caller guarantees).
fn band_tail(
    p: &WaveletPyramid,
    keep_approx: bool,
    detail_level: Option<usize>,
    levels: usize,
    tail_len: usize,
) -> Vec<f64> {
    let need = tail_len >> levels;
    let mut cur: Vec<f64> = if keep_approx {
        p.approx[p.approx.len() - need..].to_vec()
    } else {
        vec![0.0; need]
    };
    for l in (0..levels).rev() {
        let dn = cur.len();
        let d: Vec<f64> = if detail_level == Some(l) {
            let stream = &p.details[l];
            stream[stream.len() - dn..].to_vec()
        } else {
            vec![0.0; dn]
        };
        cur = haar_inverse_step(&cur, &d, 2 * dn);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                100.0 + 0.2 * t + 3.0 * (t * 0.37).sin() + 0.8 * (t * 1.7).cos()
            })
            .collect()
    }

    fn sweep_matches_reference(z: usize, n_scales: usize, steps: usize) -> DwtCacheStats {
        let x = series(z + steps);
        let mut cache = SlidingDwt::new(z, n_scales);
        for end in (z - 1)..(z - 1 + steps) {
            let window = &x[end + 1 - z..=end];
            let cached = cache.scales_at(end, window).to_vec();
            let reference = horizon_scales(window, n_scales);
            assert_eq!(
                cached, reference,
                "z={z} n={n_scales} end={end}: cached bands must be bitwise identical"
            );
        }
        cache.stats()
    }

    #[test]
    fn aligned_sweep_is_bitwise_identical_and_hits_incremental_path() {
        for (z, n) in [(16, 3), (16, 5), (32, 4), (64, 5), (8, 2)] {
            let stats = sweep_matches_reference(z, n, 40);
            let period = 1usize << (n - 1);
            assert_eq!(stats.full as usize, period, "one cold fill per ring slot");
            assert_eq!(stats.incremental as usize, 40 - period);
        }
    }

    #[test]
    fn misaligned_window_falls_back_to_full_compute() {
        // z = 10 is not a multiple of 2^2: every call is a full rebuild but
        // results still match the reference exactly.
        let stats = sweep_matches_reference(10, 3, 20);
        assert_eq!(stats.incremental, 0);
        assert_eq!(stats.full, 20);
    }

    #[test]
    fn repeated_end_is_memoised() {
        let x = series(64);
        let mut cache = SlidingDwt::new(32, 4);
        let w = &x[0..32];
        let first = cache.scales_at(31, w).to_vec();
        let second = cache.scales_at(31, w).to_vec();
        assert_eq!(first, second);
        assert_eq!(cache.stats().memo_hits, 1);
        assert_eq!(cache.stats().full, 1);
    }

    #[test]
    fn single_scale_is_identity() {
        let x = series(16);
        let mut cache = SlidingDwt::new(16, 1);
        assert_eq!(cache.scales_at(15, &x)[0], x);
    }

    #[test]
    fn non_unit_strides_and_gaps_stay_correct() {
        // Jumping by arbitrary strides must never poison the ring.
        let x = series(200);
        let z = 16;
        let n = 3;
        let mut cache = SlidingDwt::new(z, n);
        let mut end = z - 1;
        for stride in [1, 1, 4, 1, 7, 2, 1, 1, 16, 3, 1] {
            end += stride;
            let window = &x[end + 1 - z..=end];
            let cached = cache.scales_at(end, window).to_vec();
            assert_eq!(cached, horizon_scales(window, n), "stride {stride}");
        }
    }

    #[test]
    fn bands_still_sum_to_window_after_many_slides() {
        let x = series(100);
        let z = 32;
        let mut cache = SlidingDwt::new(z, 5);
        for end in (z - 1)..99 {
            let window = &x[end + 1 - z..=end];
            let bands = cache.scales_at(end, window);
            for t in 0..z {
                let sum: f64 = bands.iter().map(|b| b[t]).sum();
                assert!((sum - window[t]).abs() < 1e-9, "end={end} t={t}");
            }
        }
    }
}
