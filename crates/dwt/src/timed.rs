//! Span-timed wrappers around the transform entry points.
//!
//! Each function behaves exactly like its plain counterpart but records
//! the elapsed wall time into the caller's [`Telemetry`] span histograms
//! (`span.dwt.*`). With disabled telemetry the wrappers are free — the
//! inert span never reads the clock.

use crate::haar::WaveletPyramid;
use cit_telemetry::Telemetry;

/// Timed [`crate::decompose`] (histogram `span.dwt.decompose`).
pub fn decompose(tel: &Telemetry, x: &[f64], levels: usize) -> WaveletPyramid {
    let _timer = tel.span("dwt.decompose");
    crate::decompose(x, levels)
}

/// Timed [`crate::reconstruct`] (histogram `span.dwt.reconstruct`).
pub fn reconstruct(tel: &Telemetry, p: &WaveletPyramid) -> Vec<f64> {
    let _timer = tel.span("dwt.reconstruct");
    crate::reconstruct(p)
}

/// Timed [`crate::horizon_scales`] (histogram `span.dwt.horizon_scales`).
pub fn horizon_scales(tel: &Telemetry, x: &[f64], n: usize) -> Vec<Vec<f64>> {
    let _timer = tel.span("dwt.horizon_scales");
    crate::horizon_scales(x, n)
}

/// Timed [`crate::wavelet_smooth`] (histogram `span.dwt.wavelet_smooth`).
pub fn wavelet_smooth(tel: &Telemetry, x: &[f64], levels: usize, drop: usize) -> Vec<f64> {
    let _timer = tel.span("dwt.wavelet_smooth");
    crate::wavelet_smooth(x, levels, drop)
}

#[cfg(test)]
mod tests {
    use cit_telemetry::Telemetry;

    #[test]
    fn timed_matches_plain_and_records() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let (tel, _sink) = Telemetry::memory();
        let timed = super::horizon_scales(&tel, &x, 3);
        assert_eq!(timed, crate::horizon_scales(&x, 3));
        assert_eq!(tel.span_histogram("dwt.horizon_scales").count(), 1);

        let p = super::decompose(&tel, &x, 2);
        let back = super::reconstruct(&tel, &p);
        assert_eq!(back.len(), x.len());
        assert_eq!(tel.span_histogram("dwt.decompose").count(), 1);
        assert_eq!(tel.span_histogram("dwt.reconstruct").count(), 1);

        let s = super::wavelet_smooth(&tel, &x, 3, 1);
        assert_eq!(s.len(), x.len());

        // Disabled telemetry: results identical, nothing recorded.
        let off = Telemetry::disabled();
        assert_eq!(
            super::horizon_scales(&off, &x, 3),
            crate::horizon_scales(&x, 3)
        );
    }
}
