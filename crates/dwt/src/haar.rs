//! Single- and multi-level Haar discrete wavelet transform.
//!
//! The Haar analysis filters are
//! `a[i] = (x[2i] + x[2i+1]) / √2` (low-pass) and
//! `d[i] = (x[2i] - x[2i+1]) / √2` (high-pass); synthesis inverts them
//! exactly. Odd-length signals are extended by repeating the final sample;
//! the original length is remembered so reconstruction is exact.

const SQRT2: f64 = std::f64::consts::SQRT_2;

/// One analysis step: returns `(approximation, detail)` coefficients.
pub fn haar_step(x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut padded;
    let x = if x.len() % 2 == 1 {
        padded = Vec::with_capacity(x.len() + 1);
        padded.extend_from_slice(x);
        padded.push(*x.last().expect("non-empty signal"));
        &padded[..]
    } else {
        x
    };
    let half = x.len() / 2;
    let mut a = Vec::with_capacity(half);
    let mut d = Vec::with_capacity(half);
    for i in 0..half {
        a.push((x[2 * i] + x[2 * i + 1]) / SQRT2);
        d.push((x[2 * i] - x[2 * i + 1]) / SQRT2);
    }
    (a, d)
}

/// One synthesis step: rebuilds the signal of length `out_len` from
/// approximation and detail coefficients.
///
/// # Panics
/// Panics if the coefficient vectors differ in length or `out_len` exceeds
/// twice their length.
pub fn haar_inverse_step(a: &[f64], d: &[f64], out_len: usize) -> Vec<f64> {
    assert_eq!(
        a.len(),
        d.len(),
        "haar_inverse_step: coefficient length mismatch"
    );
    assert!(
        out_len <= 2 * a.len(),
        "haar_inverse_step: out_len too large"
    );
    let mut x = Vec::with_capacity(2 * a.len());
    for i in 0..a.len() {
        x.push((a[i] + d[i]) / SQRT2);
        x.push((a[i] - d[i]) / SQRT2);
    }
    x.truncate(out_len);
    x
}

/// A multi-level Haar decomposition.
///
/// `details[0]` holds the level-1 (highest-frequency) coefficients and
/// `details.last()` the coarsest detail band; `approx` is the remaining
/// low-frequency approximation. `lengths[l]` is the signal length that
/// entered analysis level `l`, needed for exact reconstruction of
/// odd-length signals.
#[derive(Debug, Clone)]
pub struct WaveletPyramid {
    /// Detail coefficients per level, finest first.
    pub details: Vec<Vec<f64>>,
    /// Coarsest approximation coefficients.
    pub approx: Vec<f64>,
    /// Input length at each analysis level.
    pub lengths: Vec<usize>,
}

impl WaveletPyramid {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Returns a copy with every band zeroed except the selected ones.
    ///
    /// `keep_approx` keeps the coarse approximation; `keep_detail` is the
    /// set of detail level indices (0 = finest) to keep.
    pub fn masked(&self, keep_approx: bool, keep_detail: &[usize]) -> WaveletPyramid {
        let mut out = self.clone();
        if !keep_approx {
            out.approx.iter_mut().for_each(|v| *v = 0.0);
        }
        for (l, d) in out.details.iter_mut().enumerate() {
            if !keep_detail.contains(&l) {
                d.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        out
    }
}

/// Multi-level analysis of `x`.
///
/// # Panics
/// Panics when `levels == 0` or the signal is empty or too short for the
/// requested depth (each level needs at least 2 samples).
pub fn decompose(x: &[f64], levels: usize) -> WaveletPyramid {
    assert!(levels >= 1, "decompose: need at least one level");
    assert!(!x.is_empty(), "decompose: empty signal");
    let mut details = Vec::with_capacity(levels);
    let mut lengths = Vec::with_capacity(levels);
    let mut current = x.to_vec();
    for _ in 0..levels {
        assert!(
            current.len() >= 2,
            "decompose: signal too short for {levels} levels"
        );
        lengths.push(current.len());
        let (a, d) = haar_step(&current);
        details.push(d);
        current = a;
    }
    WaveletPyramid {
        details,
        approx: current,
        lengths,
    }
}

/// Multi-level synthesis: exact inverse of [`decompose`].
pub fn reconstruct(p: &WaveletPyramid) -> Vec<f64> {
    let mut current = p.approx.clone();
    for l in (0..p.details.len()).rev() {
        current = haar_inverse_step(&current, &p.details[l], p.lengths[l]);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn single_step_known_values() {
        let (a, d) = haar_step(&[1.0, 3.0, 2.0, 4.0]);
        assert_close(&a, &[4.0 / SQRT2, 6.0 / SQRT2], 1e-12);
        assert_close(&d, &[-2.0 / SQRT2, -2.0 / SQRT2], 1e-12);
    }

    #[test]
    fn step_roundtrip_even() {
        let x = [1.0, -2.0, 3.5, 0.25, 7.0, -1.0];
        let (a, d) = haar_step(&x);
        let back = haar_inverse_step(&a, &d, x.len());
        assert_close(&back, &x, 1e-12);
    }

    #[test]
    fn step_roundtrip_odd() {
        let x = [1.0, 2.0, 3.0];
        let (a, d) = haar_step(&x);
        let back = haar_inverse_step(&a, &d, x.len());
        assert_close(&back, &x, 1e-12);
    }

    #[test]
    fn multilevel_roundtrip() {
        let x: Vec<f64> = (0..37)
            .map(|i| (i as f64 * 0.7).sin() + 0.1 * i as f64)
            .collect();
        for levels in 1..=4 {
            let p = decompose(&x, levels);
            let back = reconstruct(&p);
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn constant_signal_has_no_detail() {
        let x = vec![5.0; 16];
        let p = decompose(&x, 3);
        for d in &p.details {
            assert!(
                d.iter().all(|v| v.abs() < 1e-12),
                "constant signal leaked detail energy"
            );
        }
    }

    #[test]
    fn energy_is_preserved() {
        // Orthonormal Haar preserves the squared norm (even lengths).
        let x: Vec<f64> = (0..32).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let p = decompose(&x, 4);
        let coeff_energy: f64 = p.approx.iter().map(|v| v * v).sum::<f64>()
            + p.details
                .iter()
                .flat_map(|d| d.iter())
                .map(|v| v * v)
                .sum::<f64>();
        let sig_energy: f64 = x.iter().map(|v| v * v).sum();
        assert!((coeff_energy - sig_energy).abs() < 1e-9);
    }

    #[test]
    fn masking_zeroes_bands() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let p = decompose(&x, 2);
        let only_approx = p.masked(true, &[]);
        assert!(only_approx
            .details
            .iter()
            .all(|d| d.iter().all(|v| *v == 0.0)));
        let only_fine = p.masked(false, &[0]);
        assert!(only_fine.approx.iter().all(|v| *v == 0.0));
        assert_eq!(only_fine.details[0], p.details[0]);
        assert!(only_fine.details[1].iter().all(|v| *v == 0.0));
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_many_levels_panics() {
        let _ = decompose(&[1.0, 2.0], 3);
    }
}
