//! Horizon decomposition (paper Section IV-A).
//!
//! A price window is split into `n` sub-series, one per investment horizon:
//! scale 0 reconstructs only the coarsest approximation (the long-term
//! trend) and scale `n-1` only the level-1 detail band (the shortest-term
//! fluctuations). Because the wavelet transform is linear, the `n`
//! sub-series sum exactly back to the original window — each horizon policy
//! sees a disjoint frequency band of the same signal.

use crate::haar::{decompose, reconstruct};

/// Splits `x` into `n_scales` frequency bands, longest horizon first.
///
/// For `n_scales == 1` the original series is returned unchanged. Otherwise
/// an `(n_scales − 1)`-level Haar decomposition is taken and band `k`
/// reconstructs: the approximation (k = 0), or detail level
/// `n_scales − 1 − k` (k ≥ 1), so the last band is the finest detail.
///
/// # Panics
/// Panics if `n_scales == 0` or the signal is too short for the implied
/// decomposition depth.
pub fn horizon_scales(x: &[f64], n_scales: usize) -> Vec<Vec<f64>> {
    assert!(n_scales >= 1, "horizon_scales: need at least one scale");
    if n_scales == 1 {
        return vec![x.to_vec()];
    }
    let levels = n_scales - 1;
    let pyramid = decompose(x, levels);
    let mut out = Vec::with_capacity(n_scales);
    // Band 0: approximation only — the long-term horizon.
    out.push(reconstruct(&pyramid.masked(true, &[])));
    // Bands 1..n: detail levels from coarsest to finest.
    for k in 1..n_scales {
        let detail_level = n_scales - 1 - k; // n-1 → coarsest .. 0 → finest
        out.push(reconstruct(&pyramid.masked(false, &[detail_level])));
    }
    out
}

/// Smooths `x` by dropping the `drop_finest` highest-frequency bands of a
/// `levels`-level decomposition — the classic wavelet-denoising
/// pre-processing step (\[11\]–\[13\] in the paper).
pub fn wavelet_smooth(x: &[f64], levels: usize, drop_finest: usize) -> Vec<f64> {
    let pyramid = decompose(x, levels);
    let keep: Vec<usize> = (drop_finest..levels).collect();
    reconstruct(&pyramid.masked(true, &keep))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                0.05 * t + (t * 0.1).sin() + 0.3 * (t * 1.3).sin()
            })
            .collect()
    }

    #[test]
    fn scales_sum_to_original() {
        let x = signal(64);
        for n in 1..=4 {
            let scales = horizon_scales(&x, n);
            assert_eq!(scales.len(), n);
            for t in 0..x.len() {
                let sum: f64 = scales.iter().map(|s| s[t]).sum();
                assert!((sum - x[t]).abs() < 1e-9, "n={n} t={t}: {sum} vs {}", x[t]);
            }
        }
    }

    #[test]
    fn single_scale_is_identity() {
        let x = signal(16);
        let scales = horizon_scales(&x, 1);
        assert_eq!(scales[0], x);
    }

    #[test]
    fn long_horizon_band_is_smoother() {
        // Total variation of the approximation band must be lower than that
        // of the finest detail band for a noisy signal.
        let x = signal(128);
        let scales = horizon_scales(&x, 3);
        let tv = |s: &[f64]| s.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>();
        assert!(
            tv(&scales[0]) < tv(&scales[2]) + tv(&scales[0]) * 0.5,
            "long-horizon band should be smooth"
        );
        // The long-horizon band carries the trend: its mean tracks the
        // signal mean while detail bands are near zero-mean.
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean(&scales[0]) - mean(&x)).abs() < 1e-9);
        assert!(mean(&scales[2]).abs() < 0.2);
    }

    #[test]
    fn detail_bands_have_near_zero_mean() {
        let x = signal(64);
        let scales = horizon_scales(&x, 4);
        for (k, s) in scales.iter().enumerate().skip(1) {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            assert!(mean.abs() < 0.5, "band {k} mean {mean}");
        }
    }

    #[test]
    fn smooth_reduces_variation() {
        let x: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.05).sin() + if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        let smoothed = wavelet_smooth(&x, 3, 1);
        let tv = |s: &[f64]| s.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>();
        assert!(
            tv(&smoothed) < tv(&x),
            "smoothing should lower total variation"
        );
        assert_eq!(smoothed.len(), x.len());
    }

    #[test]
    fn smooth_with_zero_dropped_is_identity() {
        let x = signal(32);
        let same = wavelet_smooth(&x, 2, 0);
        for (a, b) in same.iter().zip(&x) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
