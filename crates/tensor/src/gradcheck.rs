//! Finite-difference gradient checking.
//!
//! Every differentiable operation in this workspace is validated against a
//! central-difference approximation. The checker rebuilds the graph for each
//! perturbed parameter, so it is O(#params) forward passes — only for tests.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Outcome of a gradient check: largest absolute and relative error seen.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative difference (normalised by magnitude, floored at 1).
    pub max_rel_err: f32,
}

/// Checks the analytic gradient of a scalar-valued function against central
/// finite differences.
///
/// `f` receives a graph and the parameter leaves (one per entry of `params`)
/// and must return the scalar loss `Var`. Returns a report with the worst
/// errors over all parameter elements.
pub fn gradcheck(
    params: &[Tensor],
    eps: f32,
    f: impl Fn(&mut Graph, &[Var]) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = params.iter().map(|p| g.param_leaf(p.clone())).collect();
    let loss = f(&mut g, &vars);
    let grads = g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(params)
        .map(|(&v, p)| grads.wrt_or_zeros(v, p.shape()))
        .collect();

    let eval = |perturbed: &[Tensor]| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|p| g.param_leaf(p.clone())).collect();
        let loss = f(&mut g, &vars);
        g.value(loss).item()
    };

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };
    let mut work: Vec<Tensor> = params.to_vec();
    for (pi, p) in params.iter().enumerate() {
        for ei in 0..p.numel() {
            work[pi].data_mut()[ei] = p.data()[ei] + eps;
            let up = eval(&work);
            work[pi].data_mut()[ei] = p.data()[ei] - eps;
            let down = eval(&work);
            work[pi].data_mut()[ei] = p.data()[ei];

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[pi].data()[ei];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
        }
    }
    report
}

/// Asserts that a gradient check passes with the given relative tolerance.
///
/// # Panics
/// Panics (test-style) when the worst relative error exceeds `tol`.
pub fn assert_gradcheck(params: &[Tensor], tol: f32, f: impl Fn(&mut Graph, &[Var]) -> Var) {
    let report = gradcheck(params, 1e-3, f);
    assert!(
        report.max_rel_err <= tol,
        "gradient check failed: max_rel_err = {}, max_abs_err = {} (tol {tol})",
        report.max_rel_err,
        report.max_abs_err
    );
}
