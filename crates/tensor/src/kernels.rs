//! Cache-blocked matmul micro-kernels and im2col convolution lowering.
//!
//! All kernels operate on raw row-major `f32` slices so the graph forward
//! pass, the backward pass and benches share one code path. Three layouts
//! cover every product the autodiff engine needs without materialising a
//! transposed tensor:
//!
//! * [`matmul_nn_acc`] — `out += A·B` with `A [m,k]`, `B [k,n]`
//! * [`matmul_nt_acc`] — `out += A·Bᵀ` with `B` stored `[n,k]`
//! * [`matmul_tn_acc`] — `out += Aᵀ·B` with `A` stored `[k,m]`
//!
//! Every kernel accumulates each output element strictly in ascending
//! reduction-index order starting from the value already in `out`. That
//! matches the seed-then-accumulate order of the previous scalar loops, so
//! results are reproducible across tile shapes (f32 addition is not
//! associative; a fixed order keeps training runs bit-stable).

/// Rows per register tile of the `nn` micro-kernel.
const MR: usize = 4;
/// Columns per register tile of the `nn` micro-kernel.
const NR: usize = 16;
/// Output rows processed per cache block of the `tn` kernel.
const MC_TN: usize = 64;

fn check_dims(name: &str, m: usize, k: usize, n: usize, a: usize, b: usize, out: usize) {
    assert!(a >= m * k, "{name}: lhs has {a} elements, need {m}x{k}");
    assert!(b >= k * n, "{name}: rhs has {b} elements, need {k}x{n}");
    assert!(out >= m * n, "{name}: out has {out} elements, need {m}x{n}");
}

/// `out[i,j] += Σ_p a[i,p]·b[p,j]` — cache-blocked `A [m,k] · B [k,n]`.
///
/// The hot path is an `MR`×`NR` register tile accumulated over the full
/// reduction dimension; `B` rows stream through L1 while the partial sums
/// stay in registers.
pub fn matmul_nn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims("matmul_nn_acc", m, k, n, a.len(), b.len(), out.len());
    let mut i = 0;
    while i < m {
        let mr = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if mr == MR && nr == NR {
                kernel_nn_4x16(k, n, &a[i * k..], b, j, &mut out[i * n..]);
            } else {
                // Edge tile: plain dot products, still ascending in p.
                for r in 0..mr {
                    let arow = &a[(i + r) * k..(i + r) * k + k];
                    for c in 0..nr {
                        let mut acc = out[(i + r) * n + j + c];
                        for (p, &av) in arow.iter().enumerate() {
                            acc += av * b[p * n + j + c];
                        }
                        out[(i + r) * n + j + c] = acc;
                    }
                }
            }
            j += NR;
        }
        i += MR;
    }
}

#[inline]
fn kernel_nn_4x16(k: usize, n: usize, a: &[f32], b: &[f32], j: usize, out: &mut [f32]) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out[r * n + j..r * n + j + NR]);
    }
    for p in 0..k {
        let brow = &b[p * n + j..p * n + j + NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[r * k + p];
            for (c, av_b) in accr.iter_mut().zip(brow) {
                *c += av * av_b;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[r * n + j..r * n + j + NR].copy_from_slice(accr);
    }
}

/// Freshly allocated `A·B` (`A [m,k]`, `B [k,n]`), zero-initialised then
/// accumulated by [`matmul_nn_acc`].
pub fn matmul_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_nn_acc(m, k, n, a, b, &mut out);
    out
}

/// `out[i,j] += Σ_p a[i,p]·bt[j,p]` — `A [m,k] · Bᵀ` with `B` stored
/// `[n,k]`. Both operands are traversed contiguously (row-wise dot
/// products), so no transposed copy is ever built.
pub fn matmul_nt_acc(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32], out: &mut [f32]) {
    check_dims("matmul_nt_acc", m, k, n, a.len(), n * k, out.len());
    assert!(
        bt.len() >= n * k,
        "matmul_nt_acc: bt has {} elements",
        bt.len()
    );
    const TI: usize = 4;
    const TJ: usize = 4;
    let mut i = 0;
    while i < m {
        let ti = TI.min(m - i);
        let mut j = 0;
        while j < n {
            let tj = TJ.min(n - j);
            let mut acc = [[0.0f32; TJ]; TI];
            for p in 0..k {
                for (r, accr) in acc.iter_mut().enumerate().take(ti) {
                    let av = a[(i + r) * k + p];
                    for (c, slot) in accr.iter_mut().enumerate().take(tj) {
                        *slot += av * bt[(j + c) * k + p];
                    }
                }
            }
            for r in 0..ti {
                for c in 0..tj {
                    out[(i + r) * n + j + c] += acc[r][c];
                }
            }
            j += TJ;
        }
        i += TI;
    }
}

/// Freshly allocated `A·Bᵀ` (`A [m,k]`, `B` stored `[n,k]`).
pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_nt_acc(m, k, n, a, bt, &mut out);
    out
}

/// `out[i,j] += Σ_p at[p,i]·b[p,j]` — `Aᵀ·B` with `A` stored `[k,m]`.
///
/// Outer-product form: for each reduction index `p` a row of `B` is
/// broadcast-multiplied into a block of `out` rows, so the inner loop is a
/// contiguous axpy. Output rows are processed in blocks of `MC_TN` to keep
/// the accumulator panel cache-resident for large `m`.
pub fn matmul_tn_acc(m: usize, k: usize, n: usize, at: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(
        at.len() >= k * m,
        "matmul_tn_acc: at has {} elements",
        at.len()
    );
    check_dims("matmul_tn_acc", m, k, n, m * k, b.len(), out.len());
    let mut i0 = 0;
    while i0 < m {
        let ib = MC_TN.min(m - i0);
        for p in 0..k {
            let arow = &at[p * m..p * m + m];
            let brow = &b[p * n..p * n + n];
            for r in 0..ib {
                let av = arow[i0 + r];
                let dst = &mut out[(i0 + r) * n..(i0 + r) * n + n];
                for (d, &bv) in dst.iter_mut().zip(brow) {
                    *d += av * bv;
                }
            }
        }
        i0 += MC_TN;
    }
}

/// Freshly allocated `Aᵀ·B` (`A` stored `[k,m]`, `B [k,n]`).
pub fn matmul_tn(m: usize, k: usize, n: usize, at: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_tn_acc(m, k, n, at, b, &mut out);
    out
}

/// Textbook triple-loop `A·B` — the naive reference the tiled kernels are
/// checked (and benchmarked) against. Not used on any hot path.
pub fn matmul_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Unrolls one batch element of a causal dilated convolution input into its
/// im2col matrix: `col[(i·K + j)·L + t] = x[i·L + t − (K−1−j)·dilation]`
/// with implicit zero padding on the left. `x` is one `[Cin, L]` slab.
///
/// Each `(channel, tap)` row is a shifted memcpy of the input channel, so
/// the convolution becomes the single matrix product
/// `W [Cout, Cin·K] · col [Cin·K, L]`.
pub fn im2col(x: &[f32], cin: usize, l: usize, k: usize, dilation: usize, col: &mut [f32]) {
    assert!(x.len() >= cin * l, "im2col: x has {} elements", x.len());
    assert!(
        col.len() >= cin * k * l,
        "im2col: col has {} elements, need {}",
        col.len(),
        cin * k * l
    );
    for i in 0..cin {
        let xi = &x[i * l..(i + 1) * l];
        for j in 0..k {
            let back = (k - 1 - j) * dilation;
            let row = &mut col[(i * k + j) * l..(i * k + j + 1) * l];
            if back >= l {
                row.fill(0.0);
            } else {
                row[..back].fill(0.0);
                row[back..].copy_from_slice(&xi[..l - back]);
            }
        }
    }
}

/// Scatters an im2col-shaped gradient back onto the input slab:
/// `gx[i·L + t − back] += gcol[(i·K + j)·L + t]` for every in-range tap.
/// Exact adjoint of [`im2col`].
pub fn col2im_acc(gcol: &[f32], cin: usize, l: usize, k: usize, dilation: usize, gx: &mut [f32]) {
    assert!(
        gx.len() >= cin * l,
        "col2im_acc: gx has {} elements",
        gx.len()
    );
    for i in 0..cin {
        let dst = &mut gx[i * l..(i + 1) * l];
        for j in 0..k {
            let back = (k - 1 - j) * dilation;
            if back >= l {
                continue;
            }
            let row = &gcol[(i * k + j) * l..(i * k + j + 1) * l];
            for (d, &gv) in dst[..l - back].iter_mut().zip(&row[back..]) {
                *d += gv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-0.5, 0.5).
        (0..len)
            .map(|i| {
                let h = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed.wrapping_mul(97))
                    % 1000;
                h as f32 / 1000.0 - 0.5
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn nn_matches_reference_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (3, 1, 9),
            (5, 17, 3),
            (33, 2, 2),
            (4, 16, 16),
            (9, 23, 31),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            assert_close(&matmul_nn(m, k, n, &a, &b), &matmul_ref(m, k, n, &a, &b));
        }
    }

    #[test]
    fn nt_and_tn_match_explicit_transpose() {
        let (m, k, n) = (6, 11, 13);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let reference = matmul_ref(m, k, n, &a, &b);
        // B stored transposed [n, k].
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        assert_close(&matmul_nt(m, k, n, &a, &bt), &reference);
        // A stored transposed [k, m].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        assert_close(&matmul_tn(m, k, n, &at, &b), &reference);
    }

    #[test]
    fn acc_variants_accumulate_on_top() {
        let (m, k, n) = (5, 4, 18);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut out = vec![1.0f32; m * n];
        matmul_nn_acc(m, k, n, &a, &b, &mut out);
        let reference = matmul_ref(m, k, n, &a, &b);
        for (o, r) in out.iter().zip(&reference) {
            assert!((o - (r + 1.0)).abs() <= 1e-5);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let (cin, l, k, d) = (3, 10, 3, 2);
        let x = fill(cin * l, 7);
        let y = fill(cin * k * l, 8);
        let mut col = vec![0.0f32; cin * k * l];
        im2col(&x, cin, l, k, d, &mut col);
        let lhs: f32 = col.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut gx = vec![0.0f32; cin * l];
        col2im_acc(&y, cin, l, k, d, &mut gx);
        let rhs: f32 = x.iter().zip(&gx).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }
}
