//! Cache-blocked matmul micro-kernels with runtime tiling schemes, plus the
//! im2col convolution lowering.
//!
//! All kernels operate on raw row-major `f32` slices so the graph forward
//! pass, the backward pass and benches share one code path. Three layouts
//! cover every product the autodiff engine needs without materialising a
//! transposed tensor:
//!
//! * [`matmul_nn_acc`] — `out += A·B` with `A [m,k]`, `B [k,n]`
//! * [`matmul_nt_acc`] — `out += A·Bᵀ` with `B` stored `[n,k]`
//! * [`matmul_tn_acc`] — `out += Aᵀ·B` with `A` stored `[k,m]`
//!
//! ## Tiling schemes
//!
//! Tile shapes are no longer compile-time constants: every kernel is
//! parameterised by a [`TilingScheme`] (register-tile `mr×nr`, cache blocks
//! `mc/kc/nc`) resolved at runtime. Resolution order, highest priority
//! first: a forced scheme ([`force_scheme`] or the `CIT_TILING` env var),
//! an installed provider ([`install_scheme_provider`] — the `cit-compute`
//! autotuner), then per-layout static defaults. The `nn` and `nt` drivers
//! pack the needed `B` (or `Bᵀ`) panel into a contiguous, tile-ordered
//! thread-local scratch buffer so the micro-kernel inner loop is a
//! contiguous unrolled axpy regardless of the source layout — this is what
//! fixes the former ~7× `nt` slowdown from its strided `bt[(j+c)·k+p]`
//! inner load.
//!
//! ## Determinism contract
//!
//! Every kernel accumulates each output element strictly in ascending
//! reduction-index order, seeded from the value already in `out`. The
//! association `((out + t₀) + t₁) + …` is therefore *identical for every
//! tiling scheme*: tile shapes only change traversal order across output
//! elements, never the order of additions within one element. f32 addition
//! is not associative, so this is what keeps training runs bit-stable
//! across schemes, autotuner decisions and thread counts (proven by
//! `crates/core/tests/determinism.rs` and the bitwise shape sweep in
//! `crates/tensor/tests/kernel_parity.rs`).

use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};

/// The operand layout of a matmul kernel, used to key tiling-scheme
/// resolution (each layout has its own default and autotune entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatmulLayout {
    /// `A [m,k] · B [k,n]`.
    Nn,
    /// `A [m,k] · Bᵀ` with `B` stored `[n,k]`.
    Nt,
    /// `Aᵀ · B` with `A` stored `[k,m]`.
    Tn,
}

impl MatmulLayout {
    /// Short lowercase label (`"nn"`, `"nt"`, `"tn"`), used in cache keys.
    pub fn label(self) -> &'static str {
        match self {
            MatmulLayout::Nn => "nn",
            MatmulLayout::Nt => "nt",
            MatmulLayout::Tn => "tn",
        }
    }
}

/// Register-tile (`mr`, `nr`) shapes that have a monomorphised micro-kernel.
/// [`TilingScheme::validated`] snaps any other pair to the default; the
/// autotuner uses this list as its candidate grid.
pub const SUPPORTED_REGISTER_TILES: &[(usize, usize)] =
    &[(2, 8), (4, 4), (4, 8), (8, 4), (8, 8), (4, 16), (8, 16)];

/// A runtime tile-shape decomposition for the matmul kernels, following
/// the global/stage/tile split of cubecl-matmul: a register tile
/// (`mr`×`nr` output elements held in accumulators for the full reduction)
/// nested inside cache blocks (`mc` output rows, `kc` reduction depth per
/// packing chunk, `nc` packed panel columns).
///
/// `kc` only chunks the *packing copy loop* for locality — the arithmetic
/// reduction always runs over the full `k` with one live accumulator per
/// output element, which is what keeps results bit-identical across
/// schemes (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingScheme {
    /// Output rows per register tile.
    pub mr: usize,
    /// Output columns per register tile.
    pub nr: usize,
    /// Output rows per cache block (one pass over a packed panel).
    pub mc: usize,
    /// Reduction depth per packing chunk (memory layout only).
    pub kc: usize,
    /// Output columns packed per panel.
    pub nc: usize,
}

impl TilingScheme {
    /// A scheme from raw tile sizes (not yet validated).
    pub const fn new(mr: usize, nr: usize, mc: usize, kc: usize, nc: usize) -> Self {
        TilingScheme { mr, nr, mc, kc, nc }
    }

    /// The static default for `layout`, used when no override, provider or
    /// cache entry applies.
    pub fn default_for(layout: MatmulLayout) -> Self {
        match layout {
            MatmulLayout::Nn => TilingScheme::new(4, 16, 64, 256, 256),
            MatmulLayout::Nt => TilingScheme::new(4, 16, 64, 256, 256),
            // tn is an outer-product axpy driver: only mc/nc block it.
            MatmulLayout::Tn => TilingScheme::new(4, 16, 64, 256, 512),
        }
    }

    /// Snaps the scheme onto the supported envelope: (`mr`,`nr`) must be one
    /// of [`SUPPORTED_REGISTER_TILES`] (otherwise the default 4×16 register
    /// tile is used) and the cache blocks are clamped to cover at least one
    /// register tile / a sane packing chunk.
    #[must_use]
    pub fn validated(self) -> Self {
        let (mr, nr) = if SUPPORTED_REGISTER_TILES.contains(&(self.mr, self.nr)) {
            (self.mr, self.nr)
        } else {
            (4, 16)
        };
        TilingScheme {
            mr,
            nr,
            mc: self.mc.max(mr),
            kc: self.kc.max(8),
            nc: self.nc.max(nr),
        }
    }

    /// Compact text form `"mr x nr : mc x kc x nc"` (without spaces), e.g.
    /// `"4x16:64x256x256"` — stable across versions, used by the autotune
    /// cache file and the `CIT_TILING` env override.
    pub fn encode(&self) -> String {
        format!(
            "{}x{}:{}x{}x{}",
            self.mr, self.nr, self.mc, self.kc, self.nc
        )
    }

    /// Parses [`TilingScheme::encode`]'s format. The cache-block part is
    /// optional (`"8x8"` uses default blocks). Returns `None` on anything
    /// malformed; callers should [`TilingScheme::validated`] the result.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        let (reg, blocks) = match s.split_once(':') {
            Some((r, b)) => (r, Some(b)),
            None => (s, None),
        };
        let mut reg_it = reg.split('x').map(|p| p.trim().parse::<usize>());
        let mr = reg_it.next()?.ok()?;
        let nr = reg_it.next()?.ok()?;
        if reg_it.next().is_some() || mr == 0 || nr == 0 {
            return None;
        }
        let default = TilingScheme::default_for(MatmulLayout::Nn);
        let (mc, kc, nc) = match blocks {
            None => (default.mc, default.kc, default.nc),
            Some(b) => {
                let mut it = b.split('x').map(|p| p.trim().parse::<usize>());
                let mc = it.next()?.ok()?;
                let kc = it.next()?.ok()?;
                let nc = it.next()?.ok()?;
                if it.next().is_some() || mc == 0 || kc == 0 || nc == 0 {
                    return None;
                }
                (mc, kc, nc)
            }
        };
        Some(TilingScheme::new(mr, nr, mc, kc, nc))
    }
}

/// A scheme provider maps `(layout, m, k, n)` to the tile shapes to use —
/// installed once per process by the `cit-compute` autotuner.
pub type SchemeProvider =
    Box<dyn Fn(MatmulLayout, usize, usize, usize) -> TilingScheme + Send + Sync>;

static PROVIDER: OnceLock<SchemeProvider> = OnceLock::new();
static FORCED: Mutex<Option<TilingScheme>> = Mutex::new(None);

/// Installs the process-global scheme provider (one-shot; returns `false`
/// if a provider was already installed). The provider is consulted by
/// every matmul call that is not covered by a forced scheme, so it must be
/// cheap on its hit path.
pub fn install_scheme_provider(provider: SchemeProvider) -> bool {
    PROVIDER.set(provider).is_ok()
}

/// Forces every matmul onto one scheme (or clears the force with `None`),
/// overriding the provider and the static defaults. Intended for tests and
/// experiments — thanks to the determinism contract a forced scheme changes
/// wall-clock only, never results.
pub fn force_scheme(scheme: Option<TilingScheme>) {
    let mut guard = FORCED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = scheme.map(TilingScheme::validated);
}

fn env_forced() -> Option<TilingScheme> {
    static ENV: OnceLock<Option<TilingScheme>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CIT_TILING")
            .ok()
            .and_then(|s| TilingScheme::parse(&s))
            .map(TilingScheme::validated)
    })
}

/// The scheme a kernel call with this layout and problem size will use.
/// Resolution order: [`force_scheme`] → `CIT_TILING` env override →
/// installed provider → [`TilingScheme::default_for`].
pub fn resolve_scheme(layout: MatmulLayout, m: usize, k: usize, n: usize) -> TilingScheme {
    if let Some(s) = *FORCED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return s;
    }
    if let Some(s) = env_forced() {
        return s;
    }
    if let Some(p) = PROVIDER.get() {
        return p(layout, m, k, n).validated();
    }
    TilingScheme::default_for(layout)
}

/// GraphPool-style thread-local recycling for `f32` scratch buffers, used
/// by the conv1d im2col path (and available to other hot loops) to cut
/// per-step allocation traffic. Buffers keep their capacity across
/// [`take`](scratch::take)/[`put`](scratch::put) cycles.
pub mod scratch {
    use std::cell::RefCell;

    const MAX_POOLED: usize = 8;

    thread_local! {
        static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    }

    /// A buffer of exactly `len` elements with **unspecified contents** —
    /// callers must overwrite (or `fill`) before reading. Reuses the
    /// largest pooled buffer when one exists.
    pub fn take(len: usize) -> Vec<f32> {
        let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the thread-local pool for reuse. At most a small
    /// fixed number of buffers are retained; excess buffers are dropped.
    pub fn put(buf: Vec<f32>) {
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

thread_local! {
    /// Packing slab for the nn/nt drivers, reused across matmul calls.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

fn check_dims(name: &str, m: usize, k: usize, n: usize, a: usize, b: usize, out: usize) {
    assert!(a >= m * k, "{name}: lhs has {a} elements, need {m}x{k}");
    assert!(b >= k * n, "{name}: rhs has {b} elements, need {k}x{n}");
    assert!(out >= m * n, "{name}: out has {out} elements, need {m}x{n}");
}

/// One register tile: accumulates `rows`×`cols` output elements over the
/// full reduction `k` against a packed panel tile (`bp[p·NR + c]`).
///
/// Seeds the accumulators from `out` and walks `p` strictly ascending, so
/// the per-element association is independent of `MR`/`NR` — the
/// determinism contract. Dead lanes (`c >= cols`) read packed zeros and are
/// never stored.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_packed<const MR: usize, const NR: usize>(
    k: usize,
    a: &[f32],
    lda: usize,
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    debug_assert!(rows <= MR && cols <= NR);
    if rows == MR && cols == NR {
        micro_packed_full::<MR, NR>(k, a, lda, bp, out, ldc);
    } else {
        micro_packed_edge::<MR, NR>(k, a, lda, bp, out, ldc, rows, cols);
    }
}

/// Full-tile fast path: every bound is a compile-time constant, so the
/// accumulator tile stays in registers across the whole reduction.
#[inline]
fn micro_packed_full<const MR: usize, const NR: usize>(
    k: usize,
    a: &[f32],
    lda: usize,
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out[r * ldc..r * ldc + NR]);
    }
    for p in 0..k {
        let brow = &bp[p * NR..p * NR + NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[r * lda + p];
            for (slot, &bv) in accr.iter_mut().zip(brow) {
                *slot += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[r * ldc..r * ldc + NR].copy_from_slice(accr);
    }
}

/// Edge-tile path (`rows < MR` and/or `cols < NR`): same seed-from-`out`,
/// ascending-`p` association on the live lanes; dead lanes read packed
/// zeros and are never stored.
#[allow(clippy::too_many_arguments)]
fn micro_packed_edge<const MR: usize, const NR: usize>(
    k: usize,
    a: &[f32],
    lda: usize,
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate().take(rows) {
        accr[..cols].copy_from_slice(&out[r * ldc..r * ldc + cols]);
    }
    for p in 0..k {
        let brow = &bp[p * NR..p * NR + NR];
        for (r, accr) in acc.iter_mut().enumerate().take(rows) {
            let av = a[r * lda + p];
            for (slot, &bv) in accr.iter_mut().zip(brow) {
                *slot += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(rows) {
        out[r * ldc..r * ldc + cols].copy_from_slice(&accr[..cols]);
    }
}

/// Dispatches on the validated register-tile shape to a monomorphised
/// micro-kernel. `(4,16)` is the fallback arm, matching
/// [`TilingScheme::validated`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_micro(
    mr: usize,
    nr: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    match (mr, nr) {
        (2, 8) => micro_packed::<2, 8>(k, a, lda, bp, out, ldc, rows, cols),
        (4, 4) => micro_packed::<4, 4>(k, a, lda, bp, out, ldc, rows, cols),
        (4, 8) => micro_packed::<4, 8>(k, a, lda, bp, out, ldc, rows, cols),
        (8, 4) => micro_packed::<8, 4>(k, a, lda, bp, out, ldc, rows, cols),
        (8, 8) => micro_packed::<8, 8>(k, a, lda, bp, out, ldc, rows, cols),
        (8, 16) => micro_packed::<8, 16>(k, a, lda, bp, out, ldc, rows, cols),
        _ => micro_packed::<4, 16>(k, a, lda, bp, out, ldc, rows, cols),
    }
}

/// Packs `nr`-wide column tiles of a `[k, n]` row-major `B` panel
/// (columns `j0 .. j0+jb`) into `buf` in tile-major `[tile][p][lane]`
/// order. Edge-tile lanes beyond the matrix are zero-filled.
#[allow(clippy::too_many_arguments)]
fn pack_panel_nn(
    buf: &mut [f32],
    b: &[f32],
    k: usize,
    n: usize,
    j0: usize,
    jb: usize,
    nr: usize,
    kc: usize,
) {
    let ntiles = jb.div_ceil(nr);
    for t in 0..ntiles {
        let j = j0 + t * nr;
        let cols = nr.min(j0 + jb - j);
        let tile = &mut buf[t * k * nr..(t + 1) * k * nr];
        if cols == nr {
            for (p, dst) in tile.chunks_exact_mut(nr).enumerate() {
                dst.copy_from_slice(&b[p * n + j..p * n + j + nr]);
            }
        } else {
            for (p, dst) in tile.chunks_exact_mut(nr).enumerate() {
                dst[..cols].copy_from_slice(&b[p * n + j..p * n + j + cols]);
                dst[cols..].fill(0.0);
            }
        }
    }
    let _ = kc; // nn packing is already row-contiguous; kc chunking is moot.
}

/// Packs `nr`-wide column tiles of `Bᵀ` (with `B` stored `[n, k]`
/// row-major, i.e. `bt[j*k + p]`) into `buf` in tile-major
/// `[tile][p][lane]` order. This is the transposing copy that turns the
/// former strided `bt[(j+c)·k+p]` inner load into a contiguous stream. The
/// copy walks `p` in `kc`-sized chunks so the destination chunk stays
/// cache-resident while `nr` source columns stream through.
#[allow(clippy::too_many_arguments)]
fn pack_panel_nt(
    buf: &mut [f32],
    bt: &[f32],
    k: usize,
    n: usize,
    j0: usize,
    jb: usize,
    nr: usize,
    kc: usize,
) {
    let ntiles = jb.div_ceil(nr);
    for t in 0..ntiles {
        let j = j0 + t * nr;
        let cols = nr.min(j0 + jb - j);
        let tile = &mut buf[t * k * nr..(t + 1) * k * nr];
        let mut p0 = 0;
        while p0 < k {
            let pb = kc.min(k - p0);
            for c in 0..cols {
                let src = &bt[(j + c) * k + p0..(j + c) * k + p0 + pb];
                for (pp, &v) in src.iter().enumerate() {
                    tile[(p0 + pp) * nr + c] = v;
                }
            }
            if cols < nr {
                for pp in 0..pb {
                    tile[(p0 + pp) * nr + cols..(p0 + pp + 1) * nr].fill(0.0);
                }
            }
            p0 += pb;
        }
    }
    let _ = n;
}

/// Signature shared by the panel-packing routines: `(buf, b, k, n, j0,
/// jb, nr, kc)` — fill `buf` with the `[j0, j0+jb)` column panel of the
/// second operand in tile-major `[tile][p][lane]` order.
type PackFn = fn(&mut [f32], &[f32], usize, usize, usize, usize, usize, usize);

/// Shared nn/nt driver: packs one `nc`-column panel at a time, then sweeps
/// `mc`-row cache blocks of register tiles over it.
#[allow(clippy::too_many_arguments)]
fn matmul_packed_acc(
    scheme: TilingScheme,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    pack: PackFn,
) {
    let TilingScheme { mr, nr, mc, kc, nc } = scheme.validated();
    let mut buf = PACK_BUF.with(RefCell::take);
    let mut j0 = 0;
    while j0 < n {
        let jb = nc.min(n - j0);
        let ntiles = jb.div_ceil(nr);
        buf.resize(ntiles * k * nr, 0.0);
        pack(&mut buf, b, k, n, j0, jb, nr, kc);
        let mut i0 = 0;
        while i0 < m {
            let ib = mc.min(m - i0);
            let mut ii = 0;
            while ii < ib {
                let i = i0 + ii;
                let rows = mr.min(ib - ii);
                for t in 0..ntiles {
                    let j = j0 + t * nr;
                    let cols = nr.min(j0 + jb - j);
                    run_micro(
                        mr,
                        nr,
                        k,
                        &a[i * k..],
                        k,
                        &buf[t * k * nr..(t + 1) * k * nr],
                        &mut out[i * n + j..],
                        n,
                        rows,
                        cols,
                    );
                }
                ii += mr;
            }
            i0 += mc;
        }
        j0 += nc;
    }
    PACK_BUF.with(|p| p.replace(buf));
}

/// `out[i,j] += Σ_p a[i,p]·b[p,j]` — `A [m,k] · B [k,n]` under the
/// resolved tiling scheme (see [`resolve_scheme`]).
pub fn matmul_nn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let scheme = resolve_scheme(MatmulLayout::Nn, m, k, n);
    matmul_nn_acc_with(scheme, m, k, n, a, b, out);
}

/// [`matmul_nn_acc`] under an explicit scheme (autotuner benching, tests).
pub fn matmul_nn_acc_with(
    scheme: TilingScheme,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    check_dims("matmul_nn_acc", m, k, n, a.len(), b.len(), out.len());
    matmul_packed_acc(scheme, m, k, n, a, b, out, pack_panel_nn);
}

/// Freshly allocated `A·B` (`A [m,k]`, `B [k,n]`), zero-initialised then
/// accumulated by [`matmul_nn_acc`].
pub fn matmul_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_nn_acc(m, k, n, a, b, &mut out);
    out
}

/// `out[i,j] += Σ_p a[i,p]·bt[j,p]` — `A [m,k] · Bᵀ` with `B` stored
/// `[n,k]`, under the resolved tiling scheme. The needed `Bᵀ` panel is
/// packed into a contiguous tile-ordered scratch buffer first, so the hot
/// loop never touches the strided source layout.
pub fn matmul_nt_acc(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32], out: &mut [f32]) {
    let scheme = resolve_scheme(MatmulLayout::Nt, m, k, n);
    matmul_nt_acc_with(scheme, m, k, n, a, bt, out);
}

/// [`matmul_nt_acc`] under an explicit scheme (autotuner benching, tests).
pub fn matmul_nt_acc_with(
    scheme: TilingScheme,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    bt: &[f32],
    out: &mut [f32],
) {
    // bt holds n rows of k elements; k*n == n*k, so check_dims covers it.
    check_dims("matmul_nt_acc", m, k, n, a.len(), bt.len(), out.len());
    matmul_packed_acc(scheme, m, k, n, a, bt, out, pack_panel_nt);
}

/// Freshly allocated `A·Bᵀ` (`A [m,k]`, `B` stored `[n,k]`).
pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_nt_acc(m, k, n, a, bt, &mut out);
    out
}

/// `out[i,j] += Σ_p at[p,i]·b[p,j]` — `Aᵀ·B` with `A` stored `[k,m]`,
/// under the resolved tiling scheme.
///
/// Outer-product form: for each reduction index `p` a row of `B` is
/// broadcast-multiplied into a block of `out` rows, so the inner loop is a
/// contiguous axpy. `mc`/`nc` block the output panel to keep it
/// cache-resident; per output element the `p` loop is still outermost and
/// ascending, so the determinism contract holds.
pub fn matmul_tn_acc(m: usize, k: usize, n: usize, at: &[f32], b: &[f32], out: &mut [f32]) {
    let scheme = resolve_scheme(MatmulLayout::Tn, m, k, n);
    matmul_tn_acc_with(scheme, m, k, n, at, b, out);
}

/// [`matmul_tn_acc`] under an explicit scheme (autotuner benching, tests).
pub fn matmul_tn_acc_with(
    scheme: TilingScheme,
    m: usize,
    k: usize,
    n: usize,
    at: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    // at holds k rows of m elements; k*m == m*k, so check_dims covers it.
    check_dims("matmul_tn_acc", m, k, n, at.len(), b.len(), out.len());
    let TilingScheme { mc, nc, .. } = scheme.validated();
    let mut j0 = 0;
    while j0 < n {
        let jb = nc.min(n - j0);
        let mut i0 = 0;
        while i0 < m {
            let ib = mc.min(m - i0);
            for p in 0..k {
                let arow = &at[p * m..p * m + m];
                let brow = &b[p * n + j0..p * n + j0 + jb];
                for r in 0..ib {
                    let av = arow[i0 + r];
                    let dst = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + jb];
                    for (d, &bv) in dst.iter_mut().zip(brow) {
                        *d += av * bv;
                    }
                }
            }
            i0 += mc;
        }
        j0 += nc;
    }
}

/// Freshly allocated `Aᵀ·B` (`A` stored `[k,m]`, `B [k,n]`).
pub fn matmul_tn(m: usize, k: usize, n: usize, at: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_tn_acc(m, k, n, at, b, &mut out);
    out
}

/// Textbook triple-loop `A·B` — the naive reference the tiled kernels are
/// checked (and benchmarked) against. Not used on any hot path. Accumulates
/// each element ascending in `p` from zero, which is exactly the tiled
/// kernels' association on a zeroed `out` — so the tiled family is
/// *bit-identical* to this reference, not merely close.
pub fn matmul_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Unrolls one batch element of a causal dilated convolution input into its
/// im2col matrix: `col[(i·K + j)·L + t] = x[i·L + t − (K−1−j)·dilation]`
/// with implicit zero padding on the left. `x` is one `[Cin, L]` slab.
///
/// Each `(channel, tap)` row is a shifted memcpy of the input channel, so
/// the convolution becomes the single matrix product
/// `W [Cout, Cin·K] · col [Cin·K, L]`.
pub fn im2col(x: &[f32], cin: usize, l: usize, k: usize, dilation: usize, col: &mut [f32]) {
    assert!(x.len() >= cin * l, "im2col: x has {} elements", x.len());
    assert!(
        col.len() >= cin * k * l,
        "im2col: col has {} elements, need {}",
        col.len(),
        cin * k * l
    );
    for i in 0..cin {
        let xi = &x[i * l..(i + 1) * l];
        for j in 0..k {
            let back = (k - 1 - j) * dilation;
            let row = &mut col[(i * k + j) * l..(i * k + j + 1) * l];
            if back >= l {
                row.fill(0.0);
            } else {
                row[..back].fill(0.0);
                row[back..].copy_from_slice(&xi[..l - back]);
            }
        }
    }
}

/// Scatters an im2col-shaped gradient back onto the input slab:
/// `gx[i·L + t − back] += gcol[(i·K + j)·L + t]` for every in-range tap.
/// Exact adjoint of [`im2col`].
pub fn col2im_acc(gcol: &[f32], cin: usize, l: usize, k: usize, dilation: usize, gx: &mut [f32]) {
    assert!(
        gx.len() >= cin * l,
        "col2im_acc: gx has {} elements",
        gx.len()
    );
    for i in 0..cin {
        let dst = &mut gx[i * l..(i + 1) * l];
        for j in 0..k {
            let back = (k - 1 - j) * dilation;
            if back >= l {
                continue;
            }
            let row = &gcol[(i * k + j) * l..(i * k + j + 1) * l];
            for (d, &gv) in dst[..l - back].iter_mut().zip(&row[back..]) {
                *d += gv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-0.5, 0.5).
        (0..len)
            .map(|i| {
                let h = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed.wrapping_mul(97))
                    % 1000;
                h as f32 / 1000.0 - 0.5
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn nn_matches_reference_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (3, 1, 9),
            (5, 17, 3),
            (33, 2, 2),
            (4, 16, 16),
            (9, 23, 31),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            assert_close(&matmul_nn(m, k, n, &a, &b), &matmul_ref(m, k, n, &a, &b));
        }
    }

    #[test]
    fn nt_and_tn_match_explicit_transpose() {
        let (m, k, n) = (6, 11, 13);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let reference = matmul_ref(m, k, n, &a, &b);
        // B stored transposed [n, k].
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        assert_close(&matmul_nt(m, k, n, &a, &bt), &reference);
        // A stored transposed [k, m].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        assert_close(&matmul_tn(m, k, n, &at, &b), &reference);
    }

    #[test]
    fn acc_variants_accumulate_on_top() {
        let (m, k, n) = (5, 4, 18);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut out = vec![1.0f32; m * n];
        matmul_nn_acc(m, k, n, &a, &b, &mut out);
        let reference = matmul_ref(m, k, n, &a, &b);
        for (o, r) in out.iter().zip(&reference) {
            assert!((o - (r + 1.0)).abs() <= 1e-5);
        }
    }

    #[test]
    fn every_supported_register_tile_is_bitwise_vs_reference() {
        let (m, k, n) = (19, 23, 21);
        let a = fill(m * k, 9);
        let b = fill(k * n, 10);
        let reference = matmul_ref(m, k, n, &a, &b);
        for &(mr, nr) in SUPPORTED_REGISTER_TILES {
            for (mc, kc, nc) in [(64, 256, 256), (8, 8, 16)] {
                let scheme = TilingScheme::new(mr, nr, mc, kc, nc).validated();
                let mut out = vec![0.0f32; m * n];
                matmul_nn_acc_with(scheme, m, k, n, &a, &b, &mut out);
                assert_eq!(
                    out,
                    reference,
                    "nn scheme {} not bitwise vs reference",
                    scheme.encode()
                );
            }
        }
    }

    #[test]
    fn scheme_encode_parse_round_trips() {
        for &(mr, nr) in SUPPORTED_REGISTER_TILES {
            let s = TilingScheme::new(mr, nr, 32, 128, 96);
            assert_eq!(TilingScheme::parse(&s.encode()), Some(s));
        }
        // Register-tile-only form picks default cache blocks.
        let p = TilingScheme::parse("8x8").expect("register-only form");
        assert_eq!((p.mr, p.nr), (8, 8));
        assert!(p.mc > 0 && p.kc > 0 && p.nc > 0);
        for bad in ["", "8", "0x8", "8x0", "axb", "8x8:1x2", "8x8:1x2x3x4"] {
            assert_eq!(TilingScheme::parse(bad), None, "parse({bad:?})");
        }
    }

    #[test]
    fn validated_snaps_unsupported_register_tiles() {
        let s = TilingScheme::new(5, 13, 0, 0, 0).validated();
        assert_eq!((s.mr, s.nr), (4, 16));
        assert!(s.mc >= s.mr && s.nc >= s.nr && s.kc >= 8);
        for &(mr, nr) in SUPPORTED_REGISTER_TILES {
            let kept = TilingScheme::new(mr, nr, 64, 64, 64).validated();
            assert_eq!((kept.mr, kept.nr), (mr, nr));
        }
    }

    #[test]
    fn forced_scheme_changes_nothing_numerically() {
        let (m, k, n) = (17, 33, 15);
        let a = fill(m * k, 21);
        let b = fill(k * n, 22);
        let baseline = matmul_nn(m, k, n, &a, &b);
        force_scheme(Some(TilingScheme::new(8, 4, 16, 32, 32)));
        let forced = matmul_nn(m, k, n, &a, &b);
        force_scheme(None);
        assert_eq!(baseline, forced, "forced scheme changed matmul bits");
    }

    #[test]
    fn scratch_pool_round_trips() {
        let mut a = scratch::take(64);
        assert_eq!(a.len(), 64);
        a.fill(3.0);
        scratch::put(a);
        let b = scratch::take(16);
        assert_eq!(b.len(), 16);
        let c = scratch::take(1024);
        assert_eq!(c.len(), 1024);
        scratch::put(b);
        scratch::put(c);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let (cin, l, k, d) = (3, 10, 3, 2);
        let x = fill(cin * l, 7);
        let y = fill(cin * k * l, 8);
        let mut col = vec![0.0f32; cin * k * l];
        im2col(&x, cin, l, k, d, &mut col);
        let lhs: f32 = col.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut gx = vec![0.0f32; cin * l];
        col2im_acc(&y, cin, l, k, d, &mut gx);
        let rhs: f32 = x.iter().zip(&gx).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }
}
