//! Define-by-run computation graph with reverse-mode automatic
//! differentiation.
//!
//! The graph is rebuilt on every forward pass (dynamic graph, like PyTorch
//! eager mode). Nodes are stored in an append-only arena, so creation order
//! is already a topological order and the backward pass is a single reverse
//! sweep — see [`crate::backward`].
//!
//! Only nodes transitively reachable from a differentiable leaf
//! ([`Graph::param_leaf`]) track gradients; constant inputs
//! ([`Graph::input`]) short-circuit the backward pass.

use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
///
/// `Var`s are cheap copyable indices and are only meaningful for the graph
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The operation that produced a node, together with the parent indices
/// needed by the backward pass.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Constant or differentiable leaf.
    Leaf,
    /// Element-wise `a + b` (same shape).
    Add(usize, usize),
    /// Element-wise `a - b` (same shape).
    Sub(usize, usize),
    /// Element-wise `a * b` (same shape).
    Mul(usize, usize),
    /// Element-wise `a / b` (same shape).
    Div(usize, usize),
    /// `-a`.
    Neg(usize),
    /// `a * c` for a scalar constant `c`.
    Scale(usize, f32),
    /// `a + c` for a scalar constant `c` (the constant needs no backward
    /// bookkeeping, so it is not stored).
    AddScalar(usize),
    /// `[r,c] + [c]` row-broadcast bias add.
    AddBias(usize, usize),
    /// Matrix product `[m,k] x [k,n]`.
    MatMul(usize, usize),
    /// Transpose of a 2-D tensor.
    Transpose2(usize),
    /// Rectified linear unit.
    Relu(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Element-wise exponential.
    Exp(usize),
    /// Element-wise natural log (input must be positive).
    Ln(usize),
    /// Softmax along the last axis of a 1-D or 2-D tensor.
    SoftmaxLast(usize),
    /// Sum of all elements into a scalar.
    SumAll(usize),
    /// Mean of all elements into a scalar.
    MeanAll(usize),
    /// Concatenation of 1-D tensors.
    Concat(Vec<usize>),
    /// Shape change; stores the parent index (old shape read from parent).
    Reshape(usize),
    /// 1-D slice `a[start .. start+len]`; stores `(parent, start)`.
    Slice1(usize, usize),
    /// Causal dilated 1-D convolution: x `[N,Cin,L]`, w `[Cout,Cin,K]`,
    /// b `[Cout]`, output `[N,Cout,L]`.
    Conv1d {
        x: usize,
        w: usize,
        b: usize,
        dilation: usize,
    },
    /// `S [m,m]` contracted with `H [m,f,t]` over the first axis of `H`.
    ContractFirst(usize, usize),
    /// `H [m,f,t] · w [t] -> [m,f]`.
    DotLast(usize, usize),
    /// `H [m,f,t] · w [f] -> [m,t]`.
    DotMid(usize, usize),
    /// `H [m,f,t] -> [m,f]`, the last time slice.
    SelectLastTime(usize),
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub requires_grad: bool,
}

/// An append-only dynamic computation graph.
///
/// Typical usage:
/// ```
/// use cit_tensor::{Graph, Tensor};
/// let mut g = Graph::new();
/// let w = g.param_leaf(Tensor::from_vec(&[2, 1], vec![0.5, -0.5]));
/// let x = g.input(Tensor::from_vec(&[1, 2], vec![1.0, 2.0]));
/// let y = g.matmul(x, w);
/// let loss = g.sum_all(y);
/// let grads = g.backward(loss);
/// assert_eq!(grads.wrt(w).unwrap().data(), &[1.0, 2.0]);
/// ```
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(256),
        }
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Clears all nodes while keeping the arena's allocated capacity, so a
    /// graph can be rebuilt every step without re-growing the node vector.
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// `true` when no node has been created.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value held by `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, i: usize) -> bool {
        self.nodes[i].requires_grad
    }

    /// A constant leaf: no gradient flows into it.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// A differentiable leaf (parameter). Its gradient is available from
    /// [`crate::backward::Grads::wrt`] after [`Graph::backward`].
    pub fn param_leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    /// Element-wise sum. Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(v, Op::Add(a.0, b.0), rg)
    }

    /// Element-wise difference. Panics on shape mismatch.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(v, Op::Sub(a.0, b.0), rg)
    }

    /// Element-wise product. Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(v, Op::Mul(a.0, b.0), rg)
    }

    /// Element-wise quotient. Panics on shape mismatch.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x / y);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(v, Op::Div(a.0, b.0), rg)
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| -x);
        let rg = self.rg(a.0);
        self.push(v, Op::Neg(a.0), rg)
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.scale(c);
        let rg = self.rg(a.0);
        self.push(v, Op::Scale(a.0, c), rg)
    }

    /// Addition of a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + c);
        let rg = self.rg(a.0);
        self.push(v, Op::AddScalar(a.0), rg)
    }

    /// Row-broadcast bias add: `[r,c] + [c] -> [r,c]`.
    pub fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(
            av.shape().len(),
            2,
            "add_bias: lhs must be 2-D, got {:?}",
            av.shape()
        );
        assert_eq!(
            bv.shape().len(),
            1,
            "add_bias: rhs must be 1-D, got {:?}",
            bv.shape()
        );
        let c = av.shape()[1];
        assert_eq!(
            c,
            bv.shape()[0],
            "add_bias: cols {c} vs bias {:?}",
            bv.shape()
        );
        let mut out = av.clone();
        for row in out.data_mut().chunks_exact_mut(c) {
            for (o, &bias) in row.iter_mut().zip(bv.data()) {
                *o += bias;
            }
        }
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(out, Op::AddBias(a.0, b.0), rg)
    }

    /// Matrix product of 2-D tensors.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(v, Op::MatMul(a.0, b.0), rg)
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose2(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose2();
        let rg = self.rg(a.0);
        self.push(v, Op::Transpose2(a.0), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let rg = self.rg(a.0);
        self.push(v, Op::Relu(a.0), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        let rg = self.rg(a.0);
        self.push(v, Op::Tanh(a.0), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let rg = self.rg(a.0);
        self.push(v, Op::Sigmoid(a.0), rg)
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::exp);
        let rg = self.rg(a.0);
        self.push(v, Op::Exp(a.0), rg)
    }

    /// Element-wise natural logarithm. Inputs must be positive; a small
    /// floor avoids `-inf` from numerically zero values.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(1e-12).ln());
        let rg = self.rg(a.0);
        self.push(v, Op::Ln(a.0), rg)
    }

    /// Numerically stable softmax along the last axis of a 1-D or 2-D
    /// tensor.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let v = softmax_last_tensor(av);
        let rg = self.rg(a.0);
        self.push(v, Op::SoftmaxLast(a.0), rg)
    }

    /// Sum of all elements into a scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        let rg = self.rg(a.0);
        self.push(v, Op::SumAll(a.0), rg)
    }

    /// Mean of all elements into a scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.mean());
        let rg = self.rg(a.0);
        self.push(v, Op::MeanAll(a.0), rg)
    }

    /// Concatenation of 1-D tensors into one 1-D tensor.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let mut data = Vec::new();
        let mut rg = false;
        for p in parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(
                t.shape().len(),
                1,
                "concat expects 1-D parts, got {:?}",
                t.shape()
            );
            data.extend_from_slice(t.data());
            rg |= self.rg(p.0);
        }
        let v = Tensor::from_vec(&[data.len()], data);
        self.push(v, Op::Concat(parts.iter().map(|p| p.0).collect()), rg)
    }

    /// Shape change preserving element count.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.nodes[a.0].value.reshaped(shape);
        let rg = self.rg(a.0);
        self.push(v, Op::Reshape(a.0), rg)
    }

    /// 1-D slice `a[start .. start+len]`.
    pub fn slice1(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(
            av.shape().len(),
            1,
            "slice1 expects 1-D, got {:?}",
            av.shape()
        );
        assert!(start + len <= av.numel(), "slice1 out of range");
        let v = Tensor::from_vec(&[len], av.data()[start..start + len].to_vec());
        let rg = self.rg(a.0);
        self.push(v, Op::Slice1(a.0, start), rg)
    }

    /// Causal dilated 1-D convolution.
    ///
    /// `x [N,Cin,L]`, `w [Cout,Cin,K]`, `b [Cout]` produce `[N,Cout,L]`;
    /// position `t` only sees `x[.., t - j*dilation]` for `j < K`
    /// (implicit zero padding on the left), so no future information leaks —
    /// the property the TCN relies on.
    pub fn conv1d(&mut self, x: Var, w: Var, b: Var, dilation: usize) -> Var {
        let (xv, wv, bv) = (
            &self.nodes[x.0].value,
            &self.nodes[w.0].value,
            &self.nodes[b.0].value,
        );
        let v = conv1d_forward(xv, wv, bv, dilation);
        let rg = self.rg(x.0) || self.rg(w.0) || self.rg(b.0);
        self.push(
            v,
            Op::Conv1d {
                x: x.0,
                w: w.0,
                b: b.0,
                dilation,
            },
            rg,
        )
    }

    /// Contraction `out[i,f,t] = Σ_j S[i,j] · H[j,f,t]`.
    pub fn contract_first(&mut self, s: Var, h: Var) -> Var {
        let (sv, hv) = (&self.nodes[s.0].value, &self.nodes[h.0].value);
        assert_eq!(sv.shape().len(), 2, "contract_first: S must be 2-D");
        assert_eq!(hv.shape().len(), 3, "contract_first: H must be 3-D");
        let (m, m2) = (sv.shape()[0], sv.shape()[1]);
        assert_eq!(m, m2, "contract_first: S must be square");
        assert_eq!(
            m,
            hv.shape()[0],
            "contract_first: S {m} vs H {:?}",
            hv.shape()
        );
        let (f, t) = (hv.shape()[1], hv.shape()[2]);
        let ft = f * t;
        let out = crate::kernels::matmul_nn(m, m, ft, sv.data(), hv.data());
        let rg = self.rg(s.0) || self.rg(h.0);
        self.push(
            Tensor::from_vec(&[m, f, t], out),
            Op::ContractFirst(s.0, h.0),
            rg,
        )
    }

    /// `H [m,f,t] · w [t] -> [m,f]`.
    pub fn dot_last(&mut self, h: Var, w: Var) -> Var {
        let (hv, wv) = (&self.nodes[h.0].value, &self.nodes[w.0].value);
        assert_eq!(hv.shape().len(), 3, "dot_last: H must be 3-D");
        assert_eq!(wv.shape().len(), 1, "dot_last: w must be 1-D");
        let (m, f, t) = (hv.shape()[0], hv.shape()[1], hv.shape()[2]);
        assert_eq!(t, wv.shape()[0], "dot_last: time {t} vs w {:?}", wv.shape());
        let mut out = vec![0.0f32; m * f];
        for i in 0..m {
            for j in 0..f {
                let mut acc = 0.0;
                for k in 0..t {
                    acc += hv.at3(i, j, k) * wv.data()[k];
                }
                out[i * f + j] = acc;
            }
        }
        let rg = self.rg(h.0) || self.rg(w.0);
        self.push(Tensor::from_vec(&[m, f], out), Op::DotLast(h.0, w.0), rg)
    }

    /// `H [m,f,t] · w [f] -> [m,t]`.
    pub fn dot_mid(&mut self, h: Var, w: Var) -> Var {
        let (hv, wv) = (&self.nodes[h.0].value, &self.nodes[w.0].value);
        assert_eq!(hv.shape().len(), 3, "dot_mid: H must be 3-D");
        assert_eq!(wv.shape().len(), 1, "dot_mid: w must be 1-D");
        let (m, f, t) = (hv.shape()[0], hv.shape()[1], hv.shape()[2]);
        assert_eq!(f, wv.shape()[0], "dot_mid: feat {f} vs w {:?}", wv.shape());
        let mut out = vec![0.0f32; m * t];
        for i in 0..m {
            for k in 0..t {
                let mut acc = 0.0;
                for j in 0..f {
                    acc += hv.at3(i, j, k) * wv.data()[j];
                }
                out[i * t + k] = acc;
            }
        }
        let rg = self.rg(h.0) || self.rg(w.0);
        self.push(Tensor::from_vec(&[m, t], out), Op::DotMid(h.0, w.0), rg)
    }

    /// Last time slice of `H [m,f,t]`, shape `[m,f]`.
    pub fn select_last_time(&mut self, h: Var) -> Var {
        let hv = &self.nodes[h.0].value;
        assert_eq!(hv.shape().len(), 3, "select_last_time: H must be 3-D");
        let (m, f, t) = (hv.shape()[0], hv.shape()[1], hv.shape()[2]);
        let mut out = vec![0.0f32; m * f];
        for i in 0..m {
            for j in 0..f {
                out[i * f + j] = hv.at3(i, j, t - 1);
            }
        }
        let rg = self.rg(h.0);
        self.push(Tensor::from_vec(&[m, f], out), Op::SelectLastTime(h.0), rg)
    }
}

/// Softmax along the last axis of a 1-D or 2-D tensor, with max-shift for
/// numerical stability. Shared with the backward pass and with plain-tensor
/// callers (e.g. turning Gaussian samples into portfolio weights).
pub fn softmax_last_tensor(t: &Tensor) -> Tensor {
    let shape = t.shape();
    assert!(
        shape.len() == 1 || shape.len() == 2,
        "softmax_last expects 1-D or 2-D, got {shape:?}"
    );
    let cols = *shape.last().expect("non-empty shape");
    let rows = t.numel() / cols.max(1);
    let mut out = vec![0.0f32; t.numel()];
    for r in 0..rows {
        let row = &t.data()[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut denom = 0.0;
        for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out[r * cols..(r + 1) * cols] {
            *o /= denom;
        }
    }
    Tensor::from_vec(shape, out)
}

pub(crate) fn conv1d_forward(x: &Tensor, w: &Tensor, b: &Tensor, dilation: usize) -> Tensor {
    assert_eq!(
        x.shape().len(),
        3,
        "conv1d: x must be [N,Cin,L], got {:?}",
        x.shape()
    );
    assert_eq!(
        w.shape().len(),
        3,
        "conv1d: w must be [Cout,Cin,K], got {:?}",
        w.shape()
    );
    assert_eq!(
        b.shape().len(),
        1,
        "conv1d: b must be [Cout], got {:?}",
        b.shape()
    );
    assert!(dilation >= 1, "conv1d: dilation must be >= 1");
    let (n, cin, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (cout, cin2, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(cin, cin2, "conv1d: channels {cin} vs {cin2}");
    assert_eq!(
        cout,
        b.shape()[0],
        "conv1d: bias {:?} vs Cout {cout}",
        b.shape()
    );
    // im2col lowering: tap j looks back (k-1-j)*dilation steps so the
    // highest-index tap aligns with the current step; each batch element
    // becomes one W [Cout, Cin·K] × col [Cin·K, L] product seeded with the
    // bias. The col matrix lives in the thread-local scratch slab — the
    // forward pass runs once per graph build, so recycling it cuts a
    // per-step allocation (im2col overwrites every element).
    let rows = cin * k;
    let mut col = crate::kernels::scratch::take(rows * l);
    let mut out = vec![0.0f32; n * cout * l];
    for ni in 0..n {
        crate::kernels::im2col(
            &x.data()[ni * cin * l..(ni + 1) * cin * l],
            cin,
            l,
            k,
            dilation,
            &mut col,
        );
        let slab = &mut out[ni * cout * l..(ni + 1) * cout * l];
        for (o, orow) in slab.chunks_exact_mut(l).enumerate() {
            orow.fill(b.data()[o]);
        }
        crate::kernels::matmul_nn_acc(cout, rows, l, w.data(), &col, slab);
    }
    crate::kernels::scratch::put(col);
    Tensor::from_vec(&[n, cout, l], out)
}

/// A thread-safe pool of reusable [`Graph`] arenas.
///
/// Graphs are rebuilt on every forward pass; taking an arena from the pool
/// and [`GraphPool::put`]ting it back afterwards reuses the node vector's
/// allocation across steps instead of re-growing it each time. Workers on
/// different threads may share one pool — which arena a caller gets only
/// affects capacity, never values.
#[derive(Default)]
pub struct GraphPool {
    free: std::sync::Mutex<Vec<Graph>>,
}

impl GraphPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared arena from the pool, or allocates a fresh one.
    pub fn take(&self) -> Graph {
        match self.free.lock() {
            Ok(mut v) => v.pop().unwrap_or_default(),
            Err(_) => Graph::new(),
        }
    }

    /// Clears `g` and returns it to the pool for reuse.
    pub fn put(&self, mut g: Graph) {
        g.reset();
        if let Ok(mut v) = self.free.lock() {
            v.push(g);
        }
    }

    /// Number of idle arenas currently held.
    pub fn idle(&self) -> usize {
        self.free.lock().map(|v| v.len()).unwrap_or(0)
    }
}
