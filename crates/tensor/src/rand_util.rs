//! Seeded random-number helpers shared across the workspace.
//!
//! `rand_distr` is deliberately not a dependency; the Gaussian sampler here
//! is a plain Box–Muller transform, which is more than adequate for policy
//! exploration noise and synthetic market generation.

use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    // Guard against u1 == 0 which would send ln(u1) to -inf.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

/// Fills a buffer with i.i.d. `N(0, std²)` samples as `f32`.
pub fn fill_normal(rng: &mut impl Rng, buf: &mut [f32], std: f32) {
    for b in buf {
        *b = (normal(rng) as f32) * std;
    }
}

/// Fills a buffer with i.i.d. `U(-limit, limit)` samples.
pub fn fill_uniform(rng: &mut impl Rng, buf: &mut [f32], limit: f32) {
    for b in buf {
        *b = rng.random_range(-limit..limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_with(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fill_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0.0f32; 256];
        fill_uniform(&mut rng, &mut buf, 0.1);
        assert!(buf.iter().all(|x| x.abs() <= 0.1));
        assert!(buf.iter().any(|x| *x != 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(normal(&mut a), normal(&mut b));
        }
    }
}
