//! # cit-tensor
//!
//! Dense `f32` tensors and a define-by-run reverse-mode autodiff engine —
//! the numerical substrate of the Cross-Insight Trader reproduction.
//!
//! The design mirrors eager PyTorch at miniature scale: a [`Graph`] is an
//! append-only arena of operation nodes rebuilt on every forward pass, and
//! [`Graph::backward`] performs a single reverse sweep producing [`Grads`].
//! The operation set is intentionally small but covers everything the
//! paper's networks need: dense algebra, causal dilated convolution (TCN),
//! the ASTGCN-style spatial-attention contractions, softmax heads, and the
//! scalar reductions used for losses.
//!
//! ```
//! use cit_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let w = g.param_leaf(Tensor::vector(&[2.0, -1.0]));
//! let x = g.input(Tensor::vector(&[3.0, 4.0]));
//! let y = g.mul(w, x);
//! let loss = g.sum_all(y); // 2·3 + (−1)·4 = 2
//! assert_eq!(g.value(loss).item(), 2.0);
//! let grads = g.backward(loss);
//! assert_eq!(grads.wrt(w).unwrap().data(), &[3.0, 4.0]);
//! ```

#![deny(missing_docs)]

mod backward;
pub mod gradcheck;
mod graph;
pub mod kernels;
pub mod rand_util;
mod tensor;

pub use backward::Grads;
pub use graph::{softmax_last_tensor, Graph, GraphPool, Var};
pub use kernels::{MatmulLayout, TilingScheme};
pub use tensor::Tensor;
