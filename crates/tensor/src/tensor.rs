//! Dense row-major `f32` tensor used both inside the autodiff graph and for
//! plain numeric plumbing (optimiser state, environment bookkeeping).

use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are dynamic (rank 0–3 is what the library exercises; higher ranks
/// work for element-wise operations). Shape mismatches are programming
/// errors and panic with a descriptive message, mirroring the convention of
/// mainstream array libraries.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{}, {}, ... {} elems]",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Builds a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "Tensor::from_vec: shape {shape:?} needs {numel} elements, got {}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// A 1-D tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Tensor {
            shape: vec![values.len()],
            data: values.to_vec(),
        }
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor returning its backing data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "Tensor::item on tensor with shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Element access for a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Element access for a 3-D tensor.
    #[inline]
    pub fn at3(&self, i: usize, j: usize, k: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(i * self.shape[1] + j) * self.shape[2] + k]
    }

    /// Sets an element of a 2-D tensor.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        self.data[r * cols + c] = v;
    }

    /// Sets an element of a 3-D tensor.
    #[inline]
    pub fn set3(&mut self, i: usize, j: usize, k: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 3);
        let (d1, d2) = (self.shape[1], self.shape[2]);
        self.data[(i * d1 + j) * d2 + k] = v;
    }

    /// Returns a reshaped copy sharing no storage with `self`.
    ///
    /// # Panics
    /// Panics if the new shape has a different element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combination of two same-shape tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map: shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise accumulation: `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign: shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling: `self *= c`.
    pub fn scale_assign(&mut self, c: f32) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Element-wise sum of two tensors.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference of two tensors.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise product of two tensors.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scales every element by `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Largest absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Matrix product of two 2-D tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// # Panics
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape.len(),
            2,
            "matmul: lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.shape.len(),
            2,
            "matmul: rhs must be 2-D, got {:?}",
            other.shape
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dims {k} vs {k2}");
        Tensor {
            shape: vec![m, n],
            data: crate::kernels::matmul_nn(m, k, n, &self.data, &other.data),
        }
    }

    /// `self · otherᵀ` without materialising the transpose: `self [m,k]`,
    /// `other [n,k]`, result `[m,n]`.
    ///
    /// # Panics
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_nt: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul_nt: rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt: inner dims {k} vs {k2}");
        Tensor {
            shape: vec![m, n],
            data: crate::kernels::matmul_nt(m, k, n, &self.data, &other.data),
        }
    }

    /// `selfᵀ · other` without materialising the transpose: `self [k,m]`,
    /// `other [k,n]`, result `[m,n]`.
    ///
    /// # Panics
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_tn: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul_tn: rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn: inner dims {k} vs {k2}");
        Tensor {
            shape: vec![m, n],
            data: crate::kernels::matmul_tn(m, k, n, &self.data, &other.data),
        }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2 on {:?}", self.shape);
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![c, r],
            data: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2, 2], 2.5).sum(), 10.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(&[1., 2., 3.]);
        let b = Tensor::vector(&[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let id = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose2().transpose2(), a);
        assert_eq!(a.transpose2().at2(2, 1), 6.0);
    }

    #[test]
    fn stats() {
        let a = Tensor::vector(&[-3., 1., 2.]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max_abs(), 3.0);
        assert_eq!(a.sq_norm(), 14.0);
        assert!(a.all_finite());
    }

    #[test]
    fn nan_detection() {
        let a = Tensor::vector(&[1.0, f32::NAN]);
        assert!(!a.all_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.at2(2, 1), 6.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::vector(&[1., 1.]);
        a.add_assign(&Tensor::vector(&[2., 3.]));
        assert_eq!(a.data(), &[3., 4.]);
    }
}
