//! Reverse-mode sweep over a [`Graph`].
//!
//! Because the node arena is append-only, iterating node indices in reverse
//! order visits every node after all of its consumers — exactly the
//! topological order reverse-mode differentiation needs.

use crate::graph::{Graph, Op, Var};
use crate::tensor::Tensor;

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// The gradient of the loss with respect to `v`, or `None` when no
    /// gradient flowed into `v` (constant inputs, unused parameters).
    pub fn wrt(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }

    /// The gradient with respect to `v`, or a zero tensor of `shape`.
    pub fn wrt_or_zeros(&self, v: Var, shape: &[usize]) -> Tensor {
        self.grads[v.0]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(shape))
    }
}

impl Graph {
    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward: loss must be scalar, got shape {:?}",
            self.nodes[loss.0].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::from_vec(
            self.nodes[loss.0].value.shape(),
            vec![1.0],
        ));

        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let Some(g) = grads[idx].take() else { continue };
            self.propagate(idx, &g, &mut grads);
            grads[idx] = Some(g);
        }
        Grads { grads }
    }

    fn accumulate(&self, grads: &mut [Option<Tensor>], parent: usize, contribution: Tensor) {
        if !self.nodes[parent].requires_grad {
            return;
        }
        match &mut grads[parent] {
            Some(existing) => existing.add_assign(&contribution),
            slot @ None => *slot = Some(contribution),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn propagate(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let val = |i: usize| &self.nodes[i].value;
        match &self.nodes[idx].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accumulate(grads, *a, g.clone());
                self.accumulate(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(grads, *a, g.clone());
                self.accumulate(grads, *b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                self.accumulate(grads, *a, g.mul(val(*b)));
                self.accumulate(grads, *b, g.mul(val(*a)));
            }
            Op::Div(a, b) => {
                let bv = val(*b);
                self.accumulate(grads, *a, g.zip_map(bv, |gi, bi| gi / bi));
                let av = val(*a);
                let mut gb = g.mul(av);
                gb = gb.zip_map(bv, |x, bi| -x / (bi * bi));
                self.accumulate(grads, *b, gb);
            }
            Op::Neg(a) => self.accumulate(grads, *a, g.map(|x| -x)),
            Op::Scale(a, c) => self.accumulate(grads, *a, g.scale(*c)),
            Op::AddScalar(a) => self.accumulate(grads, *a, g.clone()),
            Op::AddBias(a, b) => {
                self.accumulate(grads, *a, g.clone());
                let (r, c) = (g.shape()[0], g.shape()[1]);
                let mut gb = vec![0.0f32; c];
                for i in 0..r {
                    for (j, gbj) in gb.iter_mut().enumerate() {
                        *gbj += g.at2(i, j);
                    }
                }
                self.accumulate(grads, *b, Tensor::from_vec(&[c], gb));
            }
            Op::MatMul(a, b) => {
                // dA = g · Bᵀ ; dB = Aᵀ · g — transposed-layout kernels, no
                // transposed copy is materialised per accumulate.
                self.accumulate(grads, *a, g.matmul_nt(val(*b)));
                self.accumulate(grads, *b, val(*a).matmul_tn(g));
            }
            Op::Transpose2(a) => self.accumulate(grads, *a, g.transpose2()),
            Op::Relu(a) => {
                let gate = val(*a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                self.accumulate(grads, *a, g.mul(&gate));
            }
            Op::Tanh(a) => {
                // y = tanh(x) ⇒ dy/dx = 1 - y²; reuse the cached output.
                let y = &self.nodes[idx].value;
                self.accumulate(grads, *a, g.zip_map(y, |gi, yi| gi * (1.0 - yi * yi)));
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[idx].value;
                self.accumulate(grads, *a, g.zip_map(y, |gi, yi| gi * yi * (1.0 - yi)));
            }
            Op::Exp(a) => {
                let y = &self.nodes[idx].value;
                self.accumulate(grads, *a, g.mul(y));
            }
            Op::Ln(a) => {
                let x = val(*a);
                self.accumulate(grads, *a, g.zip_map(x, |gi, xi| gi / xi.max(1e-12)));
            }
            Op::SoftmaxLast(a) => {
                let y = &self.nodes[idx].value;
                let cols = *y.shape().last().expect("non-empty");
                let rows = y.numel() / cols.max(1);
                let mut gx = vec![0.0f32; y.numel()];
                for r in 0..rows {
                    let yr = &y.data()[r * cols..(r + 1) * cols];
                    let gr = &g.data()[r * cols..(r + 1) * cols];
                    let dot: f32 = yr.iter().zip(gr).map(|(&yi, &gi)| yi * gi).sum();
                    for j in 0..cols {
                        gx[r * cols + j] = yr[j] * (gr[j] - dot);
                    }
                }
                self.accumulate(grads, *a, Tensor::from_vec(val(*a).shape(), gx));
            }
            Op::SumAll(a) => {
                let s = g.item();
                self.accumulate(grads, *a, Tensor::full(val(*a).shape(), s));
            }
            Op::MeanAll(a) => {
                let n = val(*a).numel() as f32;
                let s = g.item() / n;
                self.accumulate(grads, *a, Tensor::full(val(*a).shape(), s));
            }
            Op::Concat(parts) => {
                let mut offset = 0usize;
                for &p in parts {
                    let len = val(p).numel();
                    let slice = g.data()[offset..offset + len].to_vec();
                    self.accumulate(grads, p, Tensor::from_vec(&[len], slice));
                    offset += len;
                }
            }
            Op::Reshape(a) => {
                let parent_shape = val(*a).shape().to_vec();
                self.accumulate(grads, *a, g.reshaped(&parent_shape));
            }
            Op::Slice1(a, start) => {
                let mut gx = Tensor::zeros(val(*a).shape());
                let len = g.numel();
                gx.data_mut()[*start..start + len].copy_from_slice(g.data());
                self.accumulate(grads, *a, gx);
            }
            Op::Conv1d { x, w, b, dilation } => {
                self.conv1d_backward(*x, *w, *b, *dilation, g, grads);
            }
            Op::ContractFirst(s, h) => {
                let (sv, hv) = (val(*s), val(*h));
                let (m, f, t) = (hv.shape()[0], hv.shape()[1], hv.shape()[2]);
                let ft = f * t;
                if self.nodes[*s].requires_grad {
                    // dS[i,j] = Σ_{f,t} g[i,f,t] · H[j,f,t] — g · Hᵀ over the
                    // flattened [m, f·t] views.
                    let gs = crate::kernels::matmul_nt(m, ft, m, g.data(), hv.data());
                    self.accumulate(grads, *s, Tensor::from_vec(&[m, m], gs));
                }
                if self.nodes[*h].requires_grad {
                    // dH[j,f,t] = Σ_i S[i,j] · g[i,f,t] — Sᵀ · g.
                    let gh = crate::kernels::matmul_tn(m, m, ft, sv.data(), g.data());
                    self.accumulate(grads, *h, Tensor::from_vec(&[m, f, t], gh));
                }
            }
            Op::DotLast(h, w) => {
                let (hv, wv) = (val(*h), val(*w));
                let (m, f, t) = (hv.shape()[0], hv.shape()[1], hv.shape()[2]);
                if self.nodes[*h].requires_grad {
                    let mut gh = Tensor::zeros(&[m, f, t]);
                    for i in 0..m {
                        for j in 0..f {
                            let gij = g.at2(i, j);
                            for k in 0..t {
                                gh.set3(i, j, k, gij * wv.data()[k]);
                            }
                        }
                    }
                    self.accumulate(grads, *h, gh);
                }
                if self.nodes[*w].requires_grad {
                    let mut gw = vec![0.0f32; t];
                    for i in 0..m {
                        for j in 0..f {
                            let gij = g.at2(i, j);
                            for (k, gk) in gw.iter_mut().enumerate() {
                                *gk += gij * hv.at3(i, j, k);
                            }
                        }
                    }
                    self.accumulate(grads, *w, Tensor::from_vec(&[t], gw));
                }
            }
            Op::DotMid(h, w) => {
                let (hv, wv) = (val(*h), val(*w));
                let (m, f, t) = (hv.shape()[0], hv.shape()[1], hv.shape()[2]);
                if self.nodes[*h].requires_grad {
                    let mut gh = Tensor::zeros(&[m, f, t]);
                    for i in 0..m {
                        for k in 0..t {
                            let gik = g.at2(i, k);
                            for j in 0..f {
                                gh.set3(i, j, k, gik * wv.data()[j]);
                            }
                        }
                    }
                    self.accumulate(grads, *h, gh);
                }
                if self.nodes[*w].requires_grad {
                    let mut gw = vec![0.0f32; f];
                    for i in 0..m {
                        for k in 0..t {
                            let gik = g.at2(i, k);
                            for (j, gj) in gw.iter_mut().enumerate() {
                                *gj += gik * hv.at3(i, j, k);
                            }
                        }
                    }
                    self.accumulate(grads, *w, Tensor::from_vec(&[f], gw));
                }
            }
            Op::SelectLastTime(h) => {
                let hv = val(*h);
                let (m, f, t) = (hv.shape()[0], hv.shape()[1], hv.shape()[2]);
                let mut gh = Tensor::zeros(&[m, f, t]);
                for i in 0..m {
                    for j in 0..f {
                        gh.set3(i, j, t - 1, g.at2(i, j));
                    }
                }
                self.accumulate(grads, *h, gh);
            }
        }
    }

    fn conv1d_backward(
        &self,
        x: usize,
        w: usize,
        b: usize,
        dilation: usize,
        g: &Tensor,
        grads: &mut [Option<Tensor>],
    ) {
        let (xv, wv) = (&self.nodes[x].value, &self.nodes[w].value);
        let (n, cin, l) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
        let (cout, _, k) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
        let rows = cin * k;

        if self.nodes[b].requires_grad {
            let mut gb = vec![0.0f32; cout];
            for ni in 0..n {
                for (o, gbo) in gb.iter_mut().enumerate() {
                    let grow = &g.data()[(ni * cout + o) * l..(ni * cout + o + 1) * l];
                    *gbo += grow.iter().sum::<f32>();
                }
            }
            self.accumulate(grads, b, Tensor::from_vec(&[cout], gb));
        }

        let need_w = self.nodes[w].requires_grad;
        let need_x = self.nodes[x].requires_grad;
        if !need_w && !need_x {
            return;
        }
        // Same im2col lowering as the forward pass:
        //   dW = Σ_batch g_ni · colᵀ      (g [Cout,L] · col [Cin·K, L]ᵀ)
        //   dX = Σ_batch col2im(Wᵀ · g_ni)
        // col/gcol recycle the thread-local scratch slab: col is fully
        // overwritten by im2col, gcol is zero-filled before each use.
        let mut col = crate::kernels::scratch::take(rows * l);
        let mut gw = need_w.then(|| vec![0.0f32; cout * rows]);
        let mut gx = need_x.then(|| vec![0.0f32; n * cin * l]);
        let mut gcol = crate::kernels::scratch::take(rows * l);
        for ni in 0..n {
            let gn = &g.data()[ni * cout * l..(ni + 1) * cout * l];
            if let Some(gw) = gw.as_mut() {
                crate::kernels::im2col(
                    &xv.data()[ni * cin * l..(ni + 1) * cin * l],
                    cin,
                    l,
                    k,
                    dilation,
                    &mut col,
                );
                crate::kernels::matmul_nt_acc(cout, l, rows, gn, &col, gw);
            }
            if let Some(gx) = gx.as_mut() {
                gcol.fill(0.0);
                crate::kernels::matmul_tn_acc(rows, cout, l, wv.data(), gn, &mut gcol);
                crate::kernels::col2im_acc(
                    &gcol,
                    cin,
                    l,
                    k,
                    dilation,
                    &mut gx[ni * cin * l..(ni + 1) * cin * l],
                );
            }
        }
        crate::kernels::scratch::put(col);
        crate::kernels::scratch::put(gcol);
        if let Some(gw) = gw {
            self.accumulate(grads, w, Tensor::from_vec(&[cout, cin, k], gw));
        }
        if let Some(gx) = gx {
            self.accumulate(grads, x, Tensor::from_vec(&[n, cin, l], gx));
        }
    }
}
