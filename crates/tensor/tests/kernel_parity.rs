//! Parity and gradient checks for the tiled compute kernels across odd
//! shapes: 1×1, tall/skinny, and reduction dimensions not divisible by the
//! register-tile sizes. The tiled kernels must agree with the textbook
//! reference to ≤1e-5 (the matmul family is in fact bit-identical — every
//! output element accumulates in ascending reduction order).

use cit_tensor::kernels::{
    matmul_nn, matmul_nn_acc_with, matmul_nt, matmul_nt_acc_with, matmul_ref, matmul_tn,
    matmul_tn_acc_with, TilingScheme,
};
use cit_tensor::{Graph, Tensor};

/// Deterministic pseudo-random fill (no RNG dependency in this crate).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

const ODD_SHAPES: [(usize, usize, usize); 9] = [
    (1, 1, 1),
    (1, 5, 1),
    (7, 1, 3),
    (64, 3, 2),  // tall/skinny
    (2, 3, 64),  // short/wide
    (5, 17, 19), // k not divisible by any tile
    (4, 16, 16), // exact register tile
    (9, 33, 31), // one past tile boundaries
    (13, 7, 5),
];

#[test]
fn tiled_matmul_matches_reference_on_odd_shapes() {
    for (m, k, n) in ODD_SHAPES {
        let a = fill(m * k, (m * 1000 + k * 10 + n) as u64);
        let b = fill(k * n, (n * 777 + k) as u64);
        let tiled = matmul_nn(m, k, n, &a, &b);
        let reference = matmul_ref(m, k, n, &a, &b);
        let diff = max_abs_diff(&tiled, &reference);
        assert!(diff <= 1e-5, "matmul_nn {m}x{k}x{n}: diff {diff}");
    }
}

#[test]
fn transposed_variants_match_reference_on_odd_shapes() {
    for (m, k, n) in ODD_SHAPES {
        let a = fill(m * k, (m + k + n) as u64);
        let b = fill(k * n, (m * 31 + n) as u64);
        let reference = matmul_ref(m, k, n, &a, &b);

        // matmul_nt takes B stored transposed, [n, k].
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let nt = matmul_nt(m, k, n, &a, &bt);
        let diff = max_abs_diff(&nt, &reference);
        assert!(diff <= 1e-5, "matmul_nt {m}x{k}x{n}: diff {diff}");

        // matmul_tn takes A stored transposed, [k, m].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let tn = matmul_tn(m, k, n, &at, &b);
        let diff = max_abs_diff(&tn, &reference);
        assert!(diff <= 1e-5, "matmul_tn {m}x{k}x{n}: diff {diff}");
    }
}

/// Boundary-crossing shape sweep: every dimension takes values straddling
/// the register-tile boundary (`tile = 16`, the widest supported `nr`),
/// for all three layouts, under schemes with deliberately different tile
/// shapes. Because every scheme accumulates each output element in the
/// same seed-then-ascending-`p` order, the results must be **bitwise**
/// equal to the `matmul_ref`-derived reference — not merely close.
#[test]
fn shape_sweep_is_bitwise_across_tile_boundaries_and_schemes() {
    const TILE: usize = 16;
    let dims = [1, TILE - 1, TILE, TILE + 1, 2 * TILE + 3];
    let schemes = [
        TilingScheme::new(4, 16, 64, 256, 256).validated(),
        TilingScheme::new(8, 8, 16, 32, 32).validated(),
        TilingScheme::new(2, 8, 8, 8, 8).validated(),
    ];
    for &m in &dims {
        for &k in &dims {
            for &n in &dims {
                let a = fill(m * k, (m * 10_007 + k * 101 + n) as u64);
                let b = fill(k * n, (n * 7_919 + k * 13 + m) as u64);
                let reference = matmul_ref(m, k, n, &a, &b);

                // Operands for the transposed layouts.
                let mut bt = vec![0.0f32; n * k];
                for p in 0..k {
                    for j in 0..n {
                        bt[j * k + p] = b[p * n + j];
                    }
                }
                let mut at = vec![0.0f32; k * m];
                for i in 0..m {
                    for p in 0..k {
                        at[p * m + i] = a[i * k + p];
                    }
                }

                for scheme in schemes {
                    let enc = scheme.encode();
                    let mut nn = vec![0.0f32; m * n];
                    matmul_nn_acc_with(scheme, m, k, n, &a, &b, &mut nn);
                    assert_eq!(nn, reference, "nn {m}x{k}x{n} scheme {enc} not bitwise");

                    let mut nt = vec![0.0f32; m * n];
                    matmul_nt_acc_with(scheme, m, k, n, &a, &bt, &mut nt);
                    assert_eq!(nt, reference, "nt {m}x{k}x{n} scheme {enc} not bitwise");

                    let mut tn = vec![0.0f32; m * n];
                    matmul_tn_acc_with(scheme, m, k, n, &at, &b, &mut tn);
                    assert_eq!(tn, reference, "tn {m}x{k}x{n} scheme {enc} not bitwise");
                }
            }
        }
    }
}

/// The `_acc` contract under explicit schemes: accumulating on top of a
/// non-zero `out` must also be scheme-invariant (the association is
/// `((out + t₀) + t₁) + …` for every scheme).
#[test]
fn accumulation_on_nonzero_out_is_scheme_invariant() {
    let (m, k, n) = (17, 33, 19);
    let a = fill(m * k, 3);
    let b = fill(k * n, 5);
    let seed: Vec<f32> = fill(m * n, 7);
    let schemes = [
        TilingScheme::new(4, 16, 64, 256, 256).validated(),
        TilingScheme::new(8, 4, 8, 16, 16).validated(),
    ];
    let mut outputs = Vec::new();
    for scheme in schemes {
        let mut out = seed.clone();
        matmul_nn_acc_with(scheme, m, k, n, &a, &b, &mut out);
        outputs.push(out);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "accumulate-on-top diverged across schemes"
    );
}

/// Scalar reference for causal dilated conv1d, shapes `x [n, cin, l]`,
/// `w [cout, cin, k]`, `b [cout]` (mirrors the graph op's contract).
#[allow(clippy::too_many_arguments)]
fn conv1d_ref(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    n: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
    dilation: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n * cout * l];
    for ni in 0..n {
        for o in 0..cout {
            for t in 0..l {
                let mut acc = b[o];
                for c in 0..cin {
                    for j in 0..k {
                        let back = (k - 1 - j) * dilation;
                        if t >= back {
                            acc += w[(o * cin + c) * k + j] * x[(ni * cin + c) * l + t - back];
                        }
                    }
                }
                out[(ni * cout + o) * l + t] = acc;
            }
        }
    }
    out
}

const CONV_SHAPES: [(usize, usize, usize, usize, usize, usize); 6] = [
    // (n, cin, l, cout, k, dilation)
    (1, 1, 1, 1, 1, 1),
    (1, 1, 7, 1, 3, 1),
    (2, 3, 5, 4, 3, 2),
    (1, 2, 9, 3, 2, 4),
    (3, 1, 4, 1, 4, 1), // kernel as long as the sequence
    (1, 5, 16, 2, 3, 3),
];

#[test]
fn im2col_conv_forward_matches_scalar_reference() {
    for (n, cin, l, cout, k, dilation) in CONV_SHAPES {
        let x = fill(n * cin * l, (n * 100 + l) as u64);
        let w = fill(cout * cin * k, (cout * 55 + k) as u64);
        let b = fill(cout, 17);

        let mut g = Graph::new();
        let xv = g.input(Tensor::from_vec(&[n, cin, l], x.clone()));
        let wv = g.input(Tensor::from_vec(&[cout, cin, k], w.clone()));
        let bv = g.input(Tensor::from_vec(&[cout], b.clone()));
        let y = g.conv1d(xv, wv, bv, dilation);

        let reference = conv1d_ref(&x, &w, &b, n, cin, l, cout, k, dilation);
        let diff = max_abs_diff(g.value(y).data(), &reference);
        assert!(
            diff <= 1e-5,
            "conv1d forward n={n} cin={cin} l={l} cout={cout} k={k} d={dilation}: diff {diff}"
        );
    }
}

#[test]
fn conv_backward_gradcheck_on_odd_shapes() {
    // Finite-difference check of the im2col/col2im backward against the
    // forward, for every input of the op. f32 centred differences resolve
    // to roughly 1e-2 relative; the shapes are small enough for that.
    for (n, cin, l, cout, k, dilation) in CONV_SHAPES {
        let x = fill(n * cin * l, (l * 31 + cin) as u64);
        let w = fill(cout * cin * k, (k * 13 + cout) as u64);
        let b = fill(cout, 5);

        let loss_of = |x: &[f32], w: &[f32], b: &[f32]| -> f32 {
            let mut g = Graph::new();
            let xv = g.input(Tensor::from_vec(&[n, cin, l], x.to_vec()));
            let wv = g.input(Tensor::from_vec(&[cout, cin, k], w.to_vec()));
            let bv = g.input(Tensor::from_vec(&[cout], b.to_vec()));
            let y = g.conv1d(xv, wv, bv, dilation);
            // Square the output so gradients depend on the forward values.
            let sq = g.mul(y, y);
            let s = g.sum_all(sq);
            g.value(s).data()[0]
        };

        // Analytic gradients.
        let mut g = Graph::new();
        let xv = g.param_leaf(Tensor::from_vec(&[n, cin, l], x.clone()));
        let wv = g.param_leaf(Tensor::from_vec(&[cout, cin, k], w.clone()));
        let bv = g.param_leaf(Tensor::from_vec(&[cout], b.clone()));
        let y = g.conv1d(xv, wv, bv, dilation);
        let sq = g.mul(y, y);
        let s = g.sum_all(sq);
        let grads = g.backward(s);

        let eps = 1e-2f32;
        let check = |name: &str, base: &[f32], analytic: &Tensor, which: usize| {
            for i in 0..base.len() {
                let mut plus = base.to_vec();
                let mut minus = base.to_vec();
                plus[i] += eps;
                minus[i] -= eps;
                let (lp, lm) = match which {
                    0 => (loss_of(&plus, &w, &b), loss_of(&minus, &w, &b)),
                    1 => (loss_of(&x, &plus, &b), loss_of(&x, &minus, &b)),
                    _ => (loss_of(&x, &w, &plus), loss_of(&x, &w, &minus)),
                };
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.data()[i];
                let scale = 1.0f32.max(a.abs()).max(numeric.abs());
                assert!(
                    (a - numeric).abs() / scale <= 2e-2,
                    "{name}[{i}] n={n} cin={cin} l={l} cout={cout} k={k} d={dilation}: \
                     analytic {a} vs numeric {numeric}"
                );
            }
        };
        check("gx", &x, grads.wrt(xv).expect("x grad"), 0);
        check("gw", &w, grads.wrt(wv).expect("w grad"), 1);
        check("gb", &b, grads.wrt(bv).expect("b grad"), 2);
    }
}
