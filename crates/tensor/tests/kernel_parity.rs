//! Parity and gradient checks for the tiled compute kernels across odd
//! shapes: 1×1, tall/skinny, and reduction dimensions not divisible by the
//! register-tile sizes. The tiled kernels must agree with the textbook
//! reference to ≤1e-5 (the matmul family is in fact bit-identical — every
//! output element accumulates in ascending reduction order).

use cit_tensor::kernels::{matmul_nn, matmul_nt, matmul_ref, matmul_tn};
use cit_tensor::{Graph, Tensor};

/// Deterministic pseudo-random fill (no RNG dependency in this crate).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

const ODD_SHAPES: [(usize, usize, usize); 9] = [
    (1, 1, 1),
    (1, 5, 1),
    (7, 1, 3),
    (64, 3, 2),  // tall/skinny
    (2, 3, 64),  // short/wide
    (5, 17, 19), // k not divisible by any tile
    (4, 16, 16), // exact register tile
    (9, 33, 31), // one past tile boundaries
    (13, 7, 5),
];

#[test]
fn tiled_matmul_matches_reference_on_odd_shapes() {
    for (m, k, n) in ODD_SHAPES {
        let a = fill(m * k, (m * 1000 + k * 10 + n) as u64);
        let b = fill(k * n, (n * 777 + k) as u64);
        let tiled = matmul_nn(m, k, n, &a, &b);
        let reference = matmul_ref(m, k, n, &a, &b);
        let diff = max_abs_diff(&tiled, &reference);
        assert!(diff <= 1e-5, "matmul_nn {m}x{k}x{n}: diff {diff}");
    }
}

#[test]
fn transposed_variants_match_reference_on_odd_shapes() {
    for (m, k, n) in ODD_SHAPES {
        let a = fill(m * k, (m + k + n) as u64);
        let b = fill(k * n, (m * 31 + n) as u64);
        let reference = matmul_ref(m, k, n, &a, &b);

        // matmul_nt takes B stored transposed, [n, k].
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let nt = matmul_nt(m, k, n, &a, &bt);
        let diff = max_abs_diff(&nt, &reference);
        assert!(diff <= 1e-5, "matmul_nt {m}x{k}x{n}: diff {diff}");

        // matmul_tn takes A stored transposed, [k, m].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let tn = matmul_tn(m, k, n, &at, &b);
        let diff = max_abs_diff(&tn, &reference);
        assert!(diff <= 1e-5, "matmul_tn {m}x{k}x{n}: diff {diff}");
    }
}

/// Scalar reference for causal dilated conv1d, shapes `x [n, cin, l]`,
/// `w [cout, cin, k]`, `b [cout]` (mirrors the graph op's contract).
#[allow(clippy::too_many_arguments)]
fn conv1d_ref(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    n: usize,
    cin: usize,
    l: usize,
    cout: usize,
    k: usize,
    dilation: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n * cout * l];
    for ni in 0..n {
        for o in 0..cout {
            for t in 0..l {
                let mut acc = b[o];
                for c in 0..cin {
                    for j in 0..k {
                        let back = (k - 1 - j) * dilation;
                        if t >= back {
                            acc += w[(o * cin + c) * k + j] * x[(ni * cin + c) * l + t - back];
                        }
                    }
                }
                out[(ni * cout + o) * l + t] = acc;
            }
        }
    }
    out
}

const CONV_SHAPES: [(usize, usize, usize, usize, usize, usize); 6] = [
    // (n, cin, l, cout, k, dilation)
    (1, 1, 1, 1, 1, 1),
    (1, 1, 7, 1, 3, 1),
    (2, 3, 5, 4, 3, 2),
    (1, 2, 9, 3, 2, 4),
    (3, 1, 4, 1, 4, 1), // kernel as long as the sequence
    (1, 5, 16, 2, 3, 3),
];

#[test]
fn im2col_conv_forward_matches_scalar_reference() {
    for (n, cin, l, cout, k, dilation) in CONV_SHAPES {
        let x = fill(n * cin * l, (n * 100 + l) as u64);
        let w = fill(cout * cin * k, (cout * 55 + k) as u64);
        let b = fill(cout, 17);

        let mut g = Graph::new();
        let xv = g.input(Tensor::from_vec(&[n, cin, l], x.clone()));
        let wv = g.input(Tensor::from_vec(&[cout, cin, k], w.clone()));
        let bv = g.input(Tensor::from_vec(&[cout], b.clone()));
        let y = g.conv1d(xv, wv, bv, dilation);

        let reference = conv1d_ref(&x, &w, &b, n, cin, l, cout, k, dilation);
        let diff = max_abs_diff(g.value(y).data(), &reference);
        assert!(
            diff <= 1e-5,
            "conv1d forward n={n} cin={cin} l={l} cout={cout} k={k} d={dilation}: diff {diff}"
        );
    }
}

#[test]
fn conv_backward_gradcheck_on_odd_shapes() {
    // Finite-difference check of the im2col/col2im backward against the
    // forward, for every input of the op. f32 centred differences resolve
    // to roughly 1e-2 relative; the shapes are small enough for that.
    for (n, cin, l, cout, k, dilation) in CONV_SHAPES {
        let x = fill(n * cin * l, (l * 31 + cin) as u64);
        let w = fill(cout * cin * k, (k * 13 + cout) as u64);
        let b = fill(cout, 5);

        let loss_of = |x: &[f32], w: &[f32], b: &[f32]| -> f32 {
            let mut g = Graph::new();
            let xv = g.input(Tensor::from_vec(&[n, cin, l], x.to_vec()));
            let wv = g.input(Tensor::from_vec(&[cout, cin, k], w.to_vec()));
            let bv = g.input(Tensor::from_vec(&[cout], b.to_vec()));
            let y = g.conv1d(xv, wv, bv, dilation);
            // Square the output so gradients depend on the forward values.
            let sq = g.mul(y, y);
            let s = g.sum_all(sq);
            g.value(s).data()[0]
        };

        // Analytic gradients.
        let mut g = Graph::new();
        let xv = g.param_leaf(Tensor::from_vec(&[n, cin, l], x.clone()));
        let wv = g.param_leaf(Tensor::from_vec(&[cout, cin, k], w.clone()));
        let bv = g.param_leaf(Tensor::from_vec(&[cout], b.clone()));
        let y = g.conv1d(xv, wv, bv, dilation);
        let sq = g.mul(y, y);
        let s = g.sum_all(sq);
        let grads = g.backward(s);

        let eps = 1e-2f32;
        let check = |name: &str, base: &[f32], analytic: &Tensor, which: usize| {
            for i in 0..base.len() {
                let mut plus = base.to_vec();
                let mut minus = base.to_vec();
                plus[i] += eps;
                minus[i] -= eps;
                let (lp, lm) = match which {
                    0 => (loss_of(&plus, &w, &b), loss_of(&minus, &w, &b)),
                    1 => (loss_of(&x, &plus, &b), loss_of(&x, &minus, &b)),
                    _ => (loss_of(&x, &w, &plus), loss_of(&x, &w, &minus)),
                };
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.data()[i];
                let scale = 1.0f32.max(a.abs()).max(numeric.abs());
                assert!(
                    (a - numeric).abs() / scale <= 2e-2,
                    "{name}[{i}] n={n} cin={cin} l={l} cout={cout} k={k} d={dilation}: \
                     analytic {a} vs numeric {numeric}"
                );
            }
        };
        check("gx", &x, grads.wrt(xv).expect("x grad"), 0);
        check("gw", &w, grads.wrt(wv).expect("w grad"), 1);
        check("gb", &b, grads.wrt(bv).expect("b grad"), 2);
    }
}
