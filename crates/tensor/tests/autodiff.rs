//! Gradient checks for every differentiable op, plus property-based checks
//! that analytic gradients agree with central finite differences on random
//! inputs.

use cit_tensor::gradcheck::assert_gradcheck;
use cit_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f32 = 3e-2; // f32 central differences are noisy; relative tolerance.

fn randt(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tensor::zeros(shape);
    cit_tensor::rand_util::fill_uniform(&mut rng, t.data_mut(), 0.9);
    t
}

#[test]
fn grad_add() {
    assert_gradcheck(&[randt(&[3], 1), randt(&[3], 2)], TOL, |g, p| {
        let y = g.add(p[0], p[1]);
        g.sum_all(y)
    });
}

#[test]
fn grad_sub() {
    assert_gradcheck(&[randt(&[4], 3), randt(&[4], 4)], TOL, |g, p| {
        let y = g.sub(p[0], p[1]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_mul() {
    assert_gradcheck(&[randt(&[5], 5), randt(&[5], 6)], TOL, |g, p| {
        let y = g.mul(p[0], p[1]);
        g.sum_all(y)
    });
}

#[test]
fn grad_div() {
    let mut denom = randt(&[4], 7);
    for d in denom.data_mut() {
        *d = d.abs() + 0.5; // keep away from zero
    }
    assert_gradcheck(&[randt(&[4], 8), denom], TOL, |g, p| {
        let y = g.div(p[0], p[1]);
        g.sum_all(y)
    });
}

#[test]
fn grad_neg_scale_addscalar() {
    assert_gradcheck(&[randt(&[6], 9)], TOL, |g, p| {
        let a = g.neg(p[0]);
        let b = g.scale(a, 2.5);
        let c = g.add_scalar(b, 1.0);
        let sq = g.mul(c, c);
        g.sum_all(sq)
    });
}

#[test]
fn grad_add_bias() {
    assert_gradcheck(&[randt(&[3, 4], 10), randt(&[4], 11)], TOL, |g, p| {
        let y = g.add_bias(p[0], p[1]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_matmul() {
    assert_gradcheck(&[randt(&[3, 4], 12), randt(&[4, 2], 13)], TOL, |g, p| {
        let y = g.matmul(p[0], p[1]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_transpose() {
    assert_gradcheck(&[randt(&[3, 4], 14)], TOL, |g, p| {
        let y = g.transpose2(p[0]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_relu() {
    // Shift values away from the kink at zero.
    let mut t = randt(&[8], 15);
    for v in t.data_mut() {
        if v.abs() < 0.05 {
            *v += 0.2;
        }
    }
    assert_gradcheck(&[t], TOL, |g, p| {
        let y = g.relu(p[0]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_tanh_sigmoid_exp() {
    assert_gradcheck(&[randt(&[6], 16)], TOL, |g, p| {
        let a = g.tanh(p[0]);
        let b = g.sigmoid(a);
        let c = g.exp(b);
        g.sum_all(c)
    });
}

#[test]
fn grad_ln() {
    let mut t = randt(&[5], 17);
    for v in t.data_mut() {
        *v = v.abs() + 0.5;
    }
    assert_gradcheck(&[t], TOL, |g, p| {
        let y = g.ln(p[0]);
        g.sum_all(y)
    });
}

#[test]
fn grad_softmax_1d() {
    assert_gradcheck(&[randt(&[5], 18), randt(&[5], 19)], TOL, |g, p| {
        let s = g.softmax_last(p[0]);
        let weighted = g.mul(s, p[1]);
        g.sum_all(weighted)
    });
}

#[test]
fn grad_softmax_2d_rows() {
    assert_gradcheck(&[randt(&[3, 4], 20), randt(&[3, 4], 21)], TOL, |g, p| {
        let s = g.softmax_last(p[0]);
        let weighted = g.mul(s, p[1]);
        g.sum_all(weighted)
    });
}

#[test]
fn grad_mean_all() {
    assert_gradcheck(&[randt(&[7], 22)], TOL, |g, p| {
        let sq = g.mul(p[0], p[0]);
        g.mean_all(sq)
    });
}

#[test]
fn grad_concat_slice_reshape() {
    assert_gradcheck(&[randt(&[3], 23), randt(&[4], 24)], TOL, |g, p| {
        let c = g.concat(&[p[0], p[1]]);
        let s = g.slice1(c, 1, 5);
        let r = g.reshape(s, &[5]);
        let sq = g.mul(r, r);
        g.sum_all(sq)
    });
}

#[test]
fn grad_conv1d_all_inputs() {
    // x [2,2,6], w [3,2,2], b [3]
    assert_gradcheck(
        &[
            randt(&[2, 2, 6], 25),
            randt(&[3, 2, 2], 26),
            randt(&[3], 27),
        ],
        TOL,
        |g, p| {
            let y = g.conv1d(p[0], p[1], p[2], 1);
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        },
    );
}

#[test]
fn grad_conv1d_dilated() {
    assert_gradcheck(
        &[
            randt(&[1, 2, 8], 28),
            randt(&[2, 2, 3], 29),
            randt(&[2], 30),
        ],
        TOL,
        |g, p| {
            let y = g.conv1d(p[0], p[1], p[2], 2);
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        },
    );
}

#[test]
fn grad_contract_first() {
    assert_gradcheck(&[randt(&[3, 3], 31), randt(&[3, 2, 4], 32)], TOL, |g, p| {
        let y = g.contract_first(p[0], p[1]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_dot_last_and_mid() {
    assert_gradcheck(
        &[randt(&[3, 2, 4], 33), randt(&[4], 34), randt(&[2], 35)],
        TOL,
        |g, p| {
            let a = g.dot_last(p[0], p[1]); // [3,2]
            let b = g.dot_mid(p[0], p[2]); // [3,4]
            let sa = g.sum_all(a);
            let sb = g.sum_all(b);
            let sb2 = g.mul(sb, sb);
            g.add(sa, sb2)
        },
    );
}

#[test]
fn grad_select_last_time() {
    assert_gradcheck(&[randt(&[2, 3, 5], 36)], TOL, |g, p| {
        let y = g.select_last_time(p[0]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_composite_attention_like() {
    // A miniature version of the spatial-attention computation exercising
    // several ops chained together.
    assert_gradcheck(
        &[
            randt(&[3, 2, 4], 37), // H
            randt(&[4], 38),       // w1 (time)
            randt(&[2], 39),       // w3 (feat)
            randt(&[3, 3], 40),    // Vs
            randt(&[3, 3], 41),    // bias
        ],
        TOL,
        |g, p| {
            let left = g.dot_last(p[0], p[1]); // [3,2]
            let right = g.dot_mid(p[0], p[2]); // [3,4]
            let right_t = g.transpose2(right); // [4,3]
            let left_pad = g.reshape(left, &[3, 2]);
            // Project left [3,2] to [3,4] by multiplying with a fixed matrix
            // derived from parts of H — keep it simple: use matmul with w
            // formed by reshaping p[0] is overkill; instead multiply
            // left·leftᵀ to get [3,3] directly.
            let left_t = g.transpose2(left_pad); // [2,3]
            let ll = g.matmul(left_pad, left_t); // [3,3]
            let rr = g.matmul(right, right_t); // [3,3] — wait shapes: [3,4]x[4,3]
            let pre = g.add(ll, rr);
            let pre_b = g.add(pre, p[4]);
            let sig = g.sigmoid(pre_b);
            let s = g.mul(p[3], sig);
            let sm = g.softmax_last(s);
            let h2 = g.contract_first(sm, p[0]);
            let pooled = g.select_last_time(h2);
            let sq = g.mul(pooled, pooled);
            g.sum_all(sq)
        },
    );
}

#[test]
fn no_grad_flows_into_inputs() {
    let mut g = Graph::new();
    let x = g.input(Tensor::vector(&[1.0, 2.0]));
    let w = g.param_leaf(Tensor::vector(&[3.0, 4.0]));
    let y = g.mul(x, w);
    let loss = g.sum_all(y);
    let grads = g.backward(loss);
    assert!(
        grads.wrt(x).is_none(),
        "constant input must not receive a gradient"
    );
    assert_eq!(grads.wrt(w).unwrap().data(), &[1.0, 2.0]);
}

#[test]
fn grad_accumulates_across_reuse() {
    // y = w·w summed: dy/dw = 2w.
    let mut g = Graph::new();
    let w = g.param_leaf(Tensor::vector(&[2.0, -3.0]));
    let y = g.mul(w, w);
    let loss = g.sum_all(y);
    let grads = g.backward(loss);
    assert_eq!(grads.wrt(w).unwrap().data(), &[4.0, -6.0]);
}

#[test]
fn backward_ignores_nodes_after_loss() {
    let mut g = Graph::new();
    let w = g.param_leaf(Tensor::vector(&[1.0]));
    let loss = g.sum_all(w);
    let _unused = g.scale(w, 100.0); // created after the loss node
    let grads = g.backward(loss);
    assert_eq!(grads.wrt(w).unwrap().data(), &[1.0]);
}

#[test]
#[should_panic(expected = "scalar")]
fn backward_requires_scalar_loss() {
    let mut g = Graph::new();
    let w = g.param_leaf(Tensor::vector(&[1.0, 2.0]));
    let _ = g.backward(w);
}

#[test]
fn softmax_rows_sum_to_one() {
    let t = randt(&[4, 6], 50);
    let s = cit_tensor::softmax_last_tensor(&t);
    for r in 0..4 {
        let sum: f32 = s.data()[r * 6..(r + 1) * 6].iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
    }
}

// Property-style sweeps over seeded random shapes (deterministic loops
// instead of proptest, which is unavailable in the offline build
// environment).

#[test]
fn prop_matmul_grad_matches_fd() {
    let mut rng = StdRng::seed_from_u64(100);
    for case in 0..24u64 {
        let (m, k, n) = (
            rng.random_range(1usize..4),
            rng.random_range(1usize..4),
            rng.random_range(1usize..4),
        );
        assert_gradcheck(
            &[randt(&[m, k], 2 * case), randt(&[k, n], 2 * case + 1)],
            TOL,
            |g, p| {
                let y = g.matmul(p[0], p[1]);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
        );
    }
}

#[test]
fn prop_softmax_grad_matches_fd() {
    let mut rng = StdRng::seed_from_u64(101);
    for case in 0..24u64 {
        let n = rng.random_range(2usize..7);
        assert_gradcheck(
            &[randt(&[n], 60 + 2 * case), randt(&[n], 61 + 2 * case)],
            TOL,
            |g, p| {
                let s = g.softmax_last(p[0]);
                let w = g.mul(s, p[1]);
                g.sum_all(w)
            },
        );
    }
}

#[test]
fn prop_conv_grad_matches_fd() {
    let mut rng = StdRng::seed_from_u64(102);
    for case in 0..24u64 {
        let l = rng.random_range(3usize..7);
        let k = rng.random_range(1usize..3);
        let dil = rng.random_range(1usize..3);
        assert_gradcheck(
            &[
                randt(&[1, 2, l], 120 + 3 * case),
                randt(&[2, 2, k], 121 + 3 * case),
                randt(&[2], 122 + 3 * case),
            ],
            TOL,
            |g, p| {
                let y = g.conv1d(p[0], p[1], p[2], dil);
                let y2 = g.mul(y, y);
                g.sum_all(y2)
            },
        );
    }
}

#[test]
fn prop_softmax_is_simplex() {
    let mut rng = StdRng::seed_from_u64(103);
    for case in 0..24u64 {
        let n = rng.random_range(1usize..10);
        let t = randt(&[n], 200 + case);
        let s = cit_tensor::softmax_last_tensor(&t);
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "case {case}");
        assert!(s.data().iter().all(|&x| x >= 0.0), "case {case}");
    }
}

#[test]
fn prop_conv_is_causal() {
    // Changing a future input must not change earlier outputs.
    let mut rng = StdRng::seed_from_u64(104);
    for case in 0..24u64 {
        let l = rng.random_range(4usize..9);
        let x = randt(&[1, 1, l], 300 + 3 * case);
        let w = randt(&[1, 1, 3], 301 + 3 * case);
        let b = randt(&[1], 302 + 3 * case);
        let run = |x: &Tensor| -> Vec<f32> {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.input(w.clone());
            let bv = g.input(b.clone());
            let y = g.conv1d(xv, wv, bv, 1);
            g.value(y).data().to_vec()
        };
        let base = run(&x);
        let mut bumped = x.clone();
        let last = l - 1;
        bumped.data_mut()[last] += 5.0;
        let changed = run(&bumped);
        for t in 0..last {
            assert!(
                (base[t] - changed[t]).abs() < 1e-6,
                "t={t} leaked future info"
            );
        }
        assert!((base[last] - changed[last]).abs() > 1e-6 || w.data()[2] == 0.0);
    }
}
