//! The readiness-polled connection layer: one reactor thread owns the
//! nonblocking listener and every client socket, multiplexed with
//! `poll(2)` (declared directly against the platform C library — no
//! external crates). Connections are small state machines: a read buffer
//! accumulates partial lines, a write buffer absorbs partial writes, and
//! an ordered slot queue keeps pipelined responses in request order.
//!
//! Decision work still flows through the bounded micro-batcher queue
//! ([`crate::batch`]); the batcher's worker threads hand results back
//! through a completion queue and wake the reactor over a self-pipe
//! (a `UnixStream` pair), so the reactor never blocks on compute and a
//! stalled batcher never stops `stats`/`info`/`reload` from answering.
//! Session idle-TTL eviction runs off the reactor's poll tick.

use crate::batch::{DepthGuard, Job, ReplyHandle};
use crate::protocol::{ErrorKind, Request, Response};
use crate::server::{begin_drain_flag, op_index, ServerState, OP_OTHER};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    /// `poll(2)`; `nfds_t` is `c_ulong` on every supported 64-bit Unix.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    /// `listen(2)`, re-issued to resize an already-listening socket's
    /// accept backlog.
    fn listen(sockfd: i32, backlog: i32) -> i32;
}

/// Deepens the listener's accept backlog. `TcpListener::bind` hardcodes
/// a backlog of 128; a 1024-client connect storm overflows that queue
/// and the kernel resets the dropped handshakes (ECONNRESET on the
/// client's first write). Linux permits calling `listen(2)` again on a
/// listening socket to resize the queue (silently capped by
/// `net.core.somaxconn`). Best-effort: on failure the default stands.
pub(crate) fn deepen_backlog(listener: &TcpListener, backlog: i32) {
    unsafe {
        listen(listener.as_raw_fd(), backlog);
    }
}

/// Blocks until any registered fd is ready or `timeout` elapses.
fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// The cross-thread completion path back into the reactor: batcher
/// workers push `(connection, sequence, response)` triples and poke the
/// self-pipe so a sleeping `poll` wakes immediately.
pub(crate) struct Completions {
    queue: Mutex<Vec<(u64, u64, Response)>>,
    waker: UnixStream,
}

impl Completions {
    pub(crate) fn new(waker: UnixStream) -> Completions {
        // Nonblocking so a batcher worker can never stall on a full
        // pipe — a full pipe already means a wake is pending.
        let _ = waker.set_nonblocking(true);
        Completions {
            queue: Mutex::new(Vec::new()),
            waker,
        }
    }

    pub(crate) fn push(&self, conn: u64, seq: u64, resp: Response) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push((conn, seq, resp));
        self.wake();
    }

    /// Wakes the reactor without queueing a completion (drain signal).
    /// A full pipe means a wake is already pending — that is fine.
    pub(crate) fn wake(&self) {
        let _ = (&self.waker).write(&[1u8]);
    }

    fn drain(&self) -> Vec<(u64, u64, Response)> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// One in-order response slot of a connection. Pipelined requests each
/// claim a slot at parse time; responses are flushed strictly from the
/// front so replies can never overtake each other.
struct Slot {
    seq: u64,
    /// Index into [`crate::server::OP_NAMES`].
    op_idx: usize,
    /// Whether the request went through the batcher queue (these also
    /// feed the `serve.requests`/`serve.latency` instruments on reply,
    /// mirroring the thread-per-connection backend).
    queued: bool,
    started: Instant,
    resp: Option<Response>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed; `scanned` marks how far the
    /// newline scan got so repeated partial reads stay O(new bytes).
    rbuf: Vec<u8>,
    scanned: usize,
    /// Rendered responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// In-order response slots (front = oldest outstanding request).
    slots: VecDeque<Slot>,
    next_seq: u64,
    /// Close once every slot is answered and the write buffer is empty
    /// (set by the `shutdown` op and by EOF).
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            scanned: 0,
            wbuf: Vec::new(),
            slots: VecDeque::new(),
            next_seq: 0,
            closing: false,
        }
    }

    /// Work that still has to happen before the connection may close.
    fn has_pending(&self) -> bool {
        !self.slots.is_empty() || !self.wbuf.is_empty()
    }
}

/// What to do with a connection after an I/O step.
enum ConnFate {
    Keep,
    Drop,
}

/// The reactor loop. Owns the listener and all connections; returns once
/// a drain completes (flag set, every queued request answered or the
/// drain deadline passed).
pub(crate) fn run_reactor(
    listener: TcpListener,
    state: Arc<ServerState>,
    tx: SyncSender<Job>,
    completions: Arc<Completions>,
    waker_rx: UnixStream,
) {
    if listener.set_nonblocking(true).is_err() || waker_rx.set_nonblocking(true).is_err() {
        return;
    }
    let tick = Duration::from_millis(state.cfg.tick_ms.max(1));
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut last_tick = Instant::now();
    let mut drain_deadline: Option<Instant> = None;
    // Rebuilt every iteration: fds[0] = waker, fds[1] = listener (while
    // accepting), then one entry per connection (ids kept in parallel).
    let mut fds: Vec<PollFd> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();

    loop {
        let draining = state.shutdown.load(Ordering::Relaxed);
        if draining {
            if drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + Duration::from_secs(5));
            }
            // Idle connections close immediately on drain; busy ones get
            // until the deadline to flush.
            conns.retain(|_, c| c.has_pending());
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if conns.is_empty() || expired {
                state.connections.store(0, Ordering::Relaxed);
                state.connections_gauge.set(0.0);
                return;
            }
        }

        fds.clear();
        ids.clear();
        fds.push(PollFd {
            fd: waker_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        let listener_slot = if draining {
            None
        } else {
            fds.push(PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            Some(1)
        };
        let conn_base = fds.len();
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if !conn.closing {
                events |= POLLIN;
            }
            if !conn.wbuf.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            ids.push(id);
        }

        if poll_fds(&mut fds, tick).is_err() {
            return;
        }

        // 1. Drain the self-pipe (wake tokens carry no payload).
        if fds[0].revents != 0 {
            let mut sink = [0u8; 256];
            while matches!((&waker_rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        // 2. Apply completions from the batcher workers.
        for (conn_id, seq, resp) in completions.drain() {
            if let Some(conn) = conns.get_mut(&conn_id) {
                apply_completion(conn, seq, resp, &state);
            }
        }

        // 3. Accept new connections.
        if let Some(slot) = listener_slot {
            if fds[slot].revents != 0 {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            conns.insert(next_id, Conn::new(stream));
                            next_id += 1;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
            }
        }

        // 4. Service ready connections.
        let mut dead: Vec<u64> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let revents = fds[conn_base + i].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if revents & (POLLERR | POLLNVAL) != 0 {
                dead.push(id);
                continue;
            }
            let mut fate = ConnFate::Keep;
            if revents & (POLLIN | POLLHUP) != 0 && !conn.closing {
                fate = read_and_dispatch(conn, id, &state, &tx, &completions);
            }
            if matches!(fate, ConnFate::Keep) && !conn.wbuf.is_empty() {
                fate = flush_writes(conn, &state);
            }
            if matches!(fate, ConnFate::Keep) && conn.wbuf.len() > state.cfg.max_wbuf {
                // Slow reader: the socket is not draining and the pending
                // responses have outgrown the per-connection budget.
                // Disconnecting bounds server memory; the client treats it
                // like any other connection loss.
                fate = ConnFate::Drop;
            }
            if matches!(fate, ConnFate::Keep) && conn.closing && !conn.has_pending() {
                fate = ConnFate::Drop;
            }
            if matches!(fate, ConnFate::Drop) {
                dead.push(id);
            }
        }

        // Completions may have unblocked flushes on connections that had
        // no poll events this round.
        let mut flush_dead: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if !conn.wbuf.is_empty() {
                if let ConnFate::Drop = flush_writes(conn, &state) {
                    flush_dead.push(id);
                }
            }
            if conn.wbuf.len() > state.cfg.max_wbuf {
                flush_dead.push(id); // slow reader (see above)
            }
            if conn.closing && !conn.has_pending() {
                flush_dead.push(id);
            }
        }
        dead.extend(flush_dead);
        for id in dead {
            conns.remove(&id);
        }
        state
            .connections
            .store(conns.len() as i64, Ordering::Relaxed);
        state.connections_gauge.set(conns.len() as f64);

        // 5. Tick work: idle-session eviction and the session gauge.
        if last_tick.elapsed() >= tick {
            last_tick = Instant::now();
            if let (Some(ttl), Some(spill)) = (state.cfg.session_ttl, &state.spill) {
                let evicted = state.store.evict_idle(ttl, spill);
                if evicted > 0 {
                    state.note_evicted(evicted as u64);
                }
            }
            state.sessions_gauge.set(state.store.len() as f64);
        }
    }
}

/// Reads everything the socket has, then parses and dispatches every
/// complete line in the buffer.
fn read_and_dispatch(
    conn: &mut Conn,
    conn_id: u64,
    state: &Arc<ServerState>,
    tx: &SyncSender<Job>,
    completions: &Arc<Completions>,
) -> ConnFate {
    // Injected socket-read faults: a stall (`serve.sock.stall` — the
    // kernel buffered nothing yet) and a hard error (`serve.sock.read` —
    // peer reset). The server's answer to both is the same as to the real
    // thing — carry on, or drop this connection; nothing else may be
    // disturbed. Each probe owns its site string because every probe
    // call advances that site's occurrence counter.
    if let Some(d) = state.cfg.faults.delay_at("serve.sock.stall") {
        std::thread::sleep(d);
    }
    if state.cfg.faults.io_error("serve.sock.read").is_some() {
        return ConnFate::Drop;
    }
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: no more requests can arrive; flush what remains
                // and close.
                conn.closing = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ConnFate::Drop,
        }
    }
    // Extract complete lines; `scanned` avoids rescanning the same
    // partial-line prefix on every read.
    let mut start = 0;
    while let Some(rel) = conn.rbuf[conn.scanned.max(start)..]
        .iter()
        .position(|&b| b == b'\n')
    {
        let end = conn.scanned.max(start) + rel;
        let line = trim_line(&conn.rbuf[start..end]);
        if !line.is_empty() {
            let line = String::from_utf8_lossy(line).into_owned();
            handle_line(conn, conn_id, &line, state, tx, completions);
        }
        start = end + 1;
        conn.scanned = start;
    }
    if start > 0 {
        conn.rbuf.drain(..start);
    }
    conn.scanned = conn.rbuf.len();
    ConnFate::Keep
}

fn trim_line(mut line: &[u8]) -> &[u8] {
    if line.last() == Some(&b'\r') {
        line = &line[..line.len() - 1];
    }
    // Leading/trailing spaces were tolerated by the blocking backend
    // (`line.trim().is_empty()` skipped blank lines); keep blank-line
    // tolerance by trimming ASCII whitespace.
    while line.first().is_some_and(|b| b.is_ascii_whitespace()) {
        line = &line[1..];
    }
    while line.last().is_some_and(|b| b.is_ascii_whitespace()) {
        line = &line[..line.len() - 1];
    }
    line
}

/// Parses one request line and either answers it inline (control-plane
/// ops) or enqueues it for the batcher (decision-plane ops), claiming an
/// in-order response slot either way.
fn handle_line(
    conn: &mut Conn,
    conn_id: u64,
    line: &str,
    state: &Arc<ServerState>,
    tx: &SyncSender<Job>,
    completions: &Arc<Completions>,
) {
    let started = Instant::now();
    let seq = conn.next_seq;
    conn.next_seq += 1;

    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => {
            complete_inline(
                conn,
                seq,
                OP_OTHER,
                started,
                Response::error(ErrorKind::BadRequest, e),
                state,
            );
            return;
        }
    };
    let op_idx = op_index(&req);
    match req {
        Request::Info => {
            let model = state.registry.default_slot().current();
            let resp = Response::Info {
                sessions: state.store.len(),
                num_assets: state.num_assets,
                num_params: model.num_params(),
                window: model.min_history(),
                policies: model.config().num_policies,
                model: String::new(),
            };
            complete_inline(conn, seq, op_idx, started, resp, state);
        }
        Request::InfoAs { model } => {
            // Slot-addressed info: model-specific numbers plus the count
            // of sessions pinned to that slot.
            let resp = match state.resolve_slot(&model) {
                Ok(slot) => {
                    let by_model = state.store.count_by_model();
                    let mut sessions = by_model.get(slot.name.as_str()).copied().unwrap_or(0);
                    if Arc::ptr_eq(state.registry.default_slot(), slot) {
                        sessions += by_model.get("").copied().unwrap_or(0);
                    }
                    let m = slot.current();
                    Response::Info {
                        sessions,
                        num_assets: state.num_assets,
                        num_params: m.num_params(),
                        window: m.min_history(),
                        policies: m.config().num_policies,
                        model: slot.name.clone(),
                    }
                }
                Err(resp) => resp,
            };
            complete_inline(conn, seq, op_idx, started, resp, state);
        }
        Request::Stats => {
            let resp = Response::Stats(Box::new(state.build_stats()));
            complete_inline(conn, seq, op_idx, started, resp, state);
        }
        Request::Reload { checkpoint } => {
            // Loading a checkpoint blocks the reactor briefly; reloads
            // are rare operator actions and the swap must be atomic with
            // respect to request dispatch anyway.
            let resp = state.reload(&checkpoint, "");
            complete_inline(conn, seq, op_idx, started, resp, state);
        }
        Request::ReloadAs { checkpoint, model } => {
            let resp = state.reload(&checkpoint, &model);
            complete_inline(conn, seq, op_idx, started, resp, state);
        }
        Request::Shutdown => {
            begin_drain_flag(state);
            complete_inline(conn, seq, op_idx, started, Response::ShuttingDown, state);
            conn.closing = true;
        }
        Request::Sleep { .. } if !state.cfg.debug_ops => {
            let resp = Response::error(ErrorKind::BadRequest, "sleep requires debug_ops");
            complete_inline(conn, seq, op_idx, started, resp, state);
        }
        queued @ (Request::Open { .. }
        | Request::OpenAs { .. }
        | Request::Decide { .. }
        | Request::DecideAs { .. }
        | Request::Close { .. }
        | Request::Sleep { .. }) => {
            if state.shutdown.load(Ordering::Relaxed) {
                let resp = Response::error(ErrorKind::ShuttingDown, "server is draining");
                complete_inline(conn, seq, op_idx, started, resp, state);
                return;
            }
            let depth = DepthGuard::new(state.queue_depth.clone(), state.queue_gauge.clone());
            let reply = ReplyHandle::new(completions.clone(), conn_id, seq);
            conn.slots.push_back(Slot {
                seq,
                op_idx,
                queued: true,
                started,
                resp: None,
            });
            match tx.try_send(Job {
                req: queued,
                reply,
                enqueued: Instant::now(),
                _depth: depth,
            }) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    // The job came back: cancel its reply handle so the
                    // drop guard does not also answer this slot.
                    job.reply.cancel();
                    let resp = Response::error(
                        ErrorKind::Overloaded,
                        format!(
                            "decision queue full ({} queued); retry later",
                            state.cfg.queue_cap
                        ),
                    );
                    fill_slot(conn, seq, resp, state);
                }
                Err(TrySendError::Disconnected(job)) => {
                    job.reply.cancel();
                    let resp = Response::error(ErrorKind::ShuttingDown, "server is draining");
                    fill_slot(conn, seq, resp, state);
                }
            }
        }
    }
}

/// Claims a slot and completes it immediately (control-plane path).
fn complete_inline(
    conn: &mut Conn,
    seq: u64,
    op_idx: usize,
    started: Instant,
    resp: Response,
    state: &ServerState,
) {
    conn.slots.push_back(Slot {
        seq,
        op_idx,
        queued: false,
        started,
        resp: None,
    });
    fill_slot(conn, seq, resp, state);
}

/// A batcher completion arrived for `seq`.
fn apply_completion(conn: &mut Conn, seq: u64, resp: Response, state: &ServerState) {
    fill_slot(conn, seq, resp, state);
}

/// Records the response into its slot, observes it in the metrics plane
/// and renders every now-ready slot from the front of the queue.
fn fill_slot(conn: &mut Conn, seq: u64, resp: Response, state: &ServerState) {
    let Some(slot) = conn.slots.iter_mut().find(|s| s.seq == seq) else {
        return; // connection was already torn down past this request
    };
    if slot.resp.is_some() {
        return;
    }
    let elapsed = slot.started.elapsed();
    state.observe(slot.op_idx, &resp, elapsed);
    // Queued requests that got a real answer (not a reject on the way
    // in) also feed the aggregate request/latency instruments, matching
    // the blocking backend's accounting.
    let rejected_in_queue = matches!(
        &resp,
        Response::Error { kind, .. }
            if *kind == ErrorKind::Overloaded
                || *kind == ErrorKind::ShuttingDown
                || *kind == ErrorKind::DeadlineExceeded
    );
    if slot.queued && !rejected_in_queue {
        state.latency.record(elapsed.as_secs_f64());
        state.requests.inc();
    }
    slot.resp = Some(resp);
    // Flush ready responses in order.
    while let Some(front) = conn.slots.front() {
        if front.resp.is_none() {
            break;
        }
        let slot = conn.slots.pop_front().expect("front exists");
        let resp = slot.resp.expect("checked above");
        let mut payload = resp.render();
        payload.push('\n');
        conn.wbuf.extend_from_slice(payload.as_bytes());
    }
}

/// Writes as much of the pending buffer as the socket accepts. Injected
/// faults: `serve.sock.write` I/O errors drop the connection; a
/// `serve.sock.partial` fault caps this flush (the remainder stays
/// buffered — exactly what a congested socket does).
fn flush_writes(conn: &mut Conn, state: &ServerState) -> ConnFate {
    if state.cfg.faults.io_error("serve.sock.write").is_some() {
        return ConnFate::Drop;
    }
    let limit = match state.cfg.faults.partial_write("serve.sock.partial") {
        Some(cap) => conn.wbuf.len().min(cap.max(1)),
        None => conn.wbuf.len(),
    };
    let mut written = 0;
    while written < limit {
        match conn.stream.write(&conn.wbuf[written..limit]) {
            Ok(0) => break,
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ConnFate::Drop,
        }
    }
    if written > 0 {
        conn.wbuf.drain(..written);
    }
    ConnFate::Keep
}
