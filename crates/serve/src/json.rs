//! A minimal JSON reader/writer for the wire protocol.
//!
//! The build environment resolves crates offline, so `serde_json` is not
//! available; this module implements the subset the line protocol needs:
//! objects, arrays, strings (with standard escapes), IEEE-754 doubles,
//! booleans and null. Numbers are rendered with Rust's shortest
//! round-trip `f64` formatting, so portfolio weights survive a
//! serialize → parse cycle **bitwise** — the property the round-trip
//! integration test relies on.
//!
//! ```
//! use cit_serve::json::Json;
//!
//! let v = Json::parse(r#"{"op":"decide","weights":[0.25,0.75]}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("decide"));
//! let w: Vec<f64> = v.get("weights").unwrap().as_f64_array().unwrap();
//! assert_eq!(w, vec![0.25, 0.75]);
//! assert_eq!(Json::from(w).render(), "[0.25,0.75]");
//! ```

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as an `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs (no deduplication —
    /// the protocol never repeats keys).
    Obj(Vec<(String, Json)>),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of numbers as a `Vec<f64>` (`None` if any element is not
    /// a number).
    pub fn as_f64_array(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(Json::as_f64).collect()
    }

    /// A nested array of numbers (`[[...], ...]`) as rows of `f64`.
    pub fn as_f64_matrix(&self) -> Option<Vec<Vec<f64>>> {
        self.as_array()?.iter().map(Json::as_f64_array).collect()
    }

    /// Renders the value as compact JSON (no whitespace).
    ///
    /// Numbers use Rust's shortest round-trip formatting; non-finite
    /// numbers (which the protocol never produces) render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are not needed by this protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_f64_bitwise() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            123_456_789.123_456_79,
        ] {
            let rendered = Json::Num(v).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} via {rendered}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#).unwrap();
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x\ny"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_usize(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "12x", "[1] extra", ""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn renders_escapes() {
        let v = Json::Str("a\"b\\c\nd".into());
        assert_eq!(v.render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn matrix_accessor() {
        let v = Json::parse("[[1,2],[3,4]]").unwrap();
        assert_eq!(
            v.as_f64_matrix().unwrap(),
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        );
        assert!(Json::parse("[[1,\"x\"]]")
            .unwrap()
            .as_f64_matrix()
            .is_none());
    }
}
