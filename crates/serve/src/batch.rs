//! The micro-batching core.
//!
//! The reactor enqueues jobs into a bounded channel; a single batcher
//! thread drains up to [`crate::ServeConfig::max_batch`] jobs (or
//! whatever arrives within [`crate::ServeConfig::max_wait_us`] after the
//! first), snapshots the active model once, and runs the batch's
//! decisions through the `cit-compute` thread pool — one task per
//! session, so requests for different sessions run in parallel while
//! requests for the same session keep their arrival order. A full
//! channel is the backpressure signal: the reactor never blocks, it
//! replies `overloaded` immediately. Results travel back to the reactor
//! through the [`crate::reactor::Completions`] queue + self-pipe wake.

use crate::protocol::{ErrorKind, Request, Response};
use crate::reactor::Completions;
use crate::server::ServerState;
use crate::session::Session;
use cit_compute::parallel_map;
use cit_telemetry::Gauge;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// RAII occupancy of the batcher queue: construction increments the
/// shared depth (and mirrors it into the `serve.queue_depth` gauge),
/// drop decrements. Owned by [`Job`], so *every* way a job exits the
/// queue — answered, rejected on a full channel (`try_send` hands the
/// job back), drained at shutdown, or unwound past by a panicking
/// handler — restores the gauge. A burst of `overloaded` rejects must
/// leave the depth at zero.
pub(crate) struct DepthGuard {
    depth: Arc<AtomicI64>,
    gauge: Gauge,
}

impl DepthGuard {
    pub(crate) fn new(depth: Arc<AtomicI64>, gauge: Gauge) -> DepthGuard {
        let now = depth.fetch_add(1, Ordering::AcqRel) + 1;
        gauge.set(now.max(0) as f64);
        DepthGuard { depth, gauge }
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        let now = self.depth.fetch_sub(1, Ordering::AcqRel) - 1;
        self.gauge.set(now.max(0) as f64);
    }
}

/// The reply path of one queued request: routes the response to its
/// `(connection, sequence)` slot via the completion queue. Dropping an
/// unanswered handle (batcher panic, drain that abandons work) answers
/// the slot with a typed `shutting_down` error, so a client waiting on a
/// response can never hang on a lost job.
pub(crate) struct ReplyHandle {
    completions: Arc<Completions>,
    conn: u64,
    seq: u64,
    sent: bool,
}

impl ReplyHandle {
    pub(crate) fn new(completions: Arc<Completions>, conn: u64, seq: u64) -> ReplyHandle {
        ReplyHandle {
            completions,
            conn,
            seq,
            sent: false,
        }
    }

    pub(crate) fn send(mut self, resp: Response) {
        self.sent = true;
        self.completions.push(self.conn, self.seq, resp);
    }

    /// Disarms the drop guard: used when `try_send` hands the job back
    /// and the reactor answers the slot itself (reject path).
    pub(crate) fn cancel(mut self) {
        self.sent = true;
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if !self.sent {
            self.completions.push(
                self.conn,
                self.seq,
                Response::error(ErrorKind::ShuttingDown, "server is draining"),
            );
        }
    }
}

/// One queued request plus its reply path back to the reactor.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) reply: ReplyHandle,
    /// When the reactor enqueued the job — the clock
    /// [`crate::ServeConfig::request_deadline`] shedding runs against.
    pub(crate) enqueued: Instant,
    /// Queue-depth occupancy, held only for its drop.
    pub(crate) _depth: DepthGuard,
}

impl Job {
    fn respond(self, resp: Response) {
        self.reply.send(resp);
    }
}

/// The batcher loop: runs until the channel disconnects (the reactor and
/// the server handle dropped their senders), draining every remaining
/// job first — graceful shutdown never abandons queued work.
pub(crate) fn run_batcher(rx: Receiver<Job>, state: &ServerState) {
    let max_wait = Duration::from_micros(state.cfg.max_wait_us);
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + max_wait;
        while batch.len() < state.cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        process_batch(state, batch);
    }
}

/// Checks a session out of the store, transparently restoring it from
/// the spill directory when it was idle-evicted (or left behind by a
/// previous server process) — the spill file's model pin picks the slot
/// it restores against. `Err` carries the client-facing response for a
/// genuinely unknown or unrestorable session (including one pinned to a
/// slot this server does not host: its state is intact on disk but
/// unusable here, which the client sees as `session_lost`).
fn checkout(state: &ServerState, name: &str) -> Result<Session, Response> {
    if let Some(session) = state.store.take(name) {
        return Ok(session);
    }
    if let Some(spill) = &state.spill {
        match spill.take(name, &state.spill_resolver()) {
            Ok(Some(session)) => {
                state.note_restored(1);
                return Ok(session);
            }
            Ok(None) => {}
            Err(failure) => {
                // The spilled copy is unusable: damaged bytes are already
                // quarantined as `*.corrupt` (never deleted — the file is
                // evidence), and the client gets the one error kind that
                // means "this session's state is gone, reopen it".
                if failure.quarantined {
                    state.note_quarantined(1);
                    state.telemetry.emit(
                        cit_telemetry::Record::new("serve.spill_quarantined").with("session", name),
                    );
                }
                return Err(Response::error(
                    ErrorKind::SessionLost,
                    format!(
                        "session {name:?} could not be restored: {}",
                        failure.message
                    ),
                ));
            }
        }
    }
    Err(Response::error(
        ErrorKind::UnknownSession,
        format!("no session {name:?}"),
    ))
}

/// Handles one `open`: resolves the requested model slot (`""` =
/// default, `"auto"` = ask the meta-router, anything else must name a
/// hosted slot), builds the session pinned to it, and answers the job.
/// The router runs on the raw open history *before* validation —
/// `regime_features` is total, degenerate input routes to the default
/// slot and then fails validation with a proper typed error.
fn open_session(
    state: &ServerState,
    session: &str,
    model_req: &str,
    prices: &[Vec<f64>],
    job: Job,
) {
    let slot = if model_req == crate::registry::AUTO_MODEL {
        let features = cit_core::regime_features(
            prices,
            state.num_assets,
            state.model_cfg.window,
            state.model_cfg.num_policies,
        );
        let pick = state.router.route(&features, state.registry.len());
        state.registry.by_index(pick)
    } else {
        match state.resolve_slot(model_req) {
            Ok(slot) => slot,
            Err(resp) => {
                job.respond(resp);
                return;
            }
        }
    };
    // The pin (and the `model` echo) is empty for model-oblivious opens,
    // which keeps their response bytes identical to single-model serving.
    let pin = if model_req.is_empty() {
        String::new()
    } else {
        slot.name.clone()
    };
    // A spilled session is still alive (just cold), so its id is taken —
    // mirrors the in-store duplicate check.
    let spilled = state
        .spill
        .as_ref()
        .is_some_and(|spill| spill.contains(session));
    let resp = if spilled {
        Response::error(
            ErrorKind::SessionExists,
            format!("session {session:?} already exists (spilled to disk)"),
        )
    } else {
        let model = slot.current();
        match Session::open(&model, session, &pin, prices, state.cfg.max_history) {
            Ok(s) => {
                let days = s.days();
                match state.store.insert(s) {
                    Ok(()) => Response::Opened {
                        session: session.to_string(),
                        days,
                        model: pin,
                    },
                    Err(e) => e,
                }
            }
            Err(e) => e,
        }
    };
    slot.requests.inc();
    slot.requests_window.inc();
    if matches!(resp, Response::Error { .. }) {
        slot.errors.inc();
    }
    job.respond(resp);
}

/// Executes one batch: opens first (so a same-batch decide can see the
/// session), then all decides grouped by session, then closes, then any
/// debug stalls.
pub(crate) fn process_batch(state: &ServerState, mut batch: Vec<Job>) {
    // Injected batch stall (`serve.batch.complete`): sleeps *before* the
    // deadline check, so a delayed batch sheds its own now-stale jobs —
    // the combination chaos tests exercise.
    if let Some(d) = state.cfg.faults.delay_at("serve.batch.complete") {
        std::thread::sleep(d);
    }
    // Deadline shedding: a job that already overstayed its budget in the
    // queue is answered with a typed retryable reject instead of being
    // computed. Shedding happens before any session state is touched, so
    // a shed request is always safe to retry.
    if let Some(deadline) = state.cfg.request_deadline {
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if now.duration_since(job.enqueued) > deadline {
                job.respond(Response::error(
                    ErrorKind::DeadlineExceeded,
                    format!("request waited past its {deadline:?} deadline"),
                ));
            } else {
                live.push(job);
            }
        }
        batch = live;
        if batch.is_empty() {
            return;
        }
    }
    state.batch_size.record(batch.len() as f64);

    // Decide jobs grouped by session name, first-seen order preserved.
    // Each job carries the model the client *expects* the session to be
    // pinned to (`None` for model-oblivious decides).
    type DecideGroup = (String, Vec<(Vec<Vec<f64>>, Option<String>, Job)>);
    let mut decide_groups: Vec<DecideGroup> = Vec::new();
    let mut closes = Vec::new();
    let mut sleeps = Vec::new();
    let mut push_decide = |session: String, prices, expected, job| match decide_groups
        .iter_mut()
        .find(|(name, _)| *name == session)
    {
        Some((_, jobs)) => jobs.push((prices, expected, job)),
        None => decide_groups.push((session, vec![(prices, expected, job)])),
    };
    for job in batch {
        match job.req.clone() {
            Request::Open { session, prices } => {
                open_session(state, &session, "", &prices, job);
            }
            Request::OpenAs {
                session,
                prices,
                model,
            } => {
                open_session(state, &session, &model, &prices, job);
            }
            Request::Decide { session, prices } => push_decide(session, prices, None, job),
            Request::DecideAs {
                session,
                prices,
                model,
            } => push_decide(session, prices, Some(model), job),
            Request::Close { session } => closes.push((session, job)),
            Request::Sleep { ms } => sleeps.push((ms, job)),
            // Info/Stats/Reload/Shutdown are handled on the reactor and
            // never enqueued.
            _ => job.respond(Response::error(
                ErrorKind::BadRequest,
                "operation cannot be queued",
            )),
        }
    }

    // Check out each group's session, fan the groups out over the compute
    // pool, and reply in arrival order within each group. The session is
    // checked back in *before* any reply is sent, so a client holding a
    // response can never observe its own session missing from the store.
    let tasks: Vec<_> = decide_groups
        .into_iter()
        .map(|(name, jobs)| {
            move || {
                let mut session = match checkout(state, &name) {
                    Ok(s) => s,
                    Err(resp) => {
                        for (_, _, job) in jobs {
                            job.respond(resp.clone());
                        }
                        return;
                    }
                };
                // The session's pin picks the model; the roster is fixed
                // at startup, so a resident (or just-restored) session's
                // pin always resolves.
                let slot = state
                    .registry
                    .get(session.model_name())
                    .expect("resident session pinned to unhosted slot")
                    .clone();
                let model = slot.current();
                let replies: Vec<(Job, Response)> = jobs
                    .into_iter()
                    .map(|(prices, expected, job)| {
                        // An explicit model on decide is a client-side
                        // guard: verify it names the session's slot.
                        if let Some(expected) = expected {
                            match state.resolve_slot(&expected) {
                                Ok(want) if Arc::ptr_eq(want, &slot) => {}
                                Ok(_) => {
                                    let resp = Response::error(
                                        ErrorKind::BadRequest,
                                        format!(
                                            "session {name:?} is pinned to model {:?}, \
                                             not {expected:?}",
                                            slot.name
                                        ),
                                    );
                                    return (job, resp);
                                }
                                Err(resp) => return (job, resp),
                            }
                        }
                        let resp = match session.decide(&model, &prices) {
                            Ok(r) => r,
                            Err(e) => e,
                        };
                        (job, resp)
                    })
                    .collect();
                state.store.put_back(session);
                for (job, resp) in replies {
                    slot.requests.inc();
                    slot.requests_window.inc();
                    if matches!(resp, Response::Error { .. }) {
                        slot.errors.inc();
                    }
                    job.respond(resp);
                }
            }
        })
        .collect();
    parallel_map(state.threads, tasks);

    for (name, job) in closes {
        // Resident sessions drop from the store; spilled sessions drop
        // from disk. Either counts as a successful close.
        let resident = state.store.take(&name).is_some();
        let spilled = !resident
            && state
                .spill
                .as_ref()
                .is_some_and(|spill| spill.remove(&name));
        let resp = if resident || spilled {
            Response::Closed { session: name }
        } else {
            Response::error(ErrorKind::UnknownSession, format!("no session {name:?}"))
        };
        job.respond(resp);
    }
    state.sessions_gauge.set(state.store.len() as f64);

    for (ms, job) in sleeps {
        std::thread::sleep(Duration::from_millis(ms));
        job.respond(Response::Slept { ms });
    }
}
