//! The newline-delimited JSON line protocol.
//!
//! One request per line, one response per line, UTF-8. Every request is a
//! JSON object with an `"op"` field; every response carries `"ok"`
//! (`true`/`false`) and echoes the operation. Prices travel as
//! `[days][m·4]` matrices: one row per trading day, each row the
//! `m` assets' OHLC quadruples in asset order — the exact memory layout
//! of [`cit_market::AssetPanel`].
//!
//! | op | request fields | success fields |
//! |----|----------------|----------------|
//! | `open` | `session`, `prices` | `days` |
//! | `decide` | `session`, optional `prices` | `day`, `final_action`, `pre_actions` |
//! | `close` | `session` | — |
//! | `info` | — | `sessions`, `num_assets`, `num_params`, `window`, `policies` |
//! | `reload` | `checkpoint` | `num_params` |
//! | `shutdown` | — | — |
//! | `sleep` | `ms` (debug builds of the server only) | `ms` |
//!
//! Failures: `{"ok":false,"kind":"<kind>","error":"<message>"}` with
//! [`ErrorKind`] naming the reject class (`overloaded` is the
//! backpressure signal).

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a session seeded with at least `window` days of history.
    Open {
        /// Client-chosen session id.
        session: String,
        /// Price history, one `[m·4]` OHLC row per day.
        prices: Vec<Vec<f64>>,
    },
    /// Append zero or more days, then decide on the latest day.
    Decide {
        /// Session id from a prior `open`.
        session: String,
        /// New days to append before deciding (may be empty).
        prices: Vec<Vec<f64>>,
    },
    /// Drop a session.
    Close {
        /// Session id to drop.
        session: String,
    },
    /// Server/model introspection.
    Info,
    /// Atomically swap in a new checkpoint (same architecture).
    Reload {
        /// Path to a cit-params checkpoint on the server's filesystem.
        checkpoint: String,
    },
    /// Begin graceful drain: stop accepting, finish queued work.
    Shutdown,
    /// Debug: stall the batcher (only honoured with
    /// [`crate::ServeConfig::debug_ops`]).
    Sleep {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// Reject classes a client can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or missing/invalid fields.
    BadRequest,
    /// The bounded decision queue is full — retry later (backpressure).
    Overloaded,
    /// `decide`/`close` for a session that does not exist.
    UnknownSession,
    /// `open` for a session id already in use.
    SessionExists,
    /// Checkpoint reload failed (file missing / architecture mismatch);
    /// the previous model stays active.
    ReloadFailed,
    /// The server is draining and no longer takes new work.
    ShuttingDown,
    /// Invalid price data (wrong row width, non-positive, non-finite).
    BadData,
}

impl ErrorKind {
    /// The wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::ReloadFailed => "reload_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::BadData => "bad_data",
        }
    }

    /// Parses a wire tag back into a kind (client side).
    pub fn from_tag(tag: &str) -> Option<ErrorKind> {
        Some(match tag {
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "unknown_session" => ErrorKind::UnknownSession,
            "session_exists" => ErrorKind::SessionExists,
            "reload_failed" => ErrorKind::ReloadFailed,
            "shutting_down" => ErrorKind::ShuttingDown,
            "bad_data" => ErrorKind::BadData,
            _ => return None,
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session created.
    Opened {
        /// Echoed session id.
        session: String,
        /// Days of history the session now holds.
        days: usize,
    },
    /// A portfolio decision.
    Decision {
        /// Echoed session id.
        session: String,
        /// Absolute day index (days pushed since `open`, minus one).
        day: usize,
        /// The fused portfolio weights to execute (sums to 1).
        final_action: Vec<f64>,
        /// Per-horizon pre-decisions (fed back as the policies' previous
        /// actions on the next decide).
        pre_actions: Vec<Vec<f64>>,
    },
    /// Session dropped.
    Closed {
        /// Echoed session id.
        session: String,
    },
    /// Introspection payload.
    Info {
        /// Live session count.
        sessions: usize,
        /// Assets `m` the model allocates over.
        num_assets: usize,
        /// Parameters in the active model.
        num_params: usize,
        /// Look-back window `z` (days of history `open` must provide).
        window: usize,
        /// Horizon policy count `n`.
        policies: usize,
    },
    /// Checkpoint swapped in.
    Reloaded {
        /// Parameters in the new model.
        num_params: usize,
    },
    /// Drain started.
    ShuttingDown,
    /// Debug stall finished.
    Slept {
        /// Echoed stall duration.
        ms: u64,
    },
    /// Any failure.
    Error {
        /// Reject class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for failures.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
        }
    }

    /// Renders one response line (no trailing newline).
    pub fn render(&self) -> String {
        let json = match self {
            Response::Opened { session, days } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "open".into()),
                ("session", session.clone().into()),
                ("days", (*days).into()),
            ]),
            Response::Decision {
                session,
                day,
                final_action,
                pre_actions,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "decide".into()),
                ("session", session.clone().into()),
                ("day", (*day).into()),
                ("final_action", final_action.clone().into()),
                (
                    "pre_actions",
                    Json::Arr(pre_actions.iter().map(|a| a.clone().into()).collect()),
                ),
            ]),
            Response::Closed { session } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "close".into()),
                ("session", session.clone().into()),
            ]),
            Response::Info {
                sessions,
                num_assets,
                num_params,
                window,
                policies,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "info".into()),
                ("sessions", (*sessions).into()),
                ("num_assets", (*num_assets).into()),
                ("num_params", (*num_params).into()),
                ("window", (*window).into()),
                ("policies", (*policies).into()),
            ]),
            Response::Reloaded { num_params } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "reload".into()),
                ("num_params", (*num_params).into()),
            ]),
            Response::ShuttingDown => {
                Json::obj(vec![("ok", Json::Bool(true)), ("op", "shutdown".into())])
            }
            Response::Slept { ms } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "sleep".into()),
                ("ms", (*ms as usize).into()),
            ]),
            Response::Error { kind, message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", kind.tag().into()),
                ("error", message.as_str().into()),
            ]),
        };
        json.render()
    }
}

impl Request {
    /// Renders one request line (no trailing newline) — the client side
    /// of [`Request::parse`].
    pub fn render(&self) -> String {
        fn matrix(rows: &[Vec<f64>]) -> Json {
            Json::Arr(rows.iter().map(|r| r.clone().into()).collect())
        }
        let json = match self {
            Request::Open { session, prices } => Json::obj(vec![
                ("op", "open".into()),
                ("session", session.clone().into()),
                ("prices", matrix(prices)),
            ]),
            Request::Decide { session, prices } => {
                let mut pairs = vec![
                    ("op", Json::from("decide")),
                    ("session", session.clone().into()),
                ];
                if !prices.is_empty() {
                    pairs.push(("prices", matrix(prices)));
                }
                Json::obj(pairs)
            }
            Request::Close { session } => Json::obj(vec![
                ("op", "close".into()),
                ("session", session.clone().into()),
            ]),
            Request::Info => Json::obj(vec![("op", "info".into())]),
            Request::Reload { checkpoint } => Json::obj(vec![
                ("op", "reload".into()),
                ("checkpoint", checkpoint.clone().into()),
            ]),
            Request::Shutdown => Json::obj(vec![("op", "shutdown".into())]),
            Request::Sleep { ms } => {
                Json::obj(vec![("op", "sleep".into()), ("ms", (*ms as usize).into())])
            }
        };
        json.render()
    }

    /// Parses one request line. Errors are client-facing messages.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field \"op\"")?;
        let session = |required: bool| -> Result<String, String> {
            match v.get("session").and_then(Json::as_str) {
                Some(s) if !s.is_empty() => Ok(s.to_string()),
                _ if !required => Ok(String::new()),
                _ => Err("missing string field \"session\"".into()),
            }
        };
        let prices = |required: bool| -> Result<Vec<Vec<f64>>, String> {
            match v.get("prices") {
                Some(p) => p
                    .as_f64_matrix()
                    .ok_or_else(|| "\"prices\" must be an array of number rows".to_string()),
                None if !required => Ok(Vec::new()),
                None => Err("missing field \"prices\"".into()),
            }
        };
        match op {
            "open" => Ok(Request::Open {
                session: session(true)?,
                prices: prices(true)?,
            }),
            "decide" => Ok(Request::Decide {
                session: session(true)?,
                prices: prices(false)?,
            }),
            "close" => Ok(Request::Close {
                session: session(true)?,
            }),
            "info" => Ok(Request::Info),
            "reload" => Ok(Request::Reload {
                checkpoint: v
                    .get("checkpoint")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"checkpoint\"")?
                    .to_string(),
            }),
            "shutdown" => Ok(Request::Shutdown),
            "sleep" => Ok(Request::Sleep {
                ms: v
                    .get("ms")
                    .and_then(Json::as_usize)
                    .ok_or("missing integer field \"ms\"")? as u64,
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        assert_eq!(
            Request::parse(r#"{"op":"open","session":"s","prices":[[1,2,3,4]]}"#).unwrap(),
            Request::Open {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"decide","session":"s"}"#).unwrap(),
            Request::Decide {
                session: "s".into(),
                prices: vec![],
            }
        );
        assert_eq!(Request::parse(r#"{"op":"info"}"#).unwrap(), Request::Info);
        assert_eq!(
            Request::parse(r#"{"op":"reload","checkpoint":"/tmp/x.cit"}"#).unwrap(),
            Request::Reload {
                checkpoint: "/tmp/x.cit".into(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"sleep","ms":250}"#).unwrap(),
            Request::Sleep { ms: 250 }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"open","session":"s"}"#,
            r#"{"op":"open","session":"s","prices":[["x"]]}"#,
            r#"{"op":"decide"}"#,
            r#"{"op":"warp"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn requests_round_trip_through_render() {
        let reqs = [
            Request::Open {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
            },
            Request::Decide {
                session: "s".into(),
                prices: vec![],
            },
            Request::Decide {
                session: "s".into(),
                prices: vec![vec![0.5; 4]],
            },
            Request::Close {
                session: "s".into(),
            },
            Request::Info,
            Request::Reload {
                checkpoint: "a b/c.cit".into(),
            },
            Request::Shutdown,
            Request::Sleep { ms: 10 },
        ];
        for req in reqs {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
    }

    #[test]
    fn error_kinds_round_trip_their_tags() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::UnknownSession,
            ErrorKind::SessionExists,
            ErrorKind::ReloadFailed,
            ErrorKind::ShuttingDown,
            ErrorKind::BadData,
        ] {
            assert_eq!(ErrorKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ErrorKind::from_tag("nope"), None);
    }

    #[test]
    fn decision_response_renders_weights_bitwise() {
        let w = vec![1.0 / 3.0, 2.0 / 3.0];
        let r = Response::Decision {
            session: "s".into(),
            day: 41,
            final_action: w.clone(),
            pre_actions: vec![w.clone()],
        };
        let line = r.render();
        let v = crate::json::Json::parse(&line).unwrap();
        let back = v.get("final_action").unwrap().as_f64_array().unwrap();
        assert_eq!(back[0].to_bits(), w[0].to_bits());
        assert_eq!(back[1].to_bits(), w[1].to_bits());
    }
}
