//! The newline-delimited JSON line protocol.
//!
//! One request per line, one response per line, UTF-8. Every request is a
//! JSON object with an `"op"` field; every response carries `"ok"`
//! (`true`/`false`) and echoes the operation. Prices travel as
//! `[days][m·4]` matrices: one row per trading day, each row the
//! `m` assets' OHLC quadruples in asset order — the exact memory layout
//! of [`cit_market::AssetPanel`].
//!
//! | op | request fields | success fields |
//! |----|----------------|----------------|
//! | `open` | `session`, `prices` | `days` |
//! | `decide` | `session`, optional `prices` | `day`, `final_action`, `pre_actions` |
//! | `close` | `session` | — |
//! | `info` | — | `sessions`, `num_assets`, `num_params`, `window`, `policies` |
//! | `stats` | — | live operational metrics (see [`ServerStats`]) |
//! | `reload` | `checkpoint` | `num_params` |
//! | `shutdown` | — | — |
//! | `sleep` | `ms` (debug builds of the server only) | `ms` |
//!
//! Failures: `{"ok":false,"kind":"<kind>","error":"<message>"}` with
//! [`ErrorKind`] naming the reject class. `overloaded` is the
//! backpressure signal and `deadline_exceeded` the load-shedding one —
//! both guarantee the request touched no session state, so retrying
//! (with backoff, see [`crate::RetryPolicy`]) is always safe;
//! `session_lost` means the session's spilled state was corrupt on disk
//! and has been quarantined.

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a session seeded with at least `window` days of history.
    Open {
        /// Client-chosen session id.
        session: String,
        /// Price history, one `[m·4]` OHLC row per day.
        prices: Vec<Vec<f64>>,
    },
    /// Append zero or more days, then decide on the latest day.
    Decide {
        /// Session id from a prior `open`.
        session: String,
        /// New days to append before deciding (may be empty).
        prices: Vec<Vec<f64>>,
    },
    /// Drop a session.
    Close {
        /// Session id to drop.
        session: String,
    },
    /// Server/model introspection.
    Info,
    /// Live operational metrics (req/s, latency windows, queue depth).
    Stats,
    /// Atomically swap in a new checkpoint (same architecture).
    Reload {
        /// Path to a cit-params checkpoint on the server's filesystem.
        checkpoint: String,
    },
    /// Begin graceful drain: stop accepting, finish queued work.
    Shutdown,
    /// Debug: stall the batcher (only honoured with
    /// [`crate::ServeConfig::debug_ops`]).
    Sleep {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// Reject classes a client can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or missing/invalid fields.
    BadRequest,
    /// The bounded decision queue is full — retry later (backpressure).
    Overloaded,
    /// `decide`/`close` for a session that does not exist.
    UnknownSession,
    /// `open` for a session id already in use.
    SessionExists,
    /// Checkpoint reload failed (file missing / architecture mismatch);
    /// the previous model stays active.
    ReloadFailed,
    /// The server is draining and no longer takes new work.
    ShuttingDown,
    /// Invalid price data (wrong row width, non-positive, non-finite).
    BadData,
    /// The session's spilled state was corrupt or truncated on disk; the
    /// file has been quarantined (`*.corrupt`) and the session is gone.
    /// Re-`open` with fresh history to continue.
    SessionLost,
    /// The request sat in the batcher queue past
    /// [`crate::ServeConfig::request_deadline`] and was shed instead of
    /// being answered stale — retry, like `overloaded`.
    DeadlineExceeded,
}

impl ErrorKind {
    /// Number of reject classes — the length every per-kind stats table
    /// must have.
    pub const COUNT: usize = 9;

    /// The kind's position in [`ErrorKind::ALL`] (and in the server's
    /// per-kind error counters). The match is exhaustive on purpose:
    /// adding a kind without extending [`ErrorKind::ALL`] (and `COUNT`)
    /// fails to compile via the const assertions below.
    pub const fn index(self) -> usize {
        match self {
            ErrorKind::BadRequest => 0,
            ErrorKind::Overloaded => 1,
            ErrorKind::UnknownSession => 2,
            ErrorKind::SessionExists => 3,
            ErrorKind::ReloadFailed => 4,
            ErrorKind::ShuttingDown => 5,
            ErrorKind::BadData => 6,
            ErrorKind::SessionLost => 7,
            ErrorKind::DeadlineExceeded => 8,
        }
    }

    /// Every reject class, in wire-tag order — the index basis for the
    /// server's per-kind error counters.
    pub const ALL: [ErrorKind; Self::COUNT] = [
        ErrorKind::BadRequest,
        ErrorKind::Overloaded,
        ErrorKind::UnknownSession,
        ErrorKind::SessionExists,
        ErrorKind::ReloadFailed,
        ErrorKind::ShuttingDown,
        ErrorKind::BadData,
        ErrorKind::SessionLost,
        ErrorKind::DeadlineExceeded,
    ];

    /// The wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::ReloadFailed => "reload_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::BadData => "bad_data",
            ErrorKind::SessionLost => "session_lost",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// Parses a wire tag back into a kind (client side).
    pub fn from_tag(tag: &str) -> Option<ErrorKind> {
        Some(match tag {
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "unknown_session" => ErrorKind::UnknownSession,
            "session_exists" => ErrorKind::SessionExists,
            "reload_failed" => ErrorKind::ReloadFailed,
            "shutting_down" => ErrorKind::ShuttingDown,
            "bad_data" => ErrorKind::BadData,
            "session_lost" => ErrorKind::SessionLost,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            _ => return None,
        })
    }

    /// A reject the server answers **before** touching any session state
    /// (`overloaded` is refused at the queue, `deadline_exceeded` is shed
    /// before compute), so retrying the identical request is always safe.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded | ErrorKind::DeadlineExceeded)
    }
}

// Compile-time sync between `index()` (an exhaustive match — the thing
// that actually breaks when a kind is added) and the `ALL` table every
// stats/counter array is sized from.
const _: () = {
    let mut i = 0;
    while i < ErrorKind::COUNT {
        assert!(
            ErrorKind::ALL[i].index() == i,
            "ErrorKind::ALL out of sync with ErrorKind::index()"
        );
        i += 1;
    }
};

/// One trailing window's server-side traffic digest inside
/// [`ServerStats`]: request rate and latency quantiles over the last
/// `secs` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window length in seconds.
    pub secs: u64,
    /// Requests answered inside the window.
    pub requests: u64,
    /// Requests per second over the window (`0.0` when idle).
    pub req_per_s: f64,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
}

/// One operation's cumulative breakdown inside [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Operation name (`open`, `decide`, `close`, `info`, `stats`,
    /// `reload`, `sleep`, or `other` for unparseable requests).
    pub op: String,
    /// Requests of this op since start.
    pub requests: u64,
    /// Error responses of this op since start.
    pub errors: u64,
    /// Median latency of this op in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency of this op in microseconds.
    pub p99_us: f64,
}

/// The payload of a successful `stats` op: everything an operator (or
/// `cit-top`) needs to judge a live server at a glance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Live session count (resident in memory; spilled sessions are not
    /// counted until restored).
    pub sessions: usize,
    /// Open client connections on the reactor.
    pub connections: usize,
    /// Sessions idle-evicted to disk (or spilled at shutdown) since start.
    pub sessions_evicted: u64,
    /// Sessions transparently restored from disk spill since start.
    pub sessions_restored: u64,
    /// Spill files found corrupt or truncated and quarantined
    /// (`*.corrupt`) since start — at startup recovery scan or on a
    /// failed restore.
    pub sessions_quarantined: u64,
    /// Requests currently queued for the batcher.
    pub queue_depth: usize,
    /// The bounded queue's capacity (`overloaded` rejects past this).
    pub queue_cap: usize,
    /// Identity of the loaded checkpoint (path of the last successful
    /// reload, or the label the server started with).
    pub checkpoint: String,
    /// Successful checkpoint reloads since start.
    pub reloads: u64,
    /// Requests answered since start (every op, success or error).
    pub requests_total: u64,
    /// Error responses since start.
    pub errors_total: u64,
    /// Mean batch size since start (`0.0` before the first batch).
    pub batch_mean: f64,
    /// Trailing-window digests (10 s and 60 s).
    pub windows: Vec<WindowStats>,
    /// Per-op cumulative breakdown (ops seen at least once).
    pub ops: Vec<OpStats>,
    /// Error counts by reject class (kinds seen at least once), as
    /// `(kind tag, count)` pairs.
    pub errors: Vec<(String, u64)>,
}

impl ServerStats {
    /// Reconstructs stats from a parsed `stats` response line — the
    /// client side of [`Response::render`]. Returns `None` when the JSON
    /// is not a stats payload.
    pub fn from_json(v: &Json) -> Option<ServerStats> {
        if v.get("op").and_then(Json::as_str) != Some("stats") {
            return None;
        }
        let windows = v
            .get("windows")?
            .as_array()?
            .iter()
            .map(|w| {
                Some(WindowStats {
                    secs: w.get("secs")?.as_usize()? as u64,
                    requests: w.get("requests")?.as_usize()? as u64,
                    req_per_s: w.get("req_per_s")?.as_f64()?,
                    p50_us: w.get("p50_us")?.as_f64()?,
                    p95_us: w.get("p95_us")?.as_f64()?,
                    p99_us: w.get("p99_us")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let ops = v
            .get("ops")?
            .as_array()?
            .iter()
            .map(|o| {
                Some(OpStats {
                    op: o.get("op")?.as_str()?.to_string(),
                    requests: o.get("requests")?.as_usize()? as u64,
                    errors: o.get("errors")?.as_usize()? as u64,
                    p50_us: o.get("p50_us")?.as_f64()?,
                    p99_us: o.get("p99_us")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let errors = v
            .get("errors")?
            .as_array()?
            .iter()
            .map(|e| {
                Some((
                    e.get("kind")?.as_str()?.to_string(),
                    e.get("count")?.as_usize()? as u64,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ServerStats {
            uptime_s: v.get("uptime_s")?.as_f64()?,
            sessions: v.get("sessions")?.as_usize()?,
            connections: v.get("connections")?.as_usize()?,
            sessions_evicted: v.get("sessions_evicted")?.as_usize()? as u64,
            sessions_restored: v.get("sessions_restored")?.as_usize()? as u64,
            sessions_quarantined: v.get("sessions_quarantined")?.as_usize()? as u64,
            queue_depth: v.get("queue_depth")?.as_usize()?,
            queue_cap: v.get("queue_cap")?.as_usize()?,
            checkpoint: v.get("checkpoint")?.as_str()?.to_string(),
            reloads: v.get("reloads")?.as_usize()? as u64,
            requests_total: v.get("requests_total")?.as_usize()? as u64,
            errors_total: v.get("errors_total")?.as_usize()? as u64,
            batch_mean: v.get("batch_mean")?.as_f64()?,
            windows,
            ops,
            errors,
        })
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", "stats".into()),
            ("uptime_s", self.uptime_s.into()),
            ("sessions", self.sessions.into()),
            ("connections", self.connections.into()),
            ("sessions_evicted", (self.sessions_evicted as usize).into()),
            (
                "sessions_restored",
                (self.sessions_restored as usize).into(),
            ),
            (
                "sessions_quarantined",
                (self.sessions_quarantined as usize).into(),
            ),
            ("queue_depth", self.queue_depth.into()),
            ("queue_cap", self.queue_cap.into()),
            ("checkpoint", self.checkpoint.clone().into()),
            ("reloads", (self.reloads as usize).into()),
            ("requests_total", (self.requests_total as usize).into()),
            ("errors_total", (self.errors_total as usize).into()),
            ("batch_mean", self.batch_mean.into()),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("secs", (w.secs as usize).into()),
                                ("requests", (w.requests as usize).into()),
                                ("req_per_s", w.req_per_s.into()),
                                ("p50_us", w.p50_us.into()),
                                ("p95_us", w.p95_us.into()),
                                ("p99_us", w.p99_us.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ops",
                Json::Arr(
                    self.ops
                        .iter()
                        .map(|o| {
                            Json::obj(vec![
                                ("op", o.op.clone().into()),
                                ("requests", (o.requests as usize).into()),
                                ("errors", (o.errors as usize).into()),
                                ("p50_us", o.p50_us.into()),
                                ("p99_us", o.p99_us.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "errors",
                Json::Arr(
                    self.errors
                        .iter()
                        .map(|(kind, count)| {
                            Json::obj(vec![
                                ("kind", kind.clone().into()),
                                ("count", (*count as usize).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session created.
    Opened {
        /// Echoed session id.
        session: String,
        /// Days of history the session now holds.
        days: usize,
    },
    /// A portfolio decision.
    Decision {
        /// Echoed session id.
        session: String,
        /// Absolute day index (days pushed since `open`, minus one).
        day: usize,
        /// The fused portfolio weights to execute (sums to 1).
        final_action: Vec<f64>,
        /// Per-horizon pre-decisions (fed back as the policies' previous
        /// actions on the next decide).
        pre_actions: Vec<Vec<f64>>,
    },
    /// Session dropped.
    Closed {
        /// Echoed session id.
        session: String,
    },
    /// Introspection payload.
    Info {
        /// Live session count.
        sessions: usize,
        /// Assets `m` the model allocates over.
        num_assets: usize,
        /// Parameters in the active model.
        num_params: usize,
        /// Look-back window `z` (days of history `open` must provide).
        window: usize,
        /// Horizon policy count `n`.
        policies: usize,
    },
    /// Live operational metrics.
    Stats(Box<ServerStats>),
    /// Checkpoint swapped in.
    Reloaded {
        /// Parameters in the new model.
        num_params: usize,
    },
    /// Drain started.
    ShuttingDown,
    /// Debug stall finished.
    Slept {
        /// Echoed stall duration.
        ms: u64,
    },
    /// Any failure.
    Error {
        /// Reject class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for failures.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
        }
    }

    /// Renders one response line (no trailing newline).
    pub fn render(&self) -> String {
        let json = match self {
            Response::Opened { session, days } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "open".into()),
                ("session", session.clone().into()),
                ("days", (*days).into()),
            ]),
            Response::Decision {
                session,
                day,
                final_action,
                pre_actions,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "decide".into()),
                ("session", session.clone().into()),
                ("day", (*day).into()),
                ("final_action", final_action.clone().into()),
                (
                    "pre_actions",
                    Json::Arr(pre_actions.iter().map(|a| a.clone().into()).collect()),
                ),
            ]),
            Response::Closed { session } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "close".into()),
                ("session", session.clone().into()),
            ]),
            Response::Info {
                sessions,
                num_assets,
                num_params,
                window,
                policies,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "info".into()),
                ("sessions", (*sessions).into()),
                ("num_assets", (*num_assets).into()),
                ("num_params", (*num_params).into()),
                ("window", (*window).into()),
                ("policies", (*policies).into()),
            ]),
            Response::Stats(stats) => stats.to_json(),
            Response::Reloaded { num_params } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "reload".into()),
                ("num_params", (*num_params).into()),
            ]),
            Response::ShuttingDown => {
                Json::obj(vec![("ok", Json::Bool(true)), ("op", "shutdown".into())])
            }
            Response::Slept { ms } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "sleep".into()),
                ("ms", (*ms as usize).into()),
            ]),
            Response::Error { kind, message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", kind.tag().into()),
                ("error", message.as_str().into()),
            ]),
        };
        json.render()
    }
}

impl Request {
    /// Renders one request line (no trailing newline) — the client side
    /// of [`Request::parse`].
    pub fn render(&self) -> String {
        fn matrix(rows: &[Vec<f64>]) -> Json {
            Json::Arr(rows.iter().map(|r| r.clone().into()).collect())
        }
        let json = match self {
            Request::Open { session, prices } => Json::obj(vec![
                ("op", "open".into()),
                ("session", session.clone().into()),
                ("prices", matrix(prices)),
            ]),
            Request::Decide { session, prices } => {
                let mut pairs = vec![
                    ("op", Json::from("decide")),
                    ("session", session.clone().into()),
                ];
                if !prices.is_empty() {
                    pairs.push(("prices", matrix(prices)));
                }
                Json::obj(pairs)
            }
            Request::Close { session } => Json::obj(vec![
                ("op", "close".into()),
                ("session", session.clone().into()),
            ]),
            Request::Info => Json::obj(vec![("op", "info".into())]),
            Request::Stats => Json::obj(vec![("op", "stats".into())]),
            Request::Reload { checkpoint } => Json::obj(vec![
                ("op", "reload".into()),
                ("checkpoint", checkpoint.clone().into()),
            ]),
            Request::Shutdown => Json::obj(vec![("op", "shutdown".into())]),
            Request::Sleep { ms } => {
                Json::obj(vec![("op", "sleep".into()), ("ms", (*ms as usize).into())])
            }
        };
        json.render()
    }

    /// Parses one request line. Errors are client-facing messages.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field \"op\"")?;
        let session = |required: bool| -> Result<String, String> {
            match v.get("session").and_then(Json::as_str) {
                Some(s) if !s.is_empty() => Ok(s.to_string()),
                _ if !required => Ok(String::new()),
                _ => Err("missing string field \"session\"".into()),
            }
        };
        let prices = |required: bool| -> Result<Vec<Vec<f64>>, String> {
            match v.get("prices") {
                Some(p) => p
                    .as_f64_matrix()
                    .ok_or_else(|| "\"prices\" must be an array of number rows".to_string()),
                None if !required => Ok(Vec::new()),
                None => Err("missing field \"prices\"".into()),
            }
        };
        match op {
            "open" => Ok(Request::Open {
                session: session(true)?,
                prices: prices(true)?,
            }),
            "decide" => Ok(Request::Decide {
                session: session(true)?,
                prices: prices(false)?,
            }),
            "close" => Ok(Request::Close {
                session: session(true)?,
            }),
            "info" => Ok(Request::Info),
            "stats" => Ok(Request::Stats),
            "reload" => Ok(Request::Reload {
                checkpoint: v
                    .get("checkpoint")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"checkpoint\"")?
                    .to_string(),
            }),
            "shutdown" => Ok(Request::Shutdown),
            "sleep" => Ok(Request::Sleep {
                ms: v
                    .get("ms")
                    .and_then(Json::as_usize)
                    .ok_or("missing integer field \"ms\"")? as u64,
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        assert_eq!(
            Request::parse(r#"{"op":"open","session":"s","prices":[[1,2,3,4]]}"#).unwrap(),
            Request::Open {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"decide","session":"s"}"#).unwrap(),
            Request::Decide {
                session: "s".into(),
                prices: vec![],
            }
        );
        assert_eq!(Request::parse(r#"{"op":"info"}"#).unwrap(), Request::Info);
        assert_eq!(
            Request::parse(r#"{"op":"reload","checkpoint":"/tmp/x.cit"}"#).unwrap(),
            Request::Reload {
                checkpoint: "/tmp/x.cit".into(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"sleep","ms":250}"#).unwrap(),
            Request::Sleep { ms: 250 }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"open","session":"s"}"#,
            r#"{"op":"open","session":"s","prices":[["x"]]}"#,
            r#"{"op":"decide"}"#,
            r#"{"op":"warp"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn requests_round_trip_through_render() {
        let reqs = [
            Request::Open {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
            },
            Request::Decide {
                session: "s".into(),
                prices: vec![],
            },
            Request::Decide {
                session: "s".into(),
                prices: vec![vec![0.5; 4]],
            },
            Request::Close {
                session: "s".into(),
            },
            Request::Info,
            Request::Stats,
            Request::Reload {
                checkpoint: "a b/c.cit".into(),
            },
            Request::Shutdown,
            Request::Sleep { ms: 10 },
        ];
        for req in reqs {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
    }

    #[test]
    fn error_kinds_round_trip_their_tags() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ErrorKind::from_tag("nope"), None);
        assert!(ErrorKind::Overloaded.is_retryable());
        assert!(ErrorKind::DeadlineExceeded.is_retryable());
        assert!(!ErrorKind::SessionLost.is_retryable());
    }

    #[test]
    fn stats_response_round_trips() {
        let stats = ServerStats {
            uptime_s: 12.5,
            sessions: 3,
            connections: 5,
            sessions_evicted: 4,
            sessions_restored: 1,
            sessions_quarantined: 2,
            queue_depth: 1,
            queue_cap: 128,
            checkpoint: "/tmp/model.cit".into(),
            reloads: 2,
            requests_total: 1000,
            errors_total: 7,
            batch_mean: 4.5,
            windows: vec![WindowStats {
                secs: 10,
                requests: 250,
                req_per_s: 25.0,
                p50_us: 800.0,
                p95_us: 2500.0,
                p99_us: 4000.0,
            }],
            ops: vec![OpStats {
                op: "decide".into(),
                requests: 900,
                errors: 2,
                p50_us: 850.0,
                p99_us: 4100.0,
            }],
            errors: vec![("overloaded".into(), 5), ("unknown_session".into(), 2)],
        };
        let line = Response::Stats(Box::new(stats.clone())).render();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let back = ServerStats::from_json(&v).expect("stats parse");
        assert_eq!(back, stats);
    }

    #[test]
    fn decision_response_renders_weights_bitwise() {
        let w = vec![1.0 / 3.0, 2.0 / 3.0];
        let r = Response::Decision {
            session: "s".into(),
            day: 41,
            final_action: w.clone(),
            pre_actions: vec![w.clone()],
        };
        let line = r.render();
        let v = crate::json::Json::parse(&line).unwrap();
        let back = v.get("final_action").unwrap().as_f64_array().unwrap();
        assert_eq!(back[0].to_bits(), w[0].to_bits());
        assert_eq!(back[1].to_bits(), w[1].to_bits());
    }
}
