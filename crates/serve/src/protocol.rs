//! The newline-delimited JSON line protocol.
//!
//! One request per line, one response per line, UTF-8. Every request is a
//! JSON object with an `"op"` field; every response carries `"ok"`
//! (`true`/`false`) and echoes the operation. Prices travel as
//! `[days][m·4]` matrices: one row per trading day, each row the
//! `m` assets' OHLC quadruples in asset order — the exact memory layout
//! of [`cit_market::AssetPanel`].
//!
//! | op | request fields | success fields |
//! |----|----------------|----------------|
//! | `open` | `session`, `prices`, optional `model` | `days` |
//! | `decide` | `session`, optional `prices`, optional `model` | `day`, `final_action`, `pre_actions` |
//! | `close` | `session` | — |
//! | `info` | optional `model` | `sessions`, `num_assets`, `num_params`, `window`, `policies` |
//! | `stats` | — | live operational metrics (see [`ServerStats`]) |
//! | `reload` | `checkpoint`, optional `model` | `num_params` |
//! | `shutdown` | — | — |
//! | `sleep` | `ms` (debug builds of the server only) | `ms` |
//!
//! The optional `model` field selects one of the server's named model
//! slots; requests without it address the **default** slot, byte for
//! byte as before multi-model serving existed. `open {"model":"auto"}`
//! asks the server's deterministic meta-router to pick the slot from the
//! open history's market regime. A request naming an unknown slot is
//! rejected with a typed `model_not_found`. In the typed [`Request`]
//! enum the model-addressed forms are separate `*As` variants
//! ([`Request::OpenAs`], [`Request::DecideAs`], [`Request::InfoAs`],
//! [`Request::ReloadAs`]) so that model-oblivious clients keep compiling
//! and keep emitting the exact pre-multi-model wire bytes.
//!
//! The complete versioned wire reference — every op's request/response
//! shape, every error kind's retryability, backpressure and deadline
//! semantics, worked `nc` examples — lives in `PROTOCOL.md` at the repo
//! root.
//!
//! Failures: `{"ok":false,"kind":"<kind>","error":"<message>"}` with
//! [`ErrorKind`] naming the reject class. `overloaded` is the
//! backpressure signal and `deadline_exceeded` the load-shedding one —
//! both guarantee the request touched no session state, so retrying
//! (with backoff, see [`crate::RetryPolicy`]) is always safe;
//! `session_lost` means the session's spilled state was corrupt on disk
//! and has been quarantined.

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a session seeded with at least `window` days of history,
    /// pinned to the **default** model slot.
    Open {
        /// Client-chosen session id.
        session: String,
        /// Price history, one `[m·4]` OHLC row per day.
        prices: Vec<Vec<f64>>,
    },
    /// `open` addressed at a named model slot (`"auto"` asks the
    /// meta-router to pick one from the history's market regime). The
    /// session is pinned to the resolved slot for its whole life,
    /// including across spill/restore.
    OpenAs {
        /// Client-chosen session id.
        session: String,
        /// Price history, one `[m·4]` OHLC row per day.
        prices: Vec<Vec<f64>>,
        /// Model slot name, or `"auto"` for router selection.
        model: String,
    },
    /// Append zero or more days, then decide on the latest day.
    Decide {
        /// Session id from a prior `open`.
        session: String,
        /// New days to append before deciding (may be empty).
        prices: Vec<Vec<f64>>,
    },
    /// `decide` carrying an explicit model slot name: the server verifies
    /// the slot exists (`model_not_found` otherwise) and matches the
    /// session's pin (`bad_request` otherwise) — a guard for clients that
    /// track which model their session runs on.
    DecideAs {
        /// Session id from a prior `open`.
        session: String,
        /// New days to append before deciding (may be empty).
        prices: Vec<Vec<f64>>,
        /// Model slot the session is expected to be pinned to.
        model: String,
    },
    /// Drop a session.
    Close {
        /// Session id to drop.
        session: String,
    },
    /// Server/model introspection (default model slot).
    Info,
    /// `info` for one named model slot: model-specific fields
    /// (`num_params`, `checkpoint`) and the count of sessions pinned to
    /// that slot.
    InfoAs {
        /// Model slot to introspect.
        model: String,
    },
    /// Live operational metrics (req/s, latency windows, queue depth).
    Stats,
    /// Atomically swap a new checkpoint into the default model slot
    /// (same architecture).
    Reload {
        /// Path to a cit-params checkpoint on the server's filesystem.
        checkpoint: String,
    },
    /// `reload` addressed at a named model slot; other slots (and every
    /// in-flight session pinned to them) are untouched.
    ReloadAs {
        /// Path to a cit-params checkpoint on the server's filesystem.
        checkpoint: String,
        /// Model slot to swap.
        model: String,
    },
    /// Begin graceful drain: stop accepting, finish queued work.
    Shutdown,
    /// Debug: stall the batcher (only honoured with
    /// [`crate::ServeConfig::debug_ops`]).
    Sleep {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// Reject classes a client can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or missing/invalid fields.
    BadRequest,
    /// The bounded decision queue is full — retry later (backpressure).
    Overloaded,
    /// `decide`/`close` for a session that does not exist.
    UnknownSession,
    /// `open` for a session id already in use.
    SessionExists,
    /// Checkpoint reload failed (file missing / architecture mismatch);
    /// the previous model stays active.
    ReloadFailed,
    /// The server is draining and no longer takes new work.
    ShuttingDown,
    /// Invalid price data (wrong row width, non-positive, non-finite).
    BadData,
    /// The session's spilled state was corrupt or truncated on disk; the
    /// file has been quarantined (`*.corrupt`) and the session is gone.
    /// Re-`open` with fresh history to continue.
    SessionLost,
    /// The request sat in the batcher queue past
    /// [`crate::ServeConfig::request_deadline`] and was shed instead of
    /// being answered stale — retry, like `overloaded`.
    DeadlineExceeded,
    /// The request named a model slot the server does not host (or used
    /// `"auto"` outside `open`). The set of slots is fixed at startup;
    /// ask `stats` for the live list.
    ModelNotFound,
}

impl ErrorKind {
    /// Number of reject classes — the length every per-kind stats table
    /// must have.
    pub const COUNT: usize = 10;

    /// The kind's position in [`ErrorKind::ALL`] (and in the server's
    /// per-kind error counters). The match is exhaustive on purpose:
    /// adding a kind without extending [`ErrorKind::ALL`] (and `COUNT`)
    /// fails to compile via the const assertions below.
    pub const fn index(self) -> usize {
        match self {
            ErrorKind::BadRequest => 0,
            ErrorKind::Overloaded => 1,
            ErrorKind::UnknownSession => 2,
            ErrorKind::SessionExists => 3,
            ErrorKind::ReloadFailed => 4,
            ErrorKind::ShuttingDown => 5,
            ErrorKind::BadData => 6,
            ErrorKind::SessionLost => 7,
            ErrorKind::DeadlineExceeded => 8,
            ErrorKind::ModelNotFound => 9,
        }
    }

    /// Every reject class, in wire-tag order — the index basis for the
    /// server's per-kind error counters.
    pub const ALL: [ErrorKind; Self::COUNT] = [
        ErrorKind::BadRequest,
        ErrorKind::Overloaded,
        ErrorKind::UnknownSession,
        ErrorKind::SessionExists,
        ErrorKind::ReloadFailed,
        ErrorKind::ShuttingDown,
        ErrorKind::BadData,
        ErrorKind::SessionLost,
        ErrorKind::DeadlineExceeded,
        ErrorKind::ModelNotFound,
    ];

    /// The wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::ReloadFailed => "reload_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::BadData => "bad_data",
            ErrorKind::SessionLost => "session_lost",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ModelNotFound => "model_not_found",
        }
    }

    /// Parses a wire tag back into a kind (client side).
    pub fn from_tag(tag: &str) -> Option<ErrorKind> {
        Some(match tag {
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "unknown_session" => ErrorKind::UnknownSession,
            "session_exists" => ErrorKind::SessionExists,
            "reload_failed" => ErrorKind::ReloadFailed,
            "shutting_down" => ErrorKind::ShuttingDown,
            "bad_data" => ErrorKind::BadData,
            "session_lost" => ErrorKind::SessionLost,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "model_not_found" => ErrorKind::ModelNotFound,
            _ => return None,
        })
    }

    /// A reject the server answers **before** touching any session state
    /// (`overloaded` is refused at the queue, `deadline_exceeded` is shed
    /// before compute), so retrying the identical request is always safe.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded | ErrorKind::DeadlineExceeded)
    }
}

// Compile-time sync between `index()` (an exhaustive match — the thing
// that actually breaks when a kind is added) and the `ALL` table every
// stats/counter array is sized from.
const _: () = {
    let mut i = 0;
    while i < ErrorKind::COUNT {
        assert!(
            ErrorKind::ALL[i].index() == i,
            "ErrorKind::ALL out of sync with ErrorKind::index()"
        );
        i += 1;
    }
};

/// One trailing window's server-side traffic digest inside
/// [`ServerStats`]: request rate and latency quantiles over the last
/// `secs` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window length in seconds.
    pub secs: u64,
    /// Requests answered inside the window.
    pub requests: u64,
    /// Requests per second over the window (`0.0` when idle).
    pub req_per_s: f64,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
}

/// One operation's cumulative breakdown inside [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Operation name (`open`, `decide`, `close`, `info`, `stats`,
    /// `reload`, `sleep`, or `other` for unparseable requests).
    pub op: String,
    /// Requests of this op since start.
    pub requests: u64,
    /// Error responses of this op since start.
    pub errors: u64,
    /// Median latency of this op in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency of this op in microseconds.
    pub p99_us: f64,
}

/// One model slot's breakdown inside [`ServerStats`]: which checkpoint
/// it runs, how much traffic it carries and how many sessions are
/// pinned to it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// Slot name (`default` for the unnamed slot).
    pub model: String,
    /// Identity of the slot's loaded checkpoint (path of the last
    /// successful reload into this slot, or its startup label).
    pub checkpoint: String,
    /// Successful reloads into this slot since start.
    pub reloads: u64,
    /// Resident sessions currently pinned to this slot.
    pub sessions: usize,
    /// `open`/`decide` requests answered by this slot since start.
    pub requests: u64,
    /// Error responses attributed to this slot since start.
    pub errors: u64,
    /// This slot's request rate over the trailing 10 s window.
    pub req_per_s: f64,
}

/// The payload of a successful `stats` op: everything an operator (or
/// `cit-top`) needs to judge a live server at a glance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Live session count (resident in memory; spilled sessions are not
    /// counted until restored).
    pub sessions: usize,
    /// Open client connections on the reactor.
    pub connections: usize,
    /// Sessions idle-evicted to disk (or spilled at shutdown) since start.
    pub sessions_evicted: u64,
    /// Sessions transparently restored from disk spill since start.
    pub sessions_restored: u64,
    /// Spill files found corrupt or truncated and quarantined
    /// (`*.corrupt`) since start — at startup recovery scan or on a
    /// failed restore.
    pub sessions_quarantined: u64,
    /// Requests currently queued for the batcher.
    pub queue_depth: usize,
    /// The bounded queue's capacity (`overloaded` rejects past this).
    pub queue_cap: usize,
    /// Identity of the loaded checkpoint (path of the last successful
    /// reload, or the label the server started with).
    pub checkpoint: String,
    /// Successful checkpoint reloads since start.
    pub reloads: u64,
    /// Requests answered since start (every op, success or error).
    pub requests_total: u64,
    /// Error responses since start.
    pub errors_total: u64,
    /// Mean batch size since start (`0.0` before the first batch).
    pub batch_mean: f64,
    /// Trailing-window digests (10 s and 60 s).
    pub windows: Vec<WindowStats>,
    /// Per-op cumulative breakdown (ops seen at least once).
    pub ops: Vec<OpStats>,
    /// Error counts by reject class (kinds seen at least once), as
    /// `(kind tag, count)` pairs.
    pub errors: Vec<(String, u64)>,
    /// Per-model-slot breakdown, default slot first.
    pub models: Vec<ModelStats>,
}

impl ServerStats {
    /// Reconstructs stats from a parsed `stats` response line — the
    /// client side of [`Response::render`]. Returns `None` when the JSON
    /// is not a stats payload.
    pub fn from_json(v: &Json) -> Option<ServerStats> {
        if v.get("op").and_then(Json::as_str) != Some("stats") {
            return None;
        }
        let windows = v
            .get("windows")?
            .as_array()?
            .iter()
            .map(|w| {
                Some(WindowStats {
                    secs: w.get("secs")?.as_usize()? as u64,
                    requests: w.get("requests")?.as_usize()? as u64,
                    req_per_s: w.get("req_per_s")?.as_f64()?,
                    p50_us: w.get("p50_us")?.as_f64()?,
                    p95_us: w.get("p95_us")?.as_f64()?,
                    p99_us: w.get("p99_us")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let ops = v
            .get("ops")?
            .as_array()?
            .iter()
            .map(|o| {
                Some(OpStats {
                    op: o.get("op")?.as_str()?.to_string(),
                    requests: o.get("requests")?.as_usize()? as u64,
                    errors: o.get("errors")?.as_usize()? as u64,
                    p50_us: o.get("p50_us")?.as_f64()?,
                    p99_us: o.get("p99_us")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let errors = v
            .get("errors")?
            .as_array()?
            .iter()
            .map(|e| {
                Some((
                    e.get("kind")?.as_str()?.to_string(),
                    e.get("count")?.as_usize()? as u64,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        let models = v
            .get("models")?
            .as_array()?
            .iter()
            .map(|m| {
                Some(ModelStats {
                    model: m.get("model")?.as_str()?.to_string(),
                    checkpoint: m.get("checkpoint")?.as_str()?.to_string(),
                    reloads: m.get("reloads")?.as_usize()? as u64,
                    sessions: m.get("sessions")?.as_usize()?,
                    requests: m.get("requests")?.as_usize()? as u64,
                    errors: m.get("errors")?.as_usize()? as u64,
                    req_per_s: m.get("req_per_s")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ServerStats {
            uptime_s: v.get("uptime_s")?.as_f64()?,
            sessions: v.get("sessions")?.as_usize()?,
            connections: v.get("connections")?.as_usize()?,
            sessions_evicted: v.get("sessions_evicted")?.as_usize()? as u64,
            sessions_restored: v.get("sessions_restored")?.as_usize()? as u64,
            sessions_quarantined: v.get("sessions_quarantined")?.as_usize()? as u64,
            queue_depth: v.get("queue_depth")?.as_usize()?,
            queue_cap: v.get("queue_cap")?.as_usize()?,
            checkpoint: v.get("checkpoint")?.as_str()?.to_string(),
            reloads: v.get("reloads")?.as_usize()? as u64,
            requests_total: v.get("requests_total")?.as_usize()? as u64,
            errors_total: v.get("errors_total")?.as_usize()? as u64,
            batch_mean: v.get("batch_mean")?.as_f64()?,
            windows,
            ops,
            errors,
            models,
        })
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", "stats".into()),
            ("uptime_s", self.uptime_s.into()),
            ("sessions", self.sessions.into()),
            ("connections", self.connections.into()),
            ("sessions_evicted", (self.sessions_evicted as usize).into()),
            (
                "sessions_restored",
                (self.sessions_restored as usize).into(),
            ),
            (
                "sessions_quarantined",
                (self.sessions_quarantined as usize).into(),
            ),
            ("queue_depth", self.queue_depth.into()),
            ("queue_cap", self.queue_cap.into()),
            ("checkpoint", self.checkpoint.clone().into()),
            ("reloads", (self.reloads as usize).into()),
            ("requests_total", (self.requests_total as usize).into()),
            ("errors_total", (self.errors_total as usize).into()),
            ("batch_mean", self.batch_mean.into()),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("secs", (w.secs as usize).into()),
                                ("requests", (w.requests as usize).into()),
                                ("req_per_s", w.req_per_s.into()),
                                ("p50_us", w.p50_us.into()),
                                ("p95_us", w.p95_us.into()),
                                ("p99_us", w.p99_us.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ops",
                Json::Arr(
                    self.ops
                        .iter()
                        .map(|o| {
                            Json::obj(vec![
                                ("op", o.op.clone().into()),
                                ("requests", (o.requests as usize).into()),
                                ("errors", (o.errors as usize).into()),
                                ("p50_us", o.p50_us.into()),
                                ("p99_us", o.p99_us.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "errors",
                Json::Arr(
                    self.errors
                        .iter()
                        .map(|(kind, count)| {
                            Json::obj(vec![
                                ("kind", kind.clone().into()),
                                ("count", (*count as usize).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "models",
                Json::Arr(
                    self.models
                        .iter()
                        .map(|m| {
                            Json::obj(vec![
                                ("model", m.model.clone().into()),
                                ("checkpoint", m.checkpoint.clone().into()),
                                ("reloads", (m.reloads as usize).into()),
                                ("sessions", m.sessions.into()),
                                ("requests", (m.requests as usize).into()),
                                ("errors", (m.errors as usize).into()),
                                ("req_per_s", m.req_per_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session created.
    Opened {
        /// Echoed session id.
        session: String,
        /// Days of history the session now holds.
        days: usize,
        /// Resolved model slot the session is pinned to — under
        /// `"auto"` this is where the router's pick is reported. Empty
        /// (omitted on the wire) for sessions opened without a `model`
        /// field, so default-slot traffic stays byte-identical.
        model: String,
    },
    /// A portfolio decision.
    Decision {
        /// Echoed session id.
        session: String,
        /// Absolute day index (days pushed since `open`, minus one).
        day: usize,
        /// The fused portfolio weights to execute (sums to 1).
        final_action: Vec<f64>,
        /// Per-horizon pre-decisions (fed back as the policies' previous
        /// actions on the next decide).
        pre_actions: Vec<Vec<f64>>,
        /// Model slot that produced the decision: the session's pin,
        /// empty (omitted on the wire) for sessions opened without a
        /// `model` field.
        model: String,
    },
    /// Session dropped.
    Closed {
        /// Echoed session id.
        session: String,
    },
    /// Introspection payload.
    Info {
        /// Live session count (whole server for plain `info`; pinned to
        /// the named slot for `info {"model":...}`).
        sessions: usize,
        /// Assets `m` the model allocates over.
        num_assets: usize,
        /// Parameters in the active model.
        num_params: usize,
        /// Look-back window `z` (days of history `open` must provide).
        window: usize,
        /// Horizon policy count `n`.
        policies: usize,
        /// Introspected model slot. Rendered only when the request
        /// carried a `model` field (empty = omitted).
        model: String,
    },
    /// Live operational metrics.
    Stats(Box<ServerStats>),
    /// Checkpoint swapped in.
    Reloaded {
        /// Parameters in the new model.
        num_params: usize,
        /// Slot the checkpoint was swapped into. Rendered only when the
        /// request carried a `model` field (empty = omitted).
        model: String,
    },
    /// Drain started.
    ShuttingDown,
    /// Debug stall finished.
    Slept {
        /// Echoed stall duration.
        ms: u64,
    },
    /// Any failure.
    Error {
        /// Reject class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for failures.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
        }
    }

    /// Renders one response line (no trailing newline). The `model` echo
    /// fields are emitted only when non-empty, so responses to
    /// model-oblivious requests are byte-identical to the single-model
    /// protocol.
    pub fn render(&self) -> String {
        let json = match self {
            Response::Opened {
                session,
                days,
                model,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", "open".into()),
                    ("session", session.clone().into()),
                    ("days", (*days).into()),
                ];
                if !model.is_empty() {
                    pairs.push(("model", model.clone().into()));
                }
                Json::obj(pairs)
            }
            Response::Decision {
                session,
                day,
                final_action,
                pre_actions,
                model,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", "decide".into()),
                    ("session", session.clone().into()),
                    ("day", (*day).into()),
                    ("final_action", final_action.clone().into()),
                    (
                        "pre_actions",
                        Json::Arr(pre_actions.iter().map(|a| a.clone().into()).collect()),
                    ),
                ];
                if !model.is_empty() {
                    pairs.push(("model", model.clone().into()));
                }
                Json::obj(pairs)
            }
            Response::Closed { session } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "close".into()),
                ("session", session.clone().into()),
            ]),
            Response::Info {
                sessions,
                num_assets,
                num_params,
                window,
                policies,
                model,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", "info".into()),
                    ("sessions", (*sessions).into()),
                    ("num_assets", (*num_assets).into()),
                    ("num_params", (*num_params).into()),
                    ("window", (*window).into()),
                    ("policies", (*policies).into()),
                ];
                if !model.is_empty() {
                    pairs.push(("model", model.clone().into()));
                }
                Json::obj(pairs)
            }
            Response::Stats(stats) => stats.to_json(),
            Response::Reloaded { num_params, model } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("op", "reload".into()),
                    ("num_params", (*num_params).into()),
                ];
                if !model.is_empty() {
                    pairs.push(("model", model.clone().into()));
                }
                Json::obj(pairs)
            }
            Response::ShuttingDown => {
                Json::obj(vec![("ok", Json::Bool(true)), ("op", "shutdown".into())])
            }
            Response::Slept { ms } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", "sleep".into()),
                ("ms", (*ms as usize).into()),
            ]),
            Response::Error { kind, message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", kind.tag().into()),
                ("error", message.as_str().into()),
            ]),
        };
        json.render()
    }
}

impl Request {
    /// Renders one request line (no trailing newline) — the client side
    /// of [`Request::parse`].
    pub fn render(&self) -> String {
        fn matrix(rows: &[Vec<f64>]) -> Json {
            Json::Arr(rows.iter().map(|r| r.clone().into()).collect())
        }
        let json = match self {
            Request::Open { session, prices } => Json::obj(vec![
                ("op", "open".into()),
                ("session", session.clone().into()),
                ("prices", matrix(prices)),
            ]),
            Request::OpenAs {
                session,
                prices,
                model,
            } => Json::obj(vec![
                ("op", "open".into()),
                ("session", session.clone().into()),
                ("prices", matrix(prices)),
                ("model", model.clone().into()),
            ]),
            Request::Decide { session, prices } => {
                let mut pairs = vec![
                    ("op", Json::from("decide")),
                    ("session", session.clone().into()),
                ];
                if !prices.is_empty() {
                    pairs.push(("prices", matrix(prices)));
                }
                Json::obj(pairs)
            }
            Request::DecideAs {
                session,
                prices,
                model,
            } => {
                let mut pairs = vec![
                    ("op", Json::from("decide")),
                    ("session", session.clone().into()),
                ];
                if !prices.is_empty() {
                    pairs.push(("prices", matrix(prices)));
                }
                pairs.push(("model", model.clone().into()));
                Json::obj(pairs)
            }
            Request::Close { session } => Json::obj(vec![
                ("op", "close".into()),
                ("session", session.clone().into()),
            ]),
            Request::Info => Json::obj(vec![("op", "info".into())]),
            Request::InfoAs { model } => {
                Json::obj(vec![("op", "info".into()), ("model", model.clone().into())])
            }
            Request::Stats => Json::obj(vec![("op", "stats".into())]),
            Request::Reload { checkpoint } => Json::obj(vec![
                ("op", "reload".into()),
                ("checkpoint", checkpoint.clone().into()),
            ]),
            Request::ReloadAs { checkpoint, model } => Json::obj(vec![
                ("op", "reload".into()),
                ("checkpoint", checkpoint.clone().into()),
                ("model", model.clone().into()),
            ]),
            Request::Shutdown => Json::obj(vec![("op", "shutdown".into())]),
            Request::Sleep { ms } => {
                Json::obj(vec![("op", "sleep".into()), ("ms", (*ms as usize).into())])
            }
        };
        json.render()
    }

    /// Parses one request line. Errors are client-facing messages.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field \"op\"")?;
        let session = |required: bool| -> Result<String, String> {
            match v.get("session").and_then(Json::as_str) {
                Some(s) if !s.is_empty() => Ok(s.to_string()),
                _ if !required => Ok(String::new()),
                _ => Err("missing string field \"session\"".into()),
            }
        };
        let prices = |required: bool| -> Result<Vec<Vec<f64>>, String> {
            match v.get("prices") {
                Some(p) => p
                    .as_f64_matrix()
                    .ok_or_else(|| "\"prices\" must be an array of number rows".to_string()),
                None if !required => Ok(Vec::new()),
                None => Err("missing field \"prices\"".into()),
            }
        };
        // A present `model` must be a non-empty string; absent selects
        // the default slot (the plain, non-`*As` variant).
        let model = || -> Result<Option<String>, String> {
            match v.get("model") {
                None => Ok(None),
                Some(m) => match m.as_str() {
                    Some(s) if !s.is_empty() => Ok(Some(s.to_string())),
                    _ => Err("\"model\" must be a non-empty string".into()),
                },
            }
        };
        match op {
            "open" => {
                let (session, prices) = (session(true)?, prices(true)?);
                Ok(match model()? {
                    Some(model) => Request::OpenAs {
                        session,
                        prices,
                        model,
                    },
                    None => Request::Open { session, prices },
                })
            }
            "decide" => {
                let (session, prices) = (session(true)?, prices(false)?);
                Ok(match model()? {
                    Some(model) => Request::DecideAs {
                        session,
                        prices,
                        model,
                    },
                    None => Request::Decide { session, prices },
                })
            }
            "close" => Ok(Request::Close {
                session: session(true)?,
            }),
            "info" => Ok(match model()? {
                Some(model) => Request::InfoAs { model },
                None => Request::Info,
            }),
            "stats" => Ok(Request::Stats),
            "reload" => {
                let checkpoint = v
                    .get("checkpoint")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"checkpoint\"")?
                    .to_string();
                Ok(match model()? {
                    Some(model) => Request::ReloadAs { checkpoint, model },
                    None => Request::Reload { checkpoint },
                })
            }
            "shutdown" => Ok(Request::Shutdown),
            "sleep" => Ok(Request::Sleep {
                ms: v
                    .get("ms")
                    .and_then(Json::as_usize)
                    .ok_or("missing integer field \"ms\"")? as u64,
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        assert_eq!(
            Request::parse(r#"{"op":"open","session":"s","prices":[[1,2,3,4]]}"#).unwrap(),
            Request::Open {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"decide","session":"s"}"#).unwrap(),
            Request::Decide {
                session: "s".into(),
                prices: vec![],
            }
        );
        assert_eq!(Request::parse(r#"{"op":"info"}"#).unwrap(), Request::Info);
        assert_eq!(
            Request::parse(r#"{"op":"reload","checkpoint":"/tmp/x.cit"}"#).unwrap(),
            Request::Reload {
                checkpoint: "/tmp/x.cit".into(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"sleep","ms":250}"#).unwrap(),
            Request::Sleep { ms: 250 }
        );
    }

    #[test]
    fn parses_model_addressed_ops() {
        assert_eq!(
            Request::parse(r#"{"op":"open","session":"s","prices":[[1,2,3,4]],"model":"auto"}"#)
                .unwrap(),
            Request::OpenAs {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
                model: "auto".into(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"decide","session":"s","model":"alt"}"#).unwrap(),
            Request::DecideAs {
                session: "s".into(),
                prices: vec![],
                model: "alt".into(),
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"info","model":"alt"}"#).unwrap(),
            Request::InfoAs {
                model: "alt".into()
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"reload","checkpoint":"/tmp/x.cit","model":"alt"}"#).unwrap(),
            Request::ReloadAs {
                checkpoint: "/tmp/x.cit".into(),
                model: "alt".into(),
            }
        );
        // A present-but-invalid model field is a parse error, never a
        // silent fall-through to the default slot.
        for bad in [
            r#"{"op":"info","model":""}"#,
            r#"{"op":"info","model":7}"#,
            r#"{"op":"open","session":"s","prices":[[1,2,3,4]],"model":[]}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"open","session":"s"}"#,
            r#"{"op":"open","session":"s","prices":[["x"]]}"#,
            r#"{"op":"decide"}"#,
            r#"{"op":"warp"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn requests_round_trip_through_render() {
        let reqs = [
            Request::Open {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
            },
            Request::Decide {
                session: "s".into(),
                prices: vec![],
            },
            Request::Decide {
                session: "s".into(),
                prices: vec![vec![0.5; 4]],
            },
            Request::Close {
                session: "s".into(),
            },
            Request::Info,
            Request::Stats,
            Request::Reload {
                checkpoint: "a b/c.cit".into(),
            },
            Request::Shutdown,
            Request::Sleep { ms: 10 },
            Request::OpenAs {
                session: "s".into(),
                prices: vec![vec![1.0, 2.0, 3.0, 4.0]],
                model: "auto".into(),
            },
            Request::DecideAs {
                session: "s".into(),
                prices: vec![],
                model: "alt".into(),
            },
            Request::InfoAs {
                model: "alt".into(),
            },
            Request::ReloadAs {
                checkpoint: "a b/c.cit".into(),
                model: "alt".into(),
            },
        ];
        for req in reqs {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
    }

    #[test]
    fn error_kinds_round_trip_their_tags() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ErrorKind::from_tag("nope"), None);
        assert!(ErrorKind::Overloaded.is_retryable());
        assert!(ErrorKind::DeadlineExceeded.is_retryable());
        assert!(!ErrorKind::SessionLost.is_retryable());
        assert!(!ErrorKind::ModelNotFound.is_retryable());
    }

    #[test]
    fn stats_response_round_trips() {
        let stats = ServerStats {
            uptime_s: 12.5,
            sessions: 3,
            connections: 5,
            sessions_evicted: 4,
            sessions_restored: 1,
            sessions_quarantined: 2,
            queue_depth: 1,
            queue_cap: 128,
            checkpoint: "/tmp/model.cit".into(),
            reloads: 2,
            requests_total: 1000,
            errors_total: 7,
            batch_mean: 4.5,
            windows: vec![WindowStats {
                secs: 10,
                requests: 250,
                req_per_s: 25.0,
                p50_us: 800.0,
                p95_us: 2500.0,
                p99_us: 4000.0,
            }],
            ops: vec![OpStats {
                op: "decide".into(),
                requests: 900,
                errors: 2,
                p50_us: 850.0,
                p99_us: 4100.0,
            }],
            errors: vec![("overloaded".into(), 5), ("unknown_session".into(), 2)],
            models: vec![
                ModelStats {
                    model: "default".into(),
                    checkpoint: "/tmp/model.cit".into(),
                    reloads: 2,
                    sessions: 2,
                    requests: 700,
                    errors: 1,
                    req_per_s: 18.5,
                },
                ModelStats {
                    model: "alt".into(),
                    checkpoint: "/tmp/alt.cit".into(),
                    reloads: 0,
                    sessions: 1,
                    requests: 200,
                    errors: 0,
                    req_per_s: 6.5,
                },
            ],
        };
        let line = Response::Stats(Box::new(stats.clone())).render();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let back = ServerStats::from_json(&v).expect("stats parse");
        assert_eq!(back, stats);
    }

    #[test]
    fn decision_response_renders_weights_bitwise() {
        let w = vec![1.0 / 3.0, 2.0 / 3.0];
        let r = Response::Decision {
            session: "s".into(),
            day: 41,
            final_action: w.clone(),
            pre_actions: vec![w.clone()],
            model: String::new(),
        };
        let line = r.render();
        let v = crate::json::Json::parse(&line).unwrap();
        let back = v.get("final_action").unwrap().as_f64_array().unwrap();
        assert_eq!(back[0].to_bits(), w[0].to_bits());
        assert_eq!(back[1].to_bits(), w[1].to_bits());
    }

    #[test]
    fn model_echo_is_omitted_for_default_slot_traffic() {
        // Byte-compat guarantee: an empty model echo renders exactly the
        // pre-multi-model line; a non-empty one appends the field.
        let plain = Response::Opened {
            session: "s".into(),
            days: 31,
            model: String::new(),
        };
        assert_eq!(
            plain.render(),
            r#"{"ok":true,"op":"open","session":"s","days":31}"#
        );
        let routed = Response::Opened {
            session: "s".into(),
            days: 31,
            model: "alt".into(),
        };
        assert!(routed.render().contains(r#""model":"alt""#));
        let info = Response::Info {
            sessions: 0,
            num_assets: 4,
            num_params: 10,
            window: 30,
            policies: 3,
            model: String::new(),
        };
        assert!(!info.render().contains("model"));
        let reloaded = Response::Reloaded {
            num_params: 10,
            model: String::new(),
        };
        assert_eq!(
            reloaded.render(),
            r#"{"ok":true,"op":"reload","num_params":10}"#
        );
    }
}
