//! `cit-serve` — run a decision server from the command line.
//!
//! ```text
//! cit-serve [--addr HOST:PORT] [--admin HOST:PORT] [--checkpoint PATH | --untrained]
//!           [--model NAME=PATH]... [--router-seed S]
//!           [--assets N] [--seed S] [--full-config] [--debug-ops]
//!           [--queue-cap N] [--addr-file PATH]
//!           [--spill-dir DIR] [--session-ttl-ms N] [--tick-ms N]
//!           [--request-deadline-ms N]
//! ```
//!
//! Prints a single `READY addr=... admin=...` line once both listeners
//! are bound (and optionally writes the same addresses to `--addr-file`
//! so scripts can pick an ephemeral port with `--addr 127.0.0.1:0`),
//! then blocks until a client sends the `shutdown` op.
//!
//! `--checkpoint`/`--untrained` populate the **default** model slot;
//! each repeated `--model NAME=PATH` hosts an additional named slot
//! (same architecture, addressed by the optional `model` field on the
//! wire — see `PROTOCOL.md`). `--router-seed` seeds the deterministic
//! regime router behind `open {"model":"auto"}`.
//!
//! `--request-deadline-ms` sheds queued requests that waited longer than
//! the budget with a typed `deadline_exceeded` reject. Setting the
//! `CIT_FAULT_PLAN` environment variable to a `cit-faults` plan path
//! arms serve-plane fault injection (socket/spill/reload faults) for
//! chaos testing — see `crates/faults/plans/serve_chaos.plan`.

use cit_core::{CitConfig, DecisionModel};
use cit_serve::{NamedModel, ServeConfig, Server, AUTO_MODEL, DEFAULT_MODEL};
use std::io::Write;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "usage: cit-serve [--addr HOST:PORT] [--admin HOST:PORT]\n                 [--checkpoint PATH | --untrained] [--model NAME=PATH]...\n                 [--router-seed S] [--assets N] [--seed S]\n                 [--full-config] [--debug-ops] [--queue-cap N] [--addr-file PATH]\n                 [--spill-dir DIR] [--session-ttl-ms N] [--tick-ms N]\n                 [--request-deadline-ms N]   (env: CIT_FAULT_PLAN=<plan>)";

struct Args {
    addr: String,
    admin: Option<String>,
    checkpoint: Option<String>,
    extra_models: Vec<(String, String)>,
    router_seed: u64,
    assets: usize,
    seed: u64,
    full_config: bool,
    debug_ops: bool,
    queue_cap: Option<usize>,
    addr_file: Option<String>,
    spill_dir: Option<String>,
    session_ttl_ms: Option<u64>,
    tick_ms: Option<u64>,
    request_deadline_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        admin: None,
        checkpoint: None,
        extra_models: Vec::new(),
        router_seed: 0,
        assets: 4,
        seed: 7,
        full_config: false,
        debug_ops: false,
        queue_cap: None,
        addr_file: None,
        spill_dir: None,
        session_ttl_ms: None,
        tick_ms: None,
        request_deadline_ms: None,
    };
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i)?,
            "--admin" => args.admin = Some(value(&mut i)?),
            "--checkpoint" => args.checkpoint = Some(value(&mut i)?),
            "--untrained" => args.checkpoint = None,
            "--model" => {
                let spec = value(&mut i)?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model expects NAME=PATH, got {spec:?}"))?;
                if name.is_empty() || path.is_empty() {
                    return Err(format!("--model expects NAME=PATH, got {spec:?}"));
                }
                if name == DEFAULT_MODEL || name == AUTO_MODEL {
                    return Err(format!(
                        "--model name {name:?} is reserved ({DEFAULT_MODEL:?} is the \
                         --checkpoint slot, {AUTO_MODEL:?} invokes the router)"
                    ));
                }
                args.extra_models.push((name.to_string(), path.to_string()));
            }
            "--router-seed" => {
                args.router_seed = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--router-seed: {e}"))?
            }
            "--assets" => {
                args.assets = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--assets: {e}"))?
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--full-config" => args.full_config = true,
            "--debug-ops" => args.debug_ops = true,
            "--queue-cap" => {
                args.queue_cap = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--queue-cap: {e}"))?,
                )
            }
            "--addr-file" => args.addr_file = Some(value(&mut i)?),
            "--spill-dir" => args.spill_dir = Some(value(&mut i)?),
            "--session-ttl-ms" => {
                args.session_ttl_ms = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--session-ttl-ms: {e}"))?,
                )
            }
            "--tick-ms" => {
                args.tick_ms = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--tick-ms: {e}"))?,
                )
            }
            "--request-deadline-ms" => {
                args.request_deadline_ms = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--request-deadline-ms: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cit-serve: {e}");
            exit(2);
        }
    };

    // The on-disk checkpoint format stores parameters only, so the
    // architecture must be supplied: the smoke config matches what
    // `servebench`/`ci.sh` train, `--full-config` the paper-sized one.
    let cfg = if args.full_config {
        CitConfig {
            seed: args.seed,
            ..CitConfig::default()
        }
    } else {
        CitConfig::smoke(args.seed)
    };
    let (model, label) = match &args.checkpoint {
        Some(path) => match DecisionModel::from_checkpoint(path, cfg, args.assets) {
            Ok(m) => (m, path.clone()),
            Err(e) => {
                eprintln!("cit-serve: cannot load {path:?}: {e}");
                exit(1);
            }
        },
        None => match DecisionModel::untrained(cfg, args.assets) {
            Ok(m) => (m, format!("untrained(seed={})", args.seed)),
            Err(e) => {
                eprintln!("cit-serve: cannot build untrained model: {e}");
                exit(1);
            }
        },
    };
    // Slot 0 is the default; each --model NAME=PATH loads into an extra
    // named slot sharing the same architecture config.
    let mut models = vec![NamedModel {
        name: DEFAULT_MODEL.to_string(),
        model,
        checkpoint_label: label,
    }];
    for (name, path) in &args.extra_models {
        match DecisionModel::from_checkpoint(path, cfg, args.assets) {
            Ok(m) => models.push(NamedModel {
                name: name.clone(),
                model: m,
                checkpoint_label: path.clone(),
            }),
            Err(e) => {
                eprintln!("cit-serve: cannot load model {name:?} from {path:?}: {e}");
                exit(1);
            }
        }
    }

    let mut serve_cfg = ServeConfig {
        addr: args.addr,
        admin_addr: args.admin,
        checkpoint_label: models[0].checkpoint_label.clone(),
        debug_ops: args.debug_ops,
        router_seed: args.router_seed,
        ..ServeConfig::default()
    };
    if let Some(cap) = args.queue_cap {
        serve_cfg.queue_cap = cap;
    }
    if let Some(dir) = &args.spill_dir {
        serve_cfg.spill_dir = Some(dir.into());
    }
    if let Some(ttl) = args.session_ttl_ms {
        if args.spill_dir.is_none() {
            eprintln!("cit-serve: --session-ttl-ms requires --spill-dir");
            exit(2);
        }
        serve_cfg.session_ttl = Some(Duration::from_millis(ttl));
    }
    if let Some(tick) = args.tick_ms {
        serve_cfg.tick_ms = tick;
    }
    if let Some(deadline) = args.request_deadline_ms {
        serve_cfg.request_deadline = Some(Duration::from_millis(deadline));
    }
    // Arm serve-plane fault injection when CIT_FAULT_PLAN names a plan;
    // the default is the zero-cost disabled injector.
    match cit_faults::FaultInjector::from_env() {
        Ok(faults) => {
            if faults.is_enabled() {
                eprintln!(
                    "cit-serve: fault injection armed (seed {:?})",
                    faults.seed()
                );
            }
            serve_cfg.faults = faults;
        }
        Err(e) => {
            eprintln!("cit-serve: bad CIT_FAULT_PLAN: {e}");
            exit(2);
        }
    }

    let server = match Server::start_multi(models, serve_cfg, cit_telemetry::Telemetry::disabled())
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cit-serve: cannot start server: {e}");
            exit(1);
        }
    };

    let admin = server
        .admin_addr()
        .map_or_else(|| "-".to_string(), |a| a.to_string());
    if let Some(path) = &args.addr_file {
        let body = format!("addr={}\nadmin={}\n", server.addr(), admin);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cit-serve: cannot write {path:?}: {e}");
            exit(1);
        }
    }
    println!("READY addr={} admin={admin}", server.addr());
    let _ = std::io::stdout().flush();

    // Block until a client asks for a drain, then join everything.
    while !server.is_draining() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.shutdown();
}
