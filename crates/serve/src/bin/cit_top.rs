//! `cit-top` — a live terminal dashboard for a running `cit-serve`.
//!
//! ```text
//! cit-top --addr HOST:PORT [--interval-ms N] [--once] [--json]
//! cit-top --metrics HOST:PORT
//! ```
//!
//! Polls the server's `stats` op (default once a second) and renders a
//! plain-ANSI dashboard. `--once` polls a single time and exits;
//! `--json` prints the raw stats response line instead of the dashboard
//! (after round-tripping it through the typed [`ServerStats`] parser),
//! which makes `cit-top --once --json` usable from CI and scripts (the
//! payload includes the per-model `models` breakdown). When the server
//! hosts more than one model slot the dashboard adds a per-model table
//! (req/s, totals, sessions, reloads, checkpoint identity).
//! `--metrics` instead fetches `GET /metrics` from the admin listener
//! and prints the text exposition verbatim.

use cit_serve::{Client, Request, ServerStats};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "usage: cit-top --addr HOST:PORT [--interval-ms N] [--once] [--json]\n       cit-top --metrics HOST:PORT";

/// How long cit-top waits for a connect or a stats reply before giving
/// up with a one-line error (a wedged server must not wedge the
/// dashboard).
const IO_TIMEOUT: Duration = Duration::from_secs(5);

struct Args {
    addr: Option<String>,
    metrics: Option<String>,
    interval_ms: u64,
    once: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut args = Args {
        addr: None,
        metrics: None,
        interval_ms: 1000,
        once: false,
        json: false,
    };
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = Some(value(&mut i)?),
            "--metrics" => args.metrics = Some(value(&mut i)?),
            "--interval-ms" => {
                args.interval_ms = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--once" => args.once = true,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other if !other.starts_with('-') && args.addr.is_none() => {
                args.addr = Some(other.to_string())
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    if args.addr.is_none() && args.metrics.is_none() {
        return Err(format!("an address is required\n{USAGE}"));
    }
    Ok(args)
}

/// Fetches `GET /metrics` from the admin listener over plain TCP and
/// returns the response body (everything past the header block).
fn fetch_metrics(addr: &str) -> std::io::Result<String> {
    use std::net::ToSocketAddrs;
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address resolved")
    })?;
    let mut stream = TcpStream::connect_timeout(&resolved, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: cit\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .or_else(|| response.split_once("\n\n"))
        .map(|(_, b)| b.to_string())
        .unwrap_or(response);
    Ok(body)
}

fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.0}us")
    }
}

/// Renders one dashboard frame into a string (separately testable from
/// the terminal handling).
fn render(stats: &ServerStats) -> String {
    let mut out = String::new();
    let up = stats.uptime_s;
    out.push_str(&format!(
        "cit-top  |  up {:.0}s  |  checkpoint {}  |  reloads {}\n",
        up, stats.checkpoint, stats.reloads
    ));
    out.push_str(&format!(
        "conns {}  |  sessions {} (evicted {}, restored {}, quarantined {})  |  queue {}/{}  |  mean batch {:.2}\n",
        stats.connections,
        stats.sessions,
        stats.sessions_evicted,
        stats.sessions_restored,
        stats.sessions_quarantined,
        stats.queue_depth,
        stats.queue_cap,
        stats.batch_mean
    ));
    let rejects: u64 = stats.errors.iter().map(|(_, c)| c).sum();
    out.push_str(&format!(
        "requests {}  |  errors {}  |  rejects {}\n\n",
        stats.requests_total, stats.errors_total, rejects
    ));
    out.push_str("  window     req/s        p50        p95        p99\n");
    for w in &stats.windows {
        out.push_str(&format!(
            "  {:>5}s  {:>7.1}  {:>9} {:>10} {:>10}\n",
            w.secs,
            w.req_per_s,
            fmt_us(w.p50_us),
            fmt_us(w.p95_us),
            fmt_us(w.p99_us)
        ));
    }
    // One row per hosted model slot — interesting once the server runs
    // more than the single default slot.
    if stats.models.len() > 1 {
        out.push_str(
            "\n  model         req/s   requests    errors  sessions  reloads  checkpoint\n",
        );
        for m in &stats.models {
            out.push_str(&format!(
                "  {:<12} {:>6.1} {:>10} {:>9} {:>9} {:>8}  {}\n",
                m.model, m.req_per_s, m.requests, m.errors, m.sessions, m.reloads, m.checkpoint
            ));
        }
    }
    out.push_str("\n  op        requests    errors        p50        p99\n");
    for op in &stats.ops {
        out.push_str(&format!(
            "  {:<8} {:>9} {:>9}  {:>9} {:>10}\n",
            op.op,
            op.requests,
            op.errors,
            fmt_us(op.p50_us),
            fmt_us(op.p99_us)
        ));
    }
    if !stats.errors.is_empty() {
        out.push_str("\n  rejects:");
        for (kind, count) in &stats.errors {
            out.push_str(&format!("  {kind}={count}"));
        }
        out.push('\n');
    }
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cit-top: {e}");
            exit(2);
        }
    };

    if let Some(addr) = &args.metrics {
        match fetch_metrics(addr) {
            Ok(body) => {
                print!("{body}");
                exit(0);
            }
            Err(e) => {
                eprintln!("cit-top: cannot fetch metrics from {addr}: {e}");
                exit(1);
            }
        }
    }

    let addr = args.addr.expect("checked in parse_args");
    let mut client = match Client::connect_timeout(&addr, IO_TIMEOUT) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cit-top: cannot connect to {addr}: {e}");
            exit(1);
        }
    };
    loop {
        let reply = match client.call(&Request::Stats) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cit-top: stats request failed: {e}");
                exit(1);
            }
        };
        let Some(stats) = reply.stats() else {
            eprintln!(
                "cit-top: malformed stats response: {}",
                reply.json().render()
            );
            exit(1);
        };
        if args.json {
            println!("{}", reply.json().render());
        } else {
            // Clear screen + home, then one frame.
            if !args.once {
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render(&stats));
            let _ = std::io::stdout().flush();
        }
        if args.once {
            break;
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms));
    }
}
