//! The meta-router behind the `"auto"` model slot.
//!
//! MetaTrader-style serving: instead of one policy for all weathers, the
//! server hosts several trained models and picks one per session from
//! the market regime the open history arrives in. The contract is a
//! trait so smarter routers (learned gates, bandit feedback) can slot in
//! later; the shipped [`RegimeRouter`] is deliberately the simplest
//! thing that is *deterministic and bitwise reproducible*: a seeded
//! random linear scoring of [`RegimeFeatures`] per slot, argmax wins.
//! Same seed + same history ⇒ same slot, on every platform, forever —
//! the property the serving tests and the offline `routerbench`
//! backtest both rely on.

use cit_core::RegimeFeatures;

/// Picks a model slot for a new `"auto"` session.
///
/// Implementations must be pure functions of `(features, slots)` — no
/// interior state, no clocks, no OS randomness — so that routing is
/// reproducible across restarts and across the serve/backtest boundary.
pub trait RouterPolicy: Send + Sync {
    /// A short identity for logs and stats.
    fn name(&self) -> &'static str;
    /// The chosen slot index in `0..slots` (callers pass `slots >= 1`).
    fn route(&self, features: &RegimeFeatures, slots: usize) -> usize;
}

/// Deterministic regime-feature router: scores every slot with a seeded
/// random linear readout of the feature vector and picks the argmax.
///
/// Weights come from a splitmix64 stream keyed on `(seed, slot, feature)`,
/// mapped into `[-1, 1]` — fixed at construction, identical on every
/// run with the same seed. Ties break toward the lowest slot index, so
/// degenerate (all-zero) features deterministically land on the default
/// slot.
#[derive(Debug, Clone)]
pub struct RegimeRouter {
    seed: u64,
}

impl RegimeRouter {
    /// A router whose weights are derived from `seed`.
    pub fn new(seed: u64) -> RegimeRouter {
        RegimeRouter { seed }
    }

    /// The fixed weight for `(slot, feature)` in `[-1, 1]`.
    fn weight(&self, slot: usize, feature: usize) -> f64 {
        let h = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((slot as u64) << 32)
                .wrapping_add(feature as u64),
        );
        // 53 mantissa bits → uniform in [0, 1) → [-1, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

impl RouterPolicy for RegimeRouter {
    fn name(&self) -> &'static str {
        "regime"
    }

    fn route(&self, features: &RegimeFeatures, slots: usize) -> usize {
        if slots <= 1 {
            return 0;
        }
        let x = features.as_vec();
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for slot in 0..slots {
            let mut score = 0.0;
            for (j, xj) in x.iter().enumerate() {
                score += self.weight(slot, j) * xj;
            }
            // Strict `>` keeps ties on the lowest index.
            if score > best_score {
                best = slot;
                best_score = score;
            }
        }
        best
    }
}

/// SplitMix64 — the same tiny deterministic mixer the trainers seed
/// their RNG streams with.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(volatility: f64, trend: f64, bands: &[f64]) -> RegimeFeatures {
        RegimeFeatures {
            volatility,
            trend,
            band_energy: bands.to_vec(),
        }
    }

    #[test]
    fn routing_is_deterministic_in_seed_and_features() {
        let f = features(0.02, 0.001, &[0.5, 0.3, 0.2]);
        let a = RegimeRouter::new(7);
        let b = RegimeRouter::new(7);
        for slots in 1..6 {
            assert_eq!(a.route(&f, slots), b.route(&f, slots));
            assert!(a.route(&f, slots) < slots);
        }
    }

    #[test]
    fn different_regimes_can_route_differently() {
        // Not a property of every seed/slot-count pair, but seed 0 with 4
        // slots must spread these three very different regimes over more
        // than one slot — otherwise the router is a constant function.
        let r = RegimeRouter::new(0);
        let picks: std::collections::HashSet<usize> = [
            features(0.5, -0.1, &[0.1, 0.1, 0.8]),
            features(0.001, 0.01, &[0.9, 0.05, 0.05]),
            features(0.05, 0.0, &[0.2, 0.6, 0.2]),
        ]
        .iter()
        .map(|f| r.route(f, 4))
        .collect();
        assert!(picks.len() > 1, "router collapsed to one slot: {picks:?}");
    }

    #[test]
    fn zero_features_land_on_the_default_slot() {
        let r = RegimeRouter::new(123);
        let f = features(0.0, 0.0, &[0.0, 0.0, 0.0]);
        assert_eq!(r.route(&f, 5), 0);
        assert_eq!(r.route(&f, 1), 0);
    }
}
