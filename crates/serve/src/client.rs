//! A small blocking client for the line protocol, used by the
//! integration tests and `servebench` (and usable as a reference
//! implementation for real clients).

use crate::json::Json;
use crate::protocol::{ErrorKind, Request, ServerStats};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection speaking one request/response pair at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The resolved peer address, kept for transparent reconnects in
    /// [`Client::call_retry`].
    addr: Option<SocketAddr>,
}

/// Jittered exponential backoff for requests the server answered with a
/// retryable reject (`overloaded`, `deadline_exceeded` — see
/// [`ErrorKind::is_retryable`]: both guarantee the request touched no
/// session state, so resending is always safe). Optionally also retries
/// transient transport errors, but only for requests that are idempotent
/// at the protocol level (`info`, `stats`) — a `decide` lost mid-wire may
/// or may not have been applied, and blindly resending it would append
/// its prices twice.
///
/// The backoff for attempt *n* is drawn uniformly from
/// `[base·2ⁿ/2, base·2ⁿ]` (capped at `cap`) off a deterministic
/// seeded generator, so concurrent clients decorrelate instead of
/// re-colliding in lockstep, and tests replay exact schedules.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound any single backoff is clamped to.
    pub cap: Duration,
    /// Also retry transient transport errors (connection reset/closed),
    /// reconnecting first. Applied to idempotent requests only.
    pub retry_io: bool,
    /// Retries taken across every call using this policy — observability
    /// for harnesses like `servebench`.
    pub retries_taken: u64,
    state: u64,
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts, 1 ms initial backoff,
    /// 100 ms cap, no transport retries, and a fixed jitter seed.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            retry_io: false,
            retries_taken: 0,
            state: 0x5eed_c170 ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Reseeds the jitter stream (give every concurrent client its own
    /// seed so their backoffs decorrelate deterministically).
    pub fn seeded(mut self, seed: u64) -> RetryPolicy {
        self.state = seed ^ 0xA076_1D64_78BD_642F;
        self
    }

    /// Enables reconnect-and-retry on transient transport errors for
    /// idempotent requests.
    pub fn with_io_retries(mut self) -> RetryPolicy {
        self.retry_io = true;
        self
    }

    /// splitmix64 step — a tiny deterministic generator, no dependencies.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The jittered backoff for retry number `attempt` (0-based).
    pub fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap)
            .max(Duration::from_micros(1));
        // Uniform in [exp/2, exp]: full jitter re-collides rarely, zero
        // jitter re-collides always; half-open is the usual compromise.
        let frac = 0.5 + 0.5 * (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(frac)
    }
}

/// Transport errors worth a reconnect: the peer vanished mid-exchange.
/// `InvalidData` (a malformed response) is *not* transient — retrying a
/// protocol bug just hides it.
fn transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Requests safe to resend when the transport died mid-exchange: they
/// mutate nothing, so at-least-once delivery is indistinguishable from
/// exactly-once.
fn idempotent(req: &Request) -> bool {
    matches!(req, Request::Info | Request::InfoAs { .. } | Request::Stats)
}

/// A client-side view of a response line: the raw JSON plus accessors
/// for the common fields.
#[derive(Debug, Clone)]
pub struct Reply {
    json: Json,
}

impl Reply {
    /// `true` when the server accepted the request.
    pub fn ok(&self) -> bool {
        self.json.get("ok").and_then(Json::as_bool).unwrap_or(false)
    }

    /// The reject class of a failed request.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        self.json
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ErrorKind::from_tag)
    }

    /// The server's error message, if any.
    pub fn error_message(&self) -> Option<&str> {
        self.json.get("error").and_then(Json::as_str)
    }

    /// The decision's fused portfolio weights.
    pub fn final_action(&self) -> Option<Vec<f64>> {
        self.json.get("final_action").and_then(Json::as_f64_array)
    }

    /// The decision's per-horizon pre-decisions.
    pub fn pre_actions(&self) -> Option<Vec<Vec<f64>>> {
        self.json.get("pre_actions").and_then(Json::as_f64_matrix)
    }

    /// The model-slot echo of an `open`/`decide`/`info`/`reload`
    /// response — `None` on responses to model-oblivious requests (the
    /// server omits the field for byte-compatibility).
    pub fn model(&self) -> Option<&str> {
        self.json.get("model").and_then(Json::as_str)
    }

    /// Any numeric field (e.g. `day`, `days`, `num_params`).
    pub fn number(&self, field: &str) -> Option<f64> {
        self.json.get(field).and_then(Json::as_f64)
    }

    /// The typed payload of a successful `stats` response.
    pub fn stats(&self) -> Option<ServerStats> {
        ServerStats::from_json(&self.json)
    }

    /// The raw parsed JSON.
    pub fn json(&self) -> &Json {
        &self.json
    }
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let peer = writer.peer_addr().ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            addr: peer,
        })
    }

    /// Connects with a deadline on both the TCP connect and every later
    /// read — for tools (like `cit-top`) that must fail with a clear
    /// error instead of hanging on an unreachable or wedged server.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let writer = TcpStream::connect_timeout(&addr, timeout)?;
        writer.set_nodelay(true)?;
        writer.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            addr: Some(addr),
        })
    }

    /// Drops the current socket and dials the same address again. Errors
    /// when the original address is unknown (connected through a resolver
    /// that yielded none) or the server is unreachable.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let addr = self.addr.ok_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "peer address unknown")
        })?;
        *self = Client::connect(addr)?;
        self.addr = Some(addr);
        Ok(())
    }

    /// Sends one raw line and reads one response line.
    pub fn call_line(&mut self, line: &str) -> io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let json = Json::parse(response.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response JSON: {e}"),
            )
        })?;
        Ok(Reply { json })
    }

    /// Sends a typed [`Request`].
    pub fn call(&mut self, req: &Request) -> io::Result<Reply> {
        self.call_line(&req.render())
    }

    /// [`Client::call`] with retries under `policy`.
    ///
    /// Retryable rejects (`overloaded`, `deadline_exceeded`) are retried
    /// for every request kind — the server guarantees it answered them
    /// before touching any session state. Transport errors are retried
    /// (after a reconnect) only when the policy opted in *and* the
    /// request is idempotent. Everything else — typed non-retryable
    /// errors, exhausted attempts — is returned as-is.
    pub fn call_retry(&mut self, req: &Request, policy: &mut RetryPolicy) -> io::Result<Reply> {
        let mut attempt = 0u32;
        loop {
            match self.call(req) {
                Ok(reply) => {
                    let retryable =
                        !reply.ok() && reply.error_kind().is_some_and(ErrorKind::is_retryable);
                    if retryable && attempt + 1 < policy.max_attempts {
                        std::thread::sleep(policy.backoff(attempt));
                        policy.retries_taken += 1;
                        attempt += 1;
                        continue;
                    }
                    return Ok(reply);
                }
                Err(e) => {
                    let worth_it = policy.retry_io
                        && idempotent(req)
                        && transient_io(&e)
                        && attempt + 1 < policy.max_attempts;
                    if !worth_it {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    policy.retries_taken += 1;
                    attempt += 1;
                    self.reconnect()?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_capped_and_deterministic() {
        let mut a = RetryPolicy::new(8).seeded(7);
        let mut b = RetryPolicy::new(8).seeded(7);
        for attempt in 0..8 {
            let d = a.backoff(attempt);
            // Same seed, same schedule.
            assert_eq!(d, b.backoff(attempt));
            // Within [base/2 · 2ⁿ, cap].
            assert!(d <= a.cap);
            assert!(d >= a.base.saturating_mul(1 << attempt).min(a.cap) / 2);
        }
        // Different seeds decorrelate.
        let mut c = RetryPolicy::new(8).seeded(8);
        assert_ne!(c.backoff(3), RetryPolicy::new(8).seeded(7).backoff(3));
    }

    #[test]
    fn only_control_plane_requests_are_idempotent() {
        assert!(idempotent(&Request::Info));
        assert!(idempotent(&Request::InfoAs {
            model: "alt".into()
        }));
        assert!(idempotent(&Request::Stats));
        assert!(!idempotent(&Request::Decide {
            session: "s".into(),
            prices: vec![],
        }));
        assert!(!idempotent(&Request::Close {
            session: "s".into()
        }));
    }
}
