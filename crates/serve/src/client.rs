//! A small blocking client for the line protocol, used by the
//! integration tests and `servebench` (and usable as a reference
//! implementation for real clients).

use crate::json::Json;
use crate::protocol::{ErrorKind, Request, ServerStats};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection speaking one request/response pair at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A client-side view of a response line: the raw JSON plus accessors
/// for the common fields.
#[derive(Debug, Clone)]
pub struct Reply {
    json: Json,
}

impl Reply {
    /// `true` when the server accepted the request.
    pub fn ok(&self) -> bool {
        self.json.get("ok").and_then(Json::as_bool).unwrap_or(false)
    }

    /// The reject class of a failed request.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        self.json
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ErrorKind::from_tag)
    }

    /// The server's error message, if any.
    pub fn error_message(&self) -> Option<&str> {
        self.json.get("error").and_then(Json::as_str)
    }

    /// The decision's fused portfolio weights.
    pub fn final_action(&self) -> Option<Vec<f64>> {
        self.json.get("final_action").and_then(Json::as_f64_array)
    }

    /// The decision's per-horizon pre-decisions.
    pub fn pre_actions(&self) -> Option<Vec<Vec<f64>>> {
        self.json.get("pre_actions").and_then(Json::as_f64_matrix)
    }

    /// Any numeric field (e.g. `day`, `days`, `num_params`).
    pub fn number(&self, field: &str) -> Option<f64> {
        self.json.get(field).and_then(Json::as_f64)
    }

    /// The typed payload of a successful `stats` response.
    pub fn stats(&self) -> Option<ServerStats> {
        ServerStats::from_json(&self.json)
    }

    /// The raw parsed JSON.
    pub fn json(&self) -> &Json {
        &self.json
    }
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Connects with a deadline on both the TCP connect and every later
    /// read — for tools (like `cit-top`) that must fail with a clear
    /// error instead of hanging on an unreachable or wedged server.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let writer = TcpStream::connect_timeout(&addr, timeout)?;
        writer.set_nodelay(true)?;
        writer.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one raw line and reads one response line.
    pub fn call_line(&mut self, line: &str) -> io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let json = Json::parse(response.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response JSON: {e}"),
            )
        })?;
        Ok(Reply { json })
    }

    /// Sends a typed [`Request`].
    pub fn call(&mut self, req: &Request) -> io::Result<Reply> {
        self.call_line(&req.render())
    }
}
