//! Per-client serving sessions and the sharded store that holds them.
//!
//! A session is the mutable half of online inference: the rolling price
//! history, the incremental DWT cache and each horizon policy's previous
//! action. The model itself is immutable and shared — see
//! [`cit_core::DecisionModel`].

use crate::protocol::{ErrorKind, Response};
use crate::spill::{checksum64, SpillDir, SpillError, SPILL_MAGIC};
use cit_core::{DecisionModel, HorizonWindowCache};
use cit_market::{AssetPanel, NUM_FEATURES};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One client's serving state: price history plus the carried decision
/// state (`SlidingDwt` windows via [`HorizonWindowCache`], previous
/// per-policy actions).
pub struct Session {
    name: String,
    /// The model slot this session is pinned to for life — carried
    /// through disk spill so a restart restores the session against the
    /// same model (empty = default slot, for sessions opened without a
    /// `model` field).
    model: String,
    num_assets: usize,
    /// Day-major `[days, m, 4]` history, trimmed to `max_history` days.
    hist: Vec<f64>,
    /// Days currently held in `hist`.
    days: usize,
    /// Days ever pushed (absolute day index = `total_days - 1`). Survives
    /// trimming, so clients see a monotone day counter.
    total_days: usize,
    prev_actions: Vec<Vec<f64>>,
    cache: HorizonWindowCache,
    max_history: usize,
    /// Last time the session was inserted or checked back in; the basis
    /// for idle-TTL eviction.
    last_used: Instant,
}

impl Session {
    /// Creates a session seeded with `prices` (one `[m·4]` row per day),
    /// pinned to model slot `slot` (empty = default). Needs at least
    /// `model.min_history()` days.
    pub fn open(
        model: &DecisionModel,
        name: &str,
        slot: &str,
        prices: &[Vec<f64>],
        max_history: usize,
    ) -> Result<Session, Response> {
        let window = model.min_history();
        if prices.len() < window.max(2) {
            return Err(Response::error(
                ErrorKind::BadData,
                format!(
                    "open needs at least {} days of history, got {}",
                    window.max(2),
                    prices.len()
                ),
            ));
        }
        let mut session = Session {
            name: name.to_string(),
            model: slot.to_string(),
            num_assets: model.num_assets(),
            hist: Vec::new(),
            days: 0,
            total_days: 0,
            prev_actions: model.uniform_prev_actions(),
            cache: model.new_cache(),
            max_history: max_history.max(2 * window),
            last_used: Instant::now(),
        };
        session.push_days(model, prices)?;
        Ok(session)
    }

    /// The session id.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model slot the session is pinned to (empty = default slot).
    pub fn model_name(&self) -> &str {
        &self.model
    }

    /// Days of history currently held (after trimming).
    pub fn days(&self) -> usize {
        self.days
    }

    /// Absolute day index of the latest day (`total pushed - 1`).
    pub fn current_day(&self) -> usize {
        self.total_days - 1
    }

    /// Appends days of OHLC rows, validating width and positivity.
    pub fn push_days(
        &mut self,
        model: &DecisionModel,
        prices: &[Vec<f64>],
    ) -> Result<(), Response> {
        let row = self.num_assets * NUM_FEATURES;
        for (i, day) in prices.iter().enumerate() {
            if day.len() != row {
                return Err(Response::error(
                    ErrorKind::BadData,
                    format!(
                        "day {i}: expected {row} values ({} assets × {NUM_FEATURES} OHLC), got {}",
                        self.num_assets,
                        day.len()
                    ),
                ));
            }
            if let Some(bad) = day.iter().find(|p| !(p.is_finite() && **p > 0.0)) {
                return Err(Response::error(
                    ErrorKind::BadData,
                    format!("day {i}: prices must be positive and finite, got {bad}"),
                ));
            }
        }
        for day in prices {
            self.hist.extend_from_slice(day);
        }
        self.days += prices.len();
        self.total_days += prices.len();
        self.trim(model);
        Ok(())
    }

    /// Bounds memory: once the history exceeds `max_history` days, keep
    /// the most recent half (never fewer than the model window). Decisions
    /// only read the trailing `window` days, so trimming cannot change
    /// them; the DWT cache is keyed by in-panel day indices, which shift,
    /// so it is rebuilt (one full recompute, bitwise-equal by the
    /// `SlidingDwt` contract).
    fn trim(&mut self, model: &DecisionModel) {
        if self.days <= self.max_history {
            return;
        }
        let keep = (self.max_history / 2).max(model.min_history()).max(2);
        let row = self.num_assets * NUM_FEATURES;
        self.hist.drain(..(self.days - keep) * row);
        self.days = keep;
        self.cache = model.new_cache();
    }

    /// Appends `prices` (possibly empty), then decides on the latest day.
    /// On success the per-policy previous actions advance, mirroring the
    /// trainer's evaluation loop.
    pub fn decide(
        &mut self,
        model: &DecisionModel,
        prices: &[Vec<f64>],
    ) -> Result<Response, Response> {
        self.push_days(model, prices)?;
        if self.days < model.min_history() {
            return Err(Response::error(
                ErrorKind::BadData,
                format!(
                    "decide needs {} days of history, session holds {}",
                    model.min_history(),
                    self.days
                ),
            ));
        }
        let t = self.days - 1;
        let panel = AssetPanel::try_new(
            self.name.clone(),
            self.days,
            self.num_assets,
            self.hist.clone(),
            t,
        )
        .map_err(|e| Response::error(ErrorKind::BadData, e.to_string()))?;
        let out = model.decide(&panel, t, &self.prev_actions, &mut self.cache);
        self.prev_actions.clone_from(&out.pre_actions);
        Ok(Response::Decision {
            session: self.name.clone(),
            day: self.current_day(),
            final_action: out.final_action,
            pre_actions: out.pre_actions,
            model: self.model.clone(),
        })
    }

    /// Serializes the session for disk spill. Every `f64` travels as its
    /// exact bit pattern (little-endian `u64`), so restore is lossless.
    /// The DWT cache is deliberately excluded: it is rebuilt on restore,
    /// which the `SlidingDwt` contract guarantees is decision-invariant.
    /// The payload ends in a [`checksum64`] trailer over everything
    /// before it, so truncation and bit-flips are detected on restore.
    /// The format (`CITSESS3`) carries the model-slot pin right after
    /// the session name, so a restart restores every session against the
    /// model it was opened on.
    pub(crate) fn spill_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96 + self.hist.len() * 8);
        out.extend_from_slice(SPILL_MAGIC);
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push_u64(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        push_u64(&mut out, self.model.len() as u64);
        out.extend_from_slice(self.model.as_bytes());
        push_u64(&mut out, self.num_assets as u64);
        push_u64(&mut out, self.days as u64);
        push_u64(&mut out, self.total_days as u64);
        push_u64(&mut out, self.max_history as u64);
        push_u64(&mut out, self.hist.len() as u64);
        for v in &self.hist {
            push_u64(&mut out, v.to_bits());
        }
        push_u64(&mut out, self.prev_actions.len() as u64);
        for action in &self.prev_actions {
            push_u64(&mut out, action.len() as u64);
            for v in action {
                push_u64(&mut out, v.to_bits());
            }
        }
        let sum = checksum64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Rebuilds a session from [`Session::spill_bytes`] output,
    /// verifying the checksum trailer and validating shape compatibility
    /// against the active `model`. [`SpillError::Corrupt`] means the
    /// bytes themselves are damaged (truncation, bit-flip, bad magic) —
    /// the caller quarantines the file; [`SpillError::Incompatible`]
    /// means an intact file that does not fit the served model.
    pub(crate) fn from_spill_bytes(
        bytes: &[u8],
        model: &DecisionModel,
    ) -> Result<Session, SpillError> {
        let corrupt = |m: &str| SpillError::Corrupt(m.to_string());
        // Magic first: a file that was never ours is reported as such
        // even when it is too short to carry a checksum trailer.
        if bytes.len() < SPILL_MAGIC.len() || &bytes[..SPILL_MAGIC.len()] != SPILL_MAGIC {
            return Err(corrupt("not a cit-serve spill file (bad magic)"));
        }
        if bytes.len() < SPILL_MAGIC.len() + 8 {
            return Err(corrupt("truncated spill file (no checksum trailer)"));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if checksum64(payload) != stored {
            return Err(corrupt(
                "spill checksum mismatch (truncated or corrupted on disk)",
            ));
        }
        let bytes = payload;
        let mut pos = SPILL_MAGIC.len();
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SpillError> {
            let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| corrupt("truncated spill file"))?;
            let slice = &bytes[*pos..end];
            *pos = end;
            Ok(slice)
        };
        let take_u64 = |pos: &mut usize| -> Result<u64, SpillError> {
            let b = take(pos, 8)?;
            Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
        };
        let name_len = take_u64(&mut pos)? as usize;
        if name_len > 4096 {
            return Err(corrupt("implausible session name length"));
        }
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| corrupt("session name is not UTF-8"))?;
        let model_len = take_u64(&mut pos)? as usize;
        if model_len > 4096 {
            return Err(corrupt("implausible model slot name length"));
        }
        let model_name = String::from_utf8(take(&mut pos, model_len)?.to_vec())
            .map_err(|_| corrupt("model slot name is not UTF-8"))?;
        let num_assets = take_u64(&mut pos)? as usize;
        let days = take_u64(&mut pos)? as usize;
        let total_days = take_u64(&mut pos)? as usize;
        let max_history = take_u64(&mut pos)? as usize;
        let hist_len = take_u64(&mut pos)? as usize;
        if hist_len != days * num_assets * NUM_FEATURES {
            return Err(corrupt(&format!(
                "spill history length {hist_len} does not match {days} days × {num_assets} assets"
            )));
        }
        let mut hist = Vec::with_capacity(hist_len);
        for _ in 0..hist_len {
            hist.push(f64::from_bits(take_u64(&mut pos)?));
        }
        let n_prev = take_u64(&mut pos)? as usize;
        if n_prev > 4096 {
            return Err(corrupt("implausible policy count"));
        }
        let mut prev_actions = Vec::with_capacity(n_prev);
        for _ in 0..n_prev {
            let len = take_u64(&mut pos)? as usize;
            let mut action = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                action.push(f64::from_bits(take_u64(&mut pos)?));
            }
            prev_actions.push(action);
        }
        if num_assets != model.num_assets() {
            return Err(SpillError::Incompatible(format!(
                "spilled session has {num_assets} assets, the served model expects {}",
                model.num_assets()
            )));
        }
        let expected_prev = model.uniform_prev_actions();
        if prev_actions.len() != expected_prev.len()
            || prev_actions
                .iter()
                .zip(&expected_prev)
                .any(|(a, e)| a.len() != e.len())
        {
            return Err(SpillError::Incompatible(
                "spilled session's policy state does not match the served model".into(),
            ));
        }
        if days < model.min_history().max(2) || total_days < days {
            return Err(SpillError::Incompatible(
                "spilled session holds too little history for the served model".into(),
            ));
        }
        Ok(Session {
            name,
            model: model_name,
            num_assets,
            hist,
            days,
            total_days,
            prev_actions,
            cache: model.new_cache(),
            max_history,
            last_used: Instant::now(),
        })
    }
}

/// The identity header of a spill file: who it is and which model slot
/// it is pinned to — enough for the restore path to resolve the right
/// model *before* the full shape-validating parse.
pub(crate) struct SpillHeader {
    pub(crate) name: String,
    pub(crate) model: String,
}

/// Reads just the identity header of [`Session::spill_bytes`] output,
/// after verifying magic and the checksum trailer (so a header from a
/// damaged file is never trusted).
pub(crate) fn spill_peek(bytes: &[u8]) -> Result<SpillHeader, SpillError> {
    let corrupt = |m: &str| SpillError::Corrupt(m.to_string());
    if bytes.len() < SPILL_MAGIC.len() || &bytes[..SPILL_MAGIC.len()] != SPILL_MAGIC {
        return Err(corrupt("not a cit-serve spill file (bad magic)"));
    }
    if bytes.len() < SPILL_MAGIC.len() + 8 {
        return Err(corrupt("truncated spill file (no checksum trailer)"));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if checksum64(payload) != stored {
        return Err(corrupt(
            "spill checksum mismatch (truncated or corrupted on disk)",
        ));
    }
    let mut pos = SPILL_MAGIC.len();
    let mut take_str = |label: &str| -> Result<String, SpillError> {
        let len_bytes = payload
            .get(pos..pos + 8)
            .ok_or_else(|| corrupt("truncated spill file"))?;
        pos += 8;
        let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
        if len > 4096 {
            return Err(corrupt(&format!("implausible {label} length")));
        }
        let s = payload
            .get(pos..pos + len)
            .ok_or_else(|| corrupt("truncated spill file"))?;
        pos += len;
        String::from_utf8(s.to_vec()).map_err(|_| corrupt(&format!("{label} is not UTF-8")))
    };
    Ok(SpillHeader {
        name: take_str("session name")?,
        model: take_str("model slot name")?,
    })
}

/// A sharded session map: sessions hash to one of `shards` independent
/// mutexes, so connection threads opening/closing sessions contend only
/// within a shard while the batcher checks sessions in and out.
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<String, Session>>>,
}

impl SessionStore {
    /// Creates a store with `shards` shards (minimum 1).
    pub fn new(shards: usize) -> SessionStore {
        SessionStore {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Session>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Inserts a new session; fails when the id is taken.
    pub fn insert(&self, session: Session) -> Result<(), Response> {
        let mut shard = self
            .shard(session.name())
            .lock()
            .expect("session shard poisoned");
        if shard.contains_key(session.name()) {
            return Err(Response::error(
                ErrorKind::SessionExists,
                format!("session {:?} already exists", session.name()),
            ));
        }
        shard.insert(session.name().to_string(), session);
        Ok(())
    }

    /// Removes and returns a session (checkout for the batcher, or
    /// permanent removal for `close`).
    pub fn take(&self, name: &str) -> Option<Session> {
        self.shard(name)
            .lock()
            .expect("session shard poisoned")
            .remove(name)
    }

    /// Returns a checked-out session to the store, refreshing its
    /// idle-eviction clock.
    pub fn put_back(&self, mut session: Session) {
        session.last_used = Instant::now();
        self.shard(session.name())
            .lock()
            .expect("session shard poisoned")
            .insert(session.name().to_string(), session);
    }

    /// Spills every session idle longer than `ttl` to `spill` and
    /// removes it from the store. The spill write happens **while the
    /// shard lock is held**, so a concurrent decide either finds the
    /// session still resident or finds the complete spill file — never a
    /// gap in between. Checked-out sessions (mid-decide) are not in the
    /// store and therefore can never be evicted mid-flight. Returns the
    /// number evicted; a session whose spill write fails stays resident.
    pub(crate) fn evict_idle(&self, ttl: Duration, spill: &SpillDir) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("session shard poisoned");
            let idle: Vec<String> = shard
                .iter()
                .filter(|(_, s)| s.last_used.elapsed() >= ttl)
                .map(|(name, _)| name.clone())
                .collect();
            for name in idle {
                let session = shard.get(&name).expect("listed above");
                if spill.write(session).is_ok() {
                    shard.remove(&name);
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Spills **every** resident session (graceful-shutdown persistence).
    /// Returns the number written; sessions whose write fails are left
    /// resident (and are lost when the process exits — the caller may
    /// log the shortfall).
    pub(crate) fn spill_all(&self, spill: &SpillDir) -> usize {
        let mut written = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("session shard poisoned");
            let names: Vec<String> = shard.keys().cloned().collect();
            for name in names {
                let session = shard.get(&name).expect("listed above");
                if spill.write(session).is_ok() {
                    shard.remove(&name);
                    written += 1;
                }
            }
        }
        written
    }

    /// Resident session counts keyed by model pin (sessions opened
    /// without a `model` field count under the empty key). A full-store
    /// scan — fine for the `stats` op, not for hot paths.
    pub(crate) fn count_by_model(&self) -> HashMap<String, usize> {
        let mut counts = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("session shard poisoned");
            for session in shard.values() {
                *counts.entry(session.model.clone()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Live session count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("session shard poisoned").len())
            .sum()
    }

    /// `true` when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_core::CitConfig;
    use cit_market::SynthConfig;

    fn model() -> DecisionModel {
        DecisionModel::untrained(CitConfig::smoke(7), 2).expect("smoke config is valid")
    }

    fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
        use cit_market::Feature;
        (from..to)
            .map(|t| {
                (0..panel.num_assets())
                    .flat_map(|i| {
                        [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                            .into_iter()
                            .map(move |f| panel.price(t, i, f))
                    })
                    .collect()
            })
            .collect()
    }

    fn synth() -> AssetPanel {
        SynthConfig {
            num_assets: 2,
            num_days: 120,
            test_start: 100,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn open_requires_window_days() {
        let m = model();
        let p = synth();
        let too_short = rows(&p, 0, m.min_history() - 1);
        assert!(Session::open(&m, "s", "", &too_short, 256).is_err());
        let enough = rows(&p, 0, m.min_history());
        assert!(Session::open(&m, "s", "", &enough, 256).is_ok());
    }

    #[test]
    fn decide_carries_prev_actions_and_day_counter() {
        let m = model();
        let p = synth();
        let mut s = Session::open(&m, "s", "", &rows(&p, 0, 30), 256).unwrap();
        let r1 = s.decide(&m, &[]).unwrap();
        let Response::Decision { day, .. } = &r1 else {
            panic!("expected decision")
        };
        assert_eq!(*day, 29);
        let r2 = s.decide(&m, &rows(&p, 30, 31)).unwrap();
        let Response::Decision { day, .. } = &r2 else {
            panic!("expected decision")
        };
        assert_eq!(*day, 30);
    }

    #[test]
    fn trimming_never_changes_decisions() {
        let m = model();
        let p = synth();
        // Session A trims aggressively; session B keeps everything.
        let mut a = Session::open(&m, "a", "", &rows(&p, 0, 30), 40).unwrap();
        let mut b = Session::open(&m, "b", "", &rows(&p, 0, 30), 100_000).unwrap();
        for t in 30..100 {
            let day = rows(&p, t, t + 1);
            let ra = a.decide(&m, &day).unwrap();
            let rb = b.decide(&m, &day).unwrap();
            let (
                Response::Decision {
                    final_action: fa, ..
                },
                Response::Decision {
                    final_action: fb, ..
                },
            ) = (&ra, &rb)
            else {
                panic!("expected decisions")
            };
            assert_eq!(fa, fb, "trimmed session diverged at t={t}");
        }
        assert!(a.days() < b.days(), "session a should have trimmed");
    }

    #[test]
    fn store_rejects_duplicate_ids_and_counts() {
        let m = model();
        let p = synth();
        let store = SessionStore::new(4);
        store
            .insert(Session::open(&m, "x", "", &rows(&p, 0, 30), 256).unwrap())
            .unwrap();
        assert!(store
            .insert(Session::open(&m, "x", "", &rows(&p, 0, 30), 256).unwrap())
            .is_err());
        assert_eq!(store.len(), 1);
        let s = store.take("x").unwrap();
        assert!(store.is_empty());
        store.put_back(s);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn spill_round_trip_is_bitwise_decision_invariant() {
        let m = model();
        let p = synth();
        // Control session decides straight through; the probe session is
        // serialized and restored mid-stream.
        let mut control = Session::open(&m, "s", "", &rows(&p, 0, 40), 256).unwrap();
        let mut probe = Session::open(&m, "s", "", &rows(&p, 0, 40), 256).unwrap();
        for t in 40..60 {
            let day = rows(&p, t, t + 1);
            let rc = control.decide(&m, &day).unwrap();
            if t % 3 == 0 {
                probe = Session::from_spill_bytes(&probe.spill_bytes(), &m).unwrap();
            }
            let rp = probe.decide(&m, &day).unwrap();
            let (
                Response::Decision {
                    final_action: fa,
                    pre_actions: pa,
                    ..
                },
                Response::Decision {
                    final_action: fb,
                    pre_actions: pb,
                    ..
                },
            ) = (&rc, &rp)
            else {
                panic!("expected decisions")
            };
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(fa), bits(fb), "restored session diverged at t={t}");
            for (a, b) in pa.iter().zip(pb) {
                assert_eq!(bits(a), bits(b), "pre-actions diverged at t={t}");
            }
        }
    }

    #[test]
    fn spill_rejects_corrupt_and_mismatched_payloads() {
        let m = model();
        let p = synth();
        let s = Session::open(&m, "s", "", &rows(&p, 0, 40), 256).unwrap();
        let good = s.spill_bytes();
        assert!(Session::from_spill_bytes(&good[..good.len() - 3], &m).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(Session::from_spill_bytes(&bad_magic, &m).is_err());
        // A model with a different asset count must refuse the payload —
        // as Incompatible (intact file, wrong server), not Corrupt.
        let other = DecisionModel::untrained(CitConfig::smoke(7), 3).expect("valid");
        assert!(matches!(
            Session::from_spill_bytes(&good, &other),
            Err(SpillError::Incompatible(_))
        ));
    }

    /// Truncation at *every* byte boundary, a flipped checksum trailer
    /// and every single-byte flip of the payload must come back as
    /// [`SpillError::Corrupt`] — never a panic, never a silently wrong
    /// session. This is the integrity contract quarantining rests on.
    #[test]
    fn spill_detects_every_truncation_and_bitflip() {
        let m = model();
        let p = synth();
        let s = Session::open(&m, "trunc", "", &rows(&p, 0, 40), 256).unwrap();
        let good = s.spill_bytes();
        assert!(Session::from_spill_bytes(&good, &m).is_ok());
        for cut in 0..good.len() {
            assert!(
                matches!(
                    Session::from_spill_bytes(&good[..cut], &m),
                    Err(SpillError::Corrupt(_))
                ),
                "truncation to {cut}/{} bytes was not detected as corrupt",
                good.len()
            );
        }
        let mut flipped = good.clone();
        for i in 0..flipped.len() {
            flipped[i] ^= 0x01;
            assert!(
                matches!(
                    Session::from_spill_bytes(&flipped, &m),
                    Err(SpillError::Corrupt(_))
                ),
                "bit-flip at byte {i} was not detected as corrupt"
            );
            flipped[i] ^= 0x01;
        }
    }

    #[test]
    fn spill_carries_the_model_pin() {
        let m = model();
        let p = synth();
        let s = Session::open(&m, "pin", "alt", &rows(&p, 0, 40), 256).unwrap();
        assert_eq!(s.model_name(), "alt");
        let bytes = s.spill_bytes();
        // The cheap header peek and the full parse agree on identity.
        let header = spill_peek(&bytes).unwrap();
        assert_eq!(header.name, "pin");
        assert_eq!(header.model, "alt");
        let restored = Session::from_spill_bytes(&bytes, &m).unwrap();
        assert_eq!(restored.model_name(), "alt");
        // A damaged header is never trusted.
        let mut bad = bytes.clone();
        bad[9] ^= 0xff;
        assert!(matches!(spill_peek(&bad), Err(SpillError::Corrupt(_))));
        assert!(matches!(
            spill_peek(&bytes[..20]),
            Err(SpillError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_bad_rows() {
        let m = model();
        let p = synth();
        let mut s = Session::open(&m, "s", "", &rows(&p, 0, 30), 256).unwrap();
        assert!(s.decide(&m, &[vec![1.0; 3]]).is_err()); // wrong width
        assert!(s.decide(&m, &[vec![-1.0; 8]]).is_err()); // negative price
                                                          // Session still usable after rejects.
        assert!(s.decide(&m, &rows(&p, 30, 31)).is_ok());
    }
}
