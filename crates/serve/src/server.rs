//! The blocking TCP server: accept pool, connection threads, hot reload,
//! graceful drain, and the live metrics plane (`stats` op + optional
//! admin exposition listener).

use crate::batch::{run_batcher, DepthGuard, Job};
use crate::protocol::{ErrorKind, OpStats, Request, Response, ServerStats, WindowStats};
use crate::session::SessionStore;
use cit_core::{CitConfig, DecisionModel};
use cit_telemetry::{
    duration_bounds, Counter, Gauge, Histogram, NoopSink, RollingHistogram, Telemetry,
    WindowedCounter, DEFAULT_WINDOWS,
};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the default
    /// `127.0.0.1:0`).
    pub addr: String,
    /// Most requests one batch may hold.
    pub max_batch: usize,
    /// How long the batcher waits for more work after the first request
    /// of a batch, in microseconds.
    pub max_wait_us: u64,
    /// Bounded queue depth between connection threads and the batcher;
    /// a full queue rejects with [`ErrorKind::Overloaded`].
    pub queue_cap: usize,
    /// Worker threads for in-batch parallelism (0 = auto, honouring
    /// `CIT_THREADS`).
    pub threads: usize,
    /// Shards of the session store.
    pub shards: usize,
    /// Days of price history a session may hold before the oldest half is
    /// trimmed (decisions only need the model window).
    pub max_history: usize,
    /// Honour the `sleep` debug op (tests use it to stall the batcher
    /// deterministically; keep off in production).
    pub debug_ops: bool,
    /// Optional bind address for the admin listener answering plain-HTTP
    /// `GET /metrics` (Prometheus-style text exposition) and `GET /stats`
    /// (the JSON snapshot) — scrapable without speaking the line
    /// protocol. `None` (the default) disables it.
    pub admin_addr: Option<String>,
    /// Identity label of the model the server started with, reported by
    /// the `stats` op until a `reload` replaces it with the new
    /// checkpoint's path.
    pub checkpoint_label: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_wait_us: 500,
            queue_cap: 128,
            threads: 0,
            shards: 16,
            max_history: 4096,
            debug_ops: false,
            admin_addr: None,
            checkpoint_label: "unnamed".to_string(),
        }
    }
}

/// Operation names the server breaks request metrics down by; `other`
/// collects unparseable requests.
pub(crate) const OP_NAMES: [&str; 8] = [
    "open", "decide", "close", "info", "stats", "reload", "sleep", "other",
];

/// Per-op instruments: request/error counters plus a latency histogram.
pub(crate) struct OpInstruments {
    pub(crate) requests: Counter,
    pub(crate) errors: Counter,
    pub(crate) latency: Histogram,
}

/// Shared server state: the hot-swappable model, the session store, the
/// drain flag and the telemetry instruments.
pub(crate) struct ServerState {
    pub(crate) listen_addr: SocketAddr,
    pub(crate) model: RwLock<Arc<DecisionModel>>,
    pub(crate) model_cfg: CitConfig,
    pub(crate) num_assets: usize,
    pub(crate) cfg: ServeConfig,
    pub(crate) store: SessionStore,
    pub(crate) threads: usize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) telemetry: Telemetry,
    pub(crate) latency: Histogram,
    pub(crate) requests: Counter,
    pub(crate) rejects: Counter,
    pub(crate) batch_size: Histogram,
    pub(crate) reloads: Counter,
    pub(crate) sessions_gauge: Gauge,
    /// When the server started (uptime basis for `stats`).
    pub(crate) started: Instant,
    /// Jobs currently sitting in (or just leaving) the batcher queue,
    /// maintained by [`DepthGuard`] so every exit path decrements.
    pub(crate) queue_depth: Arc<AtomicI64>,
    pub(crate) queue_gauge: Gauge,
    /// Identity of the loaded checkpoint (updated by `reload`).
    pub(crate) checkpoint: RwLock<String>,
    /// Every request (any op) for live req/s.
    pub(crate) requests_window: WindowedCounter,
    /// Every request's wall latency for live p50/p95/p99.
    pub(crate) latency_window: RollingHistogram,
    /// Per-op breakdown, indexed like [`OP_NAMES`].
    pub(crate) ops: Vec<OpInstruments>,
    /// Per-reject-class counters, indexed like [`ErrorKind::ALL`].
    pub(crate) error_kinds: Vec<Counter>,
}

impl ServerState {
    /// Records one answered request into the live metrics plane:
    /// aggregate window instruments, the per-op breakdown, and — when the
    /// response is an error — the per-kind error counters.
    pub(crate) fn observe(&self, op_idx: usize, resp: &Response, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.requests_window.inc();
        self.latency_window.record(secs);
        let op = &self.ops[op_idx];
        op.requests.inc();
        op.latency.record(secs);
        if let Response::Error { kind, .. } = resp {
            op.errors.inc();
            if let Some(i) = ErrorKind::ALL.iter().position(|k| k == kind) {
                self.error_kinds[i].inc();
            }
            if *kind == ErrorKind::Overloaded {
                self.rejects.inc();
            }
        }
    }

    /// Builds the `stats` payload from the live instruments.
    pub(crate) fn build_stats(&self) -> ServerStats {
        let windows = DEFAULT_WINDOWS
            .iter()
            .map(|&secs| {
                let lat = self.latency_window.window(secs);
                WindowStats {
                    secs,
                    requests: self.requests_window.window_count(secs),
                    req_per_s: self.requests_window.rate(secs),
                    p50_us: lat.quantile(0.5) * 1e6,
                    p95_us: lat.quantile(0.95) * 1e6,
                    p99_us: lat.quantile(0.99) * 1e6,
                }
            })
            .collect();
        let ops = OP_NAMES
            .iter()
            .zip(&self.ops)
            .filter(|(_, i)| i.requests.get() > 0)
            .map(|(name, i)| OpStats {
                op: name.to_string(),
                requests: i.requests.get(),
                errors: i.errors.get(),
                p50_us: i.latency.quantile(0.5) * 1e6,
                p99_us: i.latency.quantile(0.99) * 1e6,
            })
            .collect();
        let errors: Vec<(String, u64)> = ErrorKind::ALL
            .iter()
            .zip(&self.error_kinds)
            .filter(|(_, c)| c.get() > 0)
            .map(|(kind, c)| (kind.tag().to_string(), c.get()))
            .collect();
        ServerStats {
            uptime_s: self.started.elapsed().as_secs_f64(),
            sessions: self.store.len(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as usize,
            queue_cap: self.cfg.queue_cap,
            checkpoint: self
                .checkpoint
                .read()
                .expect("checkpoint lock poisoned")
                .clone(),
            reloads: self.reloads.get(),
            requests_total: self.requests_window.total(),
            errors_total: errors.iter().map(|(_, c)| c).sum(),
            batch_mean: self.batch_size.mean(),
            windows,
            ops,
            errors,
        }
    }
}

/// A running serving instance.
///
/// [`Server::start`] binds, spawns the accept loop and the batcher, and
/// returns immediately; [`Server::shutdown`] (or drop) drains
/// gracefully: the listener closes, queued requests finish, connection
/// threads exit once idle.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    sender: Option<SyncSender<Job>>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts serving `model` with telemetry disabled.
    pub fn start(model: DecisionModel, cfg: ServeConfig) -> io::Result<Server> {
        Self::start_with(model, cfg, Telemetry::disabled())
    }

    /// Starts serving `model`, recording request metrics into `telemetry`:
    /// `serve.latency` / `serve.batch_size` histograms, `serve.requests` /
    /// `serve.rejected` / `serve.reloads` counters and a `serve.sessions`
    /// gauge.
    pub fn start_with(
        model: DecisionModel,
        cfg: ServeConfig,
        telemetry: Telemetry,
    ) -> io::Result<Server> {
        // The metrics plane needs a live registry even when the caller
        // opted out of record sinks: upgrade a disabled handle to one
        // that keeps instruments but discards records, so `stats` and
        // the admin exposition always answer with real numbers.
        let telemetry = if telemetry.is_enabled() {
            telemetry
        } else {
            Telemetry::new(Arc::new(NoopSink))
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let admin_listener = match &cfg.admin_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let admin_addr = match &admin_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let threads = cit_compute::resolve_threads(cfg.threads);
        let ops = OP_NAMES
            .iter()
            .map(|name| OpInstruments {
                requests: telemetry.counter(&format!("serve.op.{name}.requests")),
                errors: telemetry.counter(&format!("serve.op.{name}.errors")),
                latency: telemetry
                    .histogram(&format!("serve.op.{name}.latency"), &duration_bounds()),
            })
            .collect();
        let error_kinds = ErrorKind::ALL
            .iter()
            .map(|kind| telemetry.counter(&format!("serve.errors.{}", kind.tag())))
            .collect();
        let state = Arc::new(ServerState {
            listen_addr: addr,
            model_cfg: *model.config(),
            num_assets: model.num_assets(),
            model: RwLock::new(Arc::new(model)),
            store: SessionStore::new(cfg.shards),
            threads,
            shutdown: AtomicBool::new(false),
            latency: telemetry.histogram("serve.latency", &duration_bounds()),
            requests: telemetry.counter("serve.requests"),
            rejects: telemetry.counter("serve.rejected"),
            batch_size: telemetry.histogram(
                "serve.batch_size",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
            reloads: telemetry.counter("serve.reloads"),
            sessions_gauge: telemetry.gauge("serve.sessions"),
            started: Instant::now(),
            queue_depth: Arc::new(AtomicI64::new(0)),
            queue_gauge: telemetry.gauge("serve.queue_depth"),
            checkpoint: RwLock::new(cfg.checkpoint_label.clone()),
            requests_window: telemetry.windowed_counter("serve.requests_window"),
            latency_window: telemetry.rolling_histogram("serve.latency_window", &duration_bounds()),
            ops,
            error_kinds,
            telemetry,
            cfg,
        });

        let (tx, rx) = mpsc::sync_channel::<Job>(state.cfg.queue_cap.max(1));
        let batcher = {
            let state = state.clone();
            std::thread::spawn(move || run_batcher(rx, &state))
        };
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = state.clone();
            let tx = tx.clone();
            let conns = conns.clone();
            std::thread::spawn(move || run_accept(listener, state, tx, conns))
        };
        let admin = admin_listener.map(|l| {
            let state = state.clone();
            std::thread::spawn(move || crate::admin::run_admin(l, state))
        });
        Ok(Server {
            state,
            addr,
            admin_addr,
            sender: Some(tx),
            accept: Some(accept),
            batcher: Some(batcher),
            admin,
            conns,
        })
    }

    /// The bound address (resolve the actual port when binding to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admin listener's bound address, when
    /// [`ServeConfig::admin_addr`] was set.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The current `stats` payload — what the `stats` wire op answers.
    pub fn stats(&self) -> crate::protocol::ServerStats {
        self.state.build_stats()
    }

    /// The telemetry handle metrics are recorded into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// Live session count.
    pub fn sessions(&self) -> usize {
        self.state.store.len()
    }

    /// `true` once a drain has started (via [`Server::shutdown`] or the
    /// protocol `shutdown` op).
    pub fn is_draining(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }

    /// Graceful drain: stops accepting, lets in-flight and queued
    /// requests finish, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        begin_drain(&self.state, self.addr);
        self.sender.take(); // drop the master sender
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conns.lock().expect("conn list poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.admin.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.batcher.is_some() {
            self.shutdown_impl();
        }
    }
}

/// Flags the drain and pokes the listener awake with a throwaway
/// connection so `accept` observes the flag.
fn begin_drain(state: &ServerState, addr: SocketAddr) {
    state.shutdown.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

fn run_accept(
    listener: TcpListener,
    state: Arc<ServerState>,
    tx: SyncSender<Job>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        let tx = tx.clone();
        let handle = std::thread::spawn(move || serve_conn(stream, &state, &tx));
        conns.lock().expect("conn list poisoned").push(handle);
    }
}

/// Reads newline-delimited requests off one connection until EOF or
/// drain, answering each on the same stream.
fn serve_conn(stream: TcpStream, state: &ServerState, tx: &SyncSender<Job>) {
    // Short read timeouts let the thread observe the drain flag while
    // idle; partial lines survive timeouts in the reader's buffer.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut reader = LineReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    while let Some(line) = reader.next_line(&state.shutdown) {
        if line.trim().is_empty() {
            continue;
        }
        let resp = handle_line(&line, state, tx);
        let stop = matches!(resp, Response::ShuttingDown);
        let mut payload = resp.render();
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}

/// Index into [`OP_NAMES`] / [`ServerState::ops`] for a request.
fn op_index(req: &Request) -> usize {
    match req {
        Request::Open { .. } => 0,
        Request::Decide { .. } => 1,
        Request::Close { .. } => 2,
        Request::Info => 3,
        Request::Stats => 4,
        Request::Reload { .. } => 5,
        Request::Sleep { .. } => 6,
        // Shutdown shares the `other` slot: it answers at most once per
        // server lifetime, a dedicated breakdown row would be noise.
        Request::Shutdown => OP_OTHER,
    }
}

/// The `other` slot of [`OP_NAMES`] (unparseable requests).
const OP_OTHER: usize = 7;

fn handle_line(line: &str, state: &ServerState, tx: &SyncSender<Job>) -> Response {
    let started = Instant::now();
    let (op_idx, resp) = match Request::parse(line) {
        Ok(req) => (op_index(&req), dispatch(req, state, tx)),
        Err(e) => (OP_OTHER, Response::error(ErrorKind::BadRequest, e)),
    };
    state.observe(op_idx, &resp, started.elapsed());
    resp
}

fn dispatch(req: Request, state: &ServerState, tx: &SyncSender<Job>) -> Response {
    match req {
        Request::Info => {
            let model = state.model.read().expect("model lock poisoned").clone();
            Response::Info {
                sessions: state.store.len(),
                num_assets: state.num_assets,
                num_params: model.num_params(),
                window: model.min_history(),
                policies: model.config().num_policies,
            }
        }
        Request::Stats => Response::Stats(Box::new(state.build_stats())),
        Request::Reload { checkpoint } => {
            match DecisionModel::from_checkpoint(&checkpoint, state.model_cfg, state.num_assets) {
                Ok(new_model) => {
                    let num_params = new_model.num_params();
                    *state.model.write().expect("model lock poisoned") = Arc::new(new_model);
                    state.reloads.inc();
                    *state.checkpoint.write().expect("checkpoint lock poisoned") =
                        checkpoint.clone();
                    state
                        .telemetry
                        .emit(cit_telemetry::Record::new("serve.reload").with("path", checkpoint));
                    Response::Reloaded { num_params }
                }
                Err(e) => Response::error(
                    ErrorKind::ReloadFailed,
                    format!("checkpoint {checkpoint:?} not loaded: {e}"),
                ),
            }
        }
        Request::Shutdown => {
            begin_drain(state, state.listen_addr);
            Response::ShuttingDown
        }
        Request::Sleep { .. } if !state.cfg.debug_ops => {
            Response::error(ErrorKind::BadRequest, "sleep requires debug_ops")
        }
        queued @ (Request::Open { .. }
        | Request::Decide { .. }
        | Request::Close { .. }
        | Request::Sleep { .. }) => {
            if state.shutdown.load(Ordering::Relaxed) {
                return Response::error(ErrorKind::ShuttingDown, "server is draining");
            }
            let started = Instant::now();
            let (reply_tx, reply_rx) = mpsc::channel();
            // The guard rides inside the job: whichever way the job
            // leaves the queue — answered, drained at shutdown, rejected
            // below (the failed send hands the job back), or unwound by
            // a panicking handler — dropping it decrements the gauge.
            let depth = DepthGuard::new(state.queue_depth.clone(), state.queue_gauge.clone());
            match tx.try_send(Job {
                req: queued,
                reply: reply_tx,
                _depth: depth,
            }) {
                Ok(()) => match reply_rx.recv_timeout(Duration::from_secs(60)) {
                    Ok(resp) => {
                        state.latency.record(started.elapsed().as_secs_f64());
                        state.requests.inc();
                        resp
                    }
                    Err(_) => Response::error(ErrorKind::ShuttingDown, "server is draining"),
                },
                Err(TrySendError::Full(_job)) => Response::error(
                    ErrorKind::Overloaded,
                    format!(
                        "decision queue full ({} queued); retry later",
                        state.cfg.queue_cap
                    ),
                ),
                Err(TrySendError::Disconnected(_job)) => {
                    Response::error(ErrorKind::ShuttingDown, "server is draining")
                }
            }
        }
    }
}

/// A timeout-tolerant line reader: partial reads accumulate across
/// `WouldBlock`/`TimedOut` so a slow writer never corrupts framing.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// The next full line (without the newline), or `None` on EOF, a hard
    /// I/O error, or drain-while-idle.
    fn next_line(&mut self, shutdown: &AtomicBool) -> Option<String> {
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=i).collect();
                line.pop(); // '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::Relaxed) {
                        return None;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
    }
}
