//! Server assembly: configuration, shared state, the registry of
//! hot-swappable model slots, session-lifecycle wiring (idle-TTL
//! eviction + disk spill), and the live metrics plane (`stats` op +
//! optional admin exposition listener). The connection layer itself is
//! the readiness-polled reactor in [`crate::reactor`]; decision compute
//! is the micro-batcher in [`crate::batch`]; slot selection for `"auto"`
//! opens is the [`crate::router`] policy.

use crate::batch::{run_batcher, Job};
use crate::protocol::{
    ErrorKind, ModelStats, OpStats, Request, Response, ServerStats, WindowStats,
};
use crate::reactor::{run_reactor, Completions};
use crate::registry::{ModelRegistry, NamedModel, AUTO_MODEL, DEFAULT_MODEL};
use crate::router::{RegimeRouter, RouterPolicy};
use crate::session::SessionStore;
use crate::spill::SpillDir;
use cit_core::{CitConfig, DecisionModel};
use cit_faults::FaultInjector;
use cit_telemetry::{
    duration_bounds, Counter, Gauge, Histogram, NoopSink, RollingHistogram, Telemetry,
    WindowedCounter, DEFAULT_WINDOWS,
};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the default
    /// `127.0.0.1:0`).
    pub addr: String,
    /// Most requests one batch may hold.
    pub max_batch: usize,
    /// How long the batcher waits for more work after the first request
    /// of a batch, in microseconds.
    pub max_wait_us: u64,
    /// Bounded queue depth between the reactor and the batcher; a full
    /// queue rejects with [`ErrorKind::Overloaded`].
    pub queue_cap: usize,
    /// Worker threads for in-batch parallelism (0 = auto, honouring
    /// `CIT_THREADS`).
    pub threads: usize,
    /// Shards of the session store.
    pub shards: usize,
    /// Days of price history a session may hold before the oldest half is
    /// trimmed (decisions only need the model window).
    pub max_history: usize,
    /// Honour the `sleep` debug op (tests use it to stall the batcher
    /// deterministically; keep off in production).
    pub debug_ops: bool,
    /// Optional bind address for the admin listener answering plain-HTTP
    /// `GET /metrics` (Prometheus-style text exposition) and `GET /stats`
    /// (the JSON snapshot) — scrapable without speaking the line
    /// protocol. `None` (the default) disables it.
    pub admin_addr: Option<String>,
    /// Identity label of the model the server started with, reported by
    /// the `stats` op until a `reload` replaces it with the new
    /// checkpoint's path.
    pub checkpoint_label: String,
    /// Reactor tick period in milliseconds: the cadence of idle-session
    /// eviction scans and the poll timeout while the server is idle.
    pub tick_ms: u64,
    /// Sessions idle longer than this are spilled to disk and evicted
    /// from memory (restored transparently on their next request).
    /// Requires [`ServeConfig::spill_dir`]; `None` disables eviction.
    pub session_ttl: Option<Duration>,
    /// Directory for spilled session state. When set, evicted sessions
    /// and (on graceful shutdown) every live session are persisted here,
    /// so restarts and evictions never lose open sessions.
    pub spill_dir: Option<PathBuf>,
    /// Per-request deadline budget. A job that has already waited longer
    /// than this in the batcher queue is shed with a typed
    /// [`ErrorKind::DeadlineExceeded`] reject instead of being computed —
    /// under overload, answering a request whose caller has given up only
    /// steals capacity from requests that can still make their deadline.
    /// `None` (the default) never sheds.
    pub request_deadline: Option<Duration>,
    /// Most bytes of pending responses one connection may buffer before
    /// the reactor declares it a slow reader and disconnects it (a stalled
    /// client must not grow server memory without bound).
    pub max_wbuf: usize,
    /// Seed of the deterministic meta-router behind `open
    /// {"model":"auto"}` — same seed + same open history ⇒ same slot,
    /// across restarts and platforms.
    pub router_seed: u64,
    /// Fault-injection handle for chaos testing (see `cit-faults`). The
    /// default disabled handle costs one `Option` check per site.
    pub faults: FaultInjector,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_wait_us: 500,
            queue_cap: 128,
            threads: 0,
            shards: 16,
            max_history: 4096,
            debug_ops: false,
            admin_addr: None,
            checkpoint_label: "unnamed".to_string(),
            tick_ms: 100,
            session_ttl: None,
            spill_dir: None,
            request_deadline: None,
            max_wbuf: 4 << 20,
            router_seed: 0,
            faults: FaultInjector::disabled(),
        }
    }
}

/// Operation names the server breaks request metrics down by; `other`
/// collects unparseable requests.
pub(crate) const OP_NAMES: [&str; 8] = [
    "open", "decide", "close", "info", "stats", "reload", "sleep", "other",
];

/// The `other` slot of [`OP_NAMES`] (unparseable requests).
pub(crate) const OP_OTHER: usize = 7;

// `op_index` can only hand out indices it names explicitly and its match
// over `Request` is exhaustive, so the single drift risk between the
// table and the function is the `other` sentinel. Pin it.
const _: () = assert!(
    OP_OTHER == OP_NAMES.len() - 1,
    "OP_OTHER must be the last OP_NAMES slot"
);

/// Index into [`OP_NAMES`] / [`ServerState::ops`] for a request. The
/// model-addressed `*As` forms share their base op's row: on the wire
/// they *are* the same op, just carrying an extra field.
pub(crate) fn op_index(req: &Request) -> usize {
    match req {
        Request::Open { .. } | Request::OpenAs { .. } => 0,
        Request::Decide { .. } | Request::DecideAs { .. } => 1,
        Request::Close { .. } => 2,
        Request::Info | Request::InfoAs { .. } => 3,
        Request::Stats => 4,
        Request::Reload { .. } | Request::ReloadAs { .. } => 5,
        Request::Sleep { .. } => 6,
        // Shutdown shares the `other` slot: it answers at most once per
        // server lifetime, a dedicated breakdown row would be noise.
        Request::Shutdown => OP_OTHER,
    }
}

/// Per-op instruments: request/error counters plus a latency histogram.
pub(crate) struct OpInstruments {
    pub(crate) requests: Counter,
    pub(crate) errors: Counter,
    pub(crate) latency: Histogram,
}

/// Shared server state: the model-slot registry, the meta-router, the
/// session store, the drain flag and the telemetry instruments.
pub(crate) struct ServerState {
    /// The named model slots (slot zero = default).
    pub(crate) registry: ModelRegistry,
    /// The policy behind `open {"model":"auto"}`.
    pub(crate) router: Box<dyn RouterPolicy>,
    pub(crate) model_cfg: CitConfig,
    pub(crate) num_assets: usize,
    pub(crate) cfg: ServeConfig,
    pub(crate) store: SessionStore,
    /// The spill directory, opened once at startup when configured.
    pub(crate) spill: Option<SpillDir>,
    pub(crate) threads: usize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) telemetry: Telemetry,
    pub(crate) latency: Histogram,
    pub(crate) requests: Counter,
    pub(crate) rejects: Counter,
    pub(crate) batch_size: Histogram,
    pub(crate) reloads: Counter,
    pub(crate) sessions_gauge: Gauge,
    /// When the server started (uptime basis for `stats`).
    pub(crate) started: Instant,
    /// Jobs currently sitting in (or just leaving) the batcher queue,
    /// maintained by [`crate::batch::DepthGuard`] so every exit path
    /// decrements.
    pub(crate) queue_depth: Arc<AtomicI64>,
    pub(crate) queue_gauge: Gauge,
    /// Live connection count, maintained by the reactor.
    pub(crate) connections: AtomicI64,
    pub(crate) connections_gauge: Gauge,
    /// Sessions idle-evicted (or spilled at shutdown) since start.
    pub(crate) evicted: AtomicU64,
    pub(crate) evicted_gauge: Gauge,
    /// Sessions restored from spill since start.
    pub(crate) restored: AtomicU64,
    pub(crate) restored_counter: Counter,
    /// Spill files found damaged (bad checksum, truncation, bad magic)
    /// and quarantined as `*.corrupt` — at startup recovery or on a
    /// failed restore. Each one is a session the server could not bring
    /// back; the client saw a typed `session_lost`.
    pub(crate) quarantined: AtomicU64,
    pub(crate) quarantined_counter: Counter,
    /// Every request (any op) for live req/s.
    pub(crate) requests_window: WindowedCounter,
    /// Every request's wall latency for live p50/p95/p99.
    pub(crate) latency_window: RollingHistogram,
    /// Per-op breakdown, indexed like [`OP_NAMES`].
    pub(crate) ops: Vec<OpInstruments>,
    /// Per-reject-class counters, indexed like [`ErrorKind::ALL`].
    pub(crate) error_kinds: Vec<Counter>,
}

impl ServerState {
    /// Records one answered request into the live metrics plane:
    /// aggregate window instruments, the per-op breakdown, and — when the
    /// response is an error — the per-kind error counters.
    pub(crate) fn observe(&self, op_idx: usize, resp: &Response, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.requests_window.inc();
        self.latency_window.record(secs);
        let op = &self.ops[op_idx];
        op.requests.inc();
        op.latency.record(secs);
        if let Response::Error { kind, .. } = resp {
            op.errors.inc();
            self.error_kinds[kind.index()].inc();
            // Load-shedding rejects (queue full, deadline blown) are the
            // ones capacity dashboards watch; session_lost and friends
            // stay in the per-kind breakdown only.
            if kind.is_retryable() {
                self.rejects.inc();
            }
        }
    }

    /// Bumps the eviction accounting (count + gauge) by `n`.
    pub(crate) fn note_evicted(&self, n: u64) {
        let total = self.evicted.fetch_add(n, Ordering::Relaxed) + n;
        self.evicted_gauge.set(total as f64);
    }

    /// Bumps the restore accounting by `n`.
    pub(crate) fn note_restored(&self, n: u64) {
        self.restored.fetch_add(n, Ordering::Relaxed);
        self.restored_counter.add(n);
    }

    /// Bumps the quarantine accounting by `n`.
    pub(crate) fn note_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
        self.quarantined_counter.add(n);
    }

    /// Resolves a wire `model` value against the registry, mapping the
    /// `"auto"` sentinel and unknown names to a typed `model_not_found`
    /// (the sentinel is only meaningful on `open`, which handles it
    /// before calling this).
    pub(crate) fn resolve_slot(
        &self,
        name: &str,
    ) -> Result<&Arc<crate::registry::ModelSlot>, Response> {
        self.registry.get(name).ok_or_else(|| {
            Response::error(
                ErrorKind::ModelNotFound,
                if name == AUTO_MODEL {
                    format!("{AUTO_MODEL:?} is only valid on open")
                } else {
                    format!("no model slot {name:?}")
                },
            )
        })
    }

    /// The spill-restore model resolver: maps a spill file's model pin
    /// to the slot's current model (empty pin = default slot).
    pub(crate) fn spill_resolver(&self) -> impl Fn(&str) -> Option<Arc<DecisionModel>> + '_ {
        move |name: &str| self.registry.get(name).map(|slot| slot.current())
    }

    /// Atomically swaps a new checkpoint into slot `slot_name` (empty =
    /// default) — the `reload` op. A failed load (including an injected
    /// `serve.reload` disk fault) leaves the running model untouched and
    /// answers a typed `reload_failed`; other slots are never touched.
    pub(crate) fn reload(&self, checkpoint: &str, slot_name: &str) -> Response {
        let slot = match self.resolve_slot(slot_name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        if let Some(e) = self.cfg.faults.io_error("serve.reload") {
            return Response::error(
                ErrorKind::ReloadFailed,
                format!("checkpoint {checkpoint:?} not loaded: {e}"),
            );
        }
        match DecisionModel::from_checkpoint(checkpoint, self.model_cfg, self.num_assets) {
            Ok(new_model) => {
                let num_params = new_model.num_params();
                slot.swap(new_model, checkpoint);
                self.reloads.inc();
                self.telemetry.emit(
                    cit_telemetry::Record::new("serve.reload")
                        .with("path", checkpoint)
                        .with("model", slot.name.as_str()),
                );
                Response::Reloaded {
                    num_params,
                    // Echo the slot only for model-addressed reloads.
                    model: if slot_name.is_empty() {
                        String::new()
                    } else {
                        slot.name.clone()
                    },
                }
            }
            Err(e) => Response::error(
                ErrorKind::ReloadFailed,
                format!("checkpoint {checkpoint:?} not loaded: {e}"),
            ),
        }
    }

    /// Builds the `stats` payload from the live instruments.
    pub(crate) fn build_stats(&self) -> ServerStats {
        let windows = DEFAULT_WINDOWS
            .iter()
            .map(|&secs| {
                let lat = self.latency_window.window(secs);
                WindowStats {
                    secs,
                    requests: self.requests_window.window_count(secs),
                    req_per_s: self.requests_window.rate(secs),
                    p50_us: lat.quantile(0.5) * 1e6,
                    p95_us: lat.quantile(0.95) * 1e6,
                    p99_us: lat.quantile(0.99) * 1e6,
                }
            })
            .collect();
        let ops = OP_NAMES
            .iter()
            .zip(&self.ops)
            .filter(|(_, i)| i.requests.get() > 0)
            .map(|(name, i)| OpStats {
                op: name.to_string(),
                requests: i.requests.get(),
                errors: i.errors.get(),
                p50_us: i.latency.quantile(0.5) * 1e6,
                p99_us: i.latency.quantile(0.99) * 1e6,
            })
            .collect();
        let errors: Vec<(String, u64)> = ErrorKind::ALL
            .iter()
            .zip(&self.error_kinds)
            .filter(|(_, c)| c.get() > 0)
            .map(|(kind, c)| (kind.tag().to_string(), c.get()))
            .collect();
        let by_model = self.store.count_by_model();
        let models = self
            .registry
            .slots()
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                // Sessions opened without a `model` field carry an empty
                // pin; they belong to the default slot (slot zero).
                let mut sessions = by_model.get(slot.name.as_str()).copied().unwrap_or(0);
                if i == 0 {
                    sessions += by_model.get("").copied().unwrap_or(0);
                }
                ModelStats {
                    model: slot.name.clone(),
                    checkpoint: slot.checkpoint(),
                    reloads: slot.reloads.get(),
                    sessions,
                    requests: slot.requests.get(),
                    errors: slot.errors.get(),
                    req_per_s: slot.requests_window.rate(DEFAULT_WINDOWS[0]),
                }
            })
            .collect();
        ServerStats {
            uptime_s: self.started.elapsed().as_secs_f64(),
            sessions: self.store.len(),
            connections: self.connections.load(Ordering::Relaxed).max(0) as usize,
            sessions_evicted: self.evicted.load(Ordering::Relaxed),
            sessions_restored: self.restored.load(Ordering::Relaxed),
            sessions_quarantined: self.quarantined.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as usize,
            queue_cap: self.cfg.queue_cap,
            checkpoint: self.registry.default_slot().checkpoint(),
            reloads: self.reloads.get(),
            requests_total: self.requests_window.total(),
            errors_total: errors.iter().map(|(_, c)| c).sum(),
            batch_mean: self.batch_size.mean(),
            windows,
            ops,
            errors,
            models,
        }
    }
}

/// Flags the drain; the reactor observes the flag on its next wake (the
/// caller is responsible for waking it when setting the flag from
/// outside the reactor thread).
pub(crate) fn begin_drain_flag(state: &ServerState) {
    state.shutdown.store(true, Ordering::Relaxed);
}

/// A running serving instance.
///
/// [`Server::start`] binds, spawns the reactor and the batcher, and
/// returns immediately; [`Server::shutdown`] (or drop) drains
/// gracefully: the listener closes, queued requests finish, and — when a
/// spill directory is configured — every live session is persisted to
/// disk before the process lets go of it.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    completions: Arc<Completions>,
    sender: Option<SyncSender<Job>>,
    reactor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts serving `model` as the sole (default) slot with telemetry
    /// disabled.
    pub fn start(model: DecisionModel, cfg: ServeConfig) -> io::Result<Server> {
        Self::start_with(model, cfg, Telemetry::disabled())
    }

    /// Starts serving `model` as the sole (default) slot, recording
    /// request metrics into `telemetry`: `serve.latency` /
    /// `serve.batch_size` histograms, `serve.requests` /
    /// `serve.rejected` / `serve.reloads` counters, `serve.sessions` /
    /// `serve.connections` / `serve.sessions_evicted` gauges and the
    /// per-slot `serve.model.<name>.*` family.
    pub fn start_with(
        model: DecisionModel,
        cfg: ServeConfig,
        telemetry: Telemetry,
    ) -> io::Result<Server> {
        let checkpoint_label = cfg.checkpoint_label.clone();
        Self::start_multi(
            vec![NamedModel {
                name: DEFAULT_MODEL.to_string(),
                model,
                checkpoint_label,
            }],
            cfg,
            telemetry,
        )
    }

    /// Starts serving several models as named slots — the first entry
    /// becomes the **default** slot addressed by requests without a
    /// `model` field. Every slot must share one architecture (asset
    /// count, window, policy count); `open {"model":"auto"}` routes new
    /// sessions across the roster via the seeded [`RegimeRouter`]
    /// (see [`ServeConfig::router_seed`]).
    pub fn start_multi(
        models: Vec<NamedModel>,
        cfg: ServeConfig,
        telemetry: Telemetry,
    ) -> io::Result<Server> {
        // The metrics plane needs a live registry even when the caller
        // opted out of record sinks: upgrade a disabled handle to one
        // that keeps instruments but discards records, so `stats` and
        // the admin exposition always answer with real numbers.
        let telemetry = if telemetry.is_enabled() {
            telemetry
        } else {
            Telemetry::new(Arc::new(NoopSink))
        };
        let registry = ModelRegistry::new(models, &telemetry)?;
        let default_model = registry.default_slot().current();
        let listener = TcpListener::bind(&cfg.addr)?;
        // Survive four-digit-client connect storms (see `deepen_backlog`).
        crate::reactor::deepen_backlog(&listener, 4096);
        let addr = listener.local_addr()?;
        let admin_listener = match &cfg.admin_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let admin_addr = match &admin_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let spill = match &cfg.spill_dir {
            Some(dir) => Some(SpillDir::open(dir, cfg.faults.clone())?),
            None => None,
        };
        // Recovery scan before serving: a torn or corrupted spill left by
        // a crashed predecessor is quarantined now, so it can never wedge
        // a restore mid-traffic. Bad files are renamed, never deleted;
        // files pinned to slots this server does not host are skipped.
        let recovered = spill
            .as_ref()
            .map(|s| s.recover_scan(&|name| registry.get(name).map(|slot| slot.current())));
        let threads = cit_compute::resolve_threads(cfg.threads);
        let ops = OP_NAMES
            .iter()
            .map(|name| OpInstruments {
                requests: telemetry.counter(&format!("serve.op.{name}.requests")),
                errors: telemetry.counter(&format!("serve.op.{name}.errors")),
                latency: telemetry
                    .histogram(&format!("serve.op.{name}.latency"), &duration_bounds()),
            })
            .collect();
        let error_kinds = ErrorKind::ALL
            .iter()
            .map(|kind| telemetry.counter(&format!("serve.errors.{}", kind.tag())))
            .collect();
        let state = Arc::new(ServerState {
            model_cfg: *default_model.config(),
            num_assets: default_model.num_assets(),
            router: Box::new(RegimeRouter::new(cfg.router_seed)),
            registry,
            store: SessionStore::new(cfg.shards),
            spill,
            threads,
            shutdown: AtomicBool::new(false),
            latency: telemetry.histogram("serve.latency", &duration_bounds()),
            requests: telemetry.counter("serve.requests"),
            rejects: telemetry.counter("serve.rejected"),
            batch_size: telemetry.histogram(
                "serve.batch_size",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
            reloads: telemetry.counter("serve.reloads"),
            sessions_gauge: telemetry.gauge("serve.sessions"),
            started: Instant::now(),
            queue_depth: Arc::new(AtomicI64::new(0)),
            queue_gauge: telemetry.gauge("serve.queue_depth"),
            connections: AtomicI64::new(0),
            connections_gauge: telemetry.gauge("serve.connections"),
            evicted: AtomicU64::new(0),
            evicted_gauge: telemetry.gauge("serve.sessions_evicted"),
            restored: AtomicU64::new(0),
            restored_counter: telemetry.counter("serve.sessions_restored"),
            quarantined: AtomicU64::new(0),
            quarantined_counter: telemetry.counter("serve.sessions_quarantined"),
            requests_window: telemetry.windowed_counter("serve.requests_window"),
            latency_window: telemetry.rolling_histogram("serve.latency_window", &duration_bounds()),
            ops,
            error_kinds,
            telemetry,
            cfg,
        });
        if let Some((intact, quarantined)) = recovered {
            if quarantined > 0 {
                state.note_quarantined(quarantined as u64);
            }
            if intact > 0 || quarantined > 0 {
                state.telemetry.emit(
                    cit_telemetry::Record::new("serve.recover_scan")
                        .with("intact", intact.to_string())
                        .with("quarantined", quarantined.to_string()),
                );
            }
        }

        // Self-pipe: the read end lives in the reactor's poll set, the
        // write end inside the shared completion queue.
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        let completions = Arc::new(Completions::new(waker_tx));

        let (tx, rx) = mpsc::sync_channel::<Job>(state.cfg.queue_cap.max(1));
        let batcher = {
            let state = state.clone();
            std::thread::spawn(move || run_batcher(rx, &state))
        };
        let reactor = {
            let state = state.clone();
            let tx = tx.clone();
            let completions = completions.clone();
            std::thread::spawn(move || run_reactor(listener, state, tx, completions, waker_rx))
        };
        let admin = admin_listener.map(|l| {
            let state = state.clone();
            std::thread::spawn(move || crate::admin::run_admin(l, state))
        });
        Ok(Server {
            state,
            addr,
            admin_addr,
            completions,
            sender: Some(tx),
            reactor: Some(reactor),
            batcher: Some(batcher),
            admin,
        })
    }

    /// The bound address (resolve the actual port when binding to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admin listener's bound address, when
    /// [`ServeConfig::admin_addr`] was set.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The current `stats` payload — what the `stats` wire op answers.
    pub fn stats(&self) -> crate::protocol::ServerStats {
        self.state.build_stats()
    }

    /// The telemetry handle metrics are recorded into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// Live session count (resident in memory; spilled sessions are not
    /// counted until restored).
    pub fn sessions(&self) -> usize {
        self.state.store.len()
    }

    /// `true` once a drain has started (via [`Server::shutdown`] or the
    /// protocol `shutdown` op).
    pub fn is_draining(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }

    /// Graceful drain: stops accepting, lets in-flight and queued
    /// requests finish, joins every thread, then spills all live
    /// sessions to disk when a spill directory is configured.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        begin_drain_flag(&self.state);
        self.completions.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        self.sender.take(); // disconnect the batcher's channel
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        // Every job is done and every session back in the store: persist
        // them so a restart picks up where this process stopped.
        if let Some(spill) = &self.state.spill {
            let spilled = self.state.store.spill_all(spill);
            if spilled > 0 {
                self.state.note_evicted(spilled as u64);
                self.state.telemetry.emit(
                    cit_telemetry::Record::new("serve.spill_all")
                        .with("sessions", spilled.to_string()),
                );
            }
        }
        if let Some(h) = self.admin.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.reactor.is_some() || self.batcher.is_some() {
            self.shutdown_impl();
        }
    }
}
