//! The blocking TCP server: accept pool, connection threads, hot reload,
//! graceful drain.

use crate::batch::{run_batcher, Job};
use crate::protocol::{ErrorKind, Request, Response};
use crate::session::SessionStore;
use cit_core::{CitConfig, DecisionModel};
use cit_telemetry::{duration_bounds, Counter, Gauge, Histogram, Telemetry};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the default
    /// `127.0.0.1:0`).
    pub addr: String,
    /// Most requests one batch may hold.
    pub max_batch: usize,
    /// How long the batcher waits for more work after the first request
    /// of a batch, in microseconds.
    pub max_wait_us: u64,
    /// Bounded queue depth between connection threads and the batcher;
    /// a full queue rejects with [`ErrorKind::Overloaded`].
    pub queue_cap: usize,
    /// Worker threads for in-batch parallelism (0 = auto, honouring
    /// `CIT_THREADS`).
    pub threads: usize,
    /// Shards of the session store.
    pub shards: usize,
    /// Days of price history a session may hold before the oldest half is
    /// trimmed (decisions only need the model window).
    pub max_history: usize,
    /// Honour the `sleep` debug op (tests use it to stall the batcher
    /// deterministically; keep off in production).
    pub debug_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_wait_us: 500,
            queue_cap: 128,
            threads: 0,
            shards: 16,
            max_history: 4096,
            debug_ops: false,
        }
    }
}

/// Shared server state: the hot-swappable model, the session store, the
/// drain flag and the telemetry instruments.
pub(crate) struct ServerState {
    pub(crate) listen_addr: SocketAddr,
    pub(crate) model: RwLock<Arc<DecisionModel>>,
    pub(crate) model_cfg: CitConfig,
    pub(crate) num_assets: usize,
    pub(crate) cfg: ServeConfig,
    pub(crate) store: SessionStore,
    pub(crate) threads: usize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) telemetry: Telemetry,
    pub(crate) latency: Histogram,
    pub(crate) requests: Counter,
    pub(crate) rejects: Counter,
    pub(crate) batch_size: Histogram,
    pub(crate) reloads: Counter,
    pub(crate) sessions_gauge: Gauge,
}

/// A running serving instance.
///
/// [`Server::start`] binds, spawns the accept loop and the batcher, and
/// returns immediately; [`Server::shutdown`] (or drop) drains
/// gracefully: the listener closes, queued requests finish, connection
/// threads exit once idle.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    sender: Option<SyncSender<Job>>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts serving `model` with telemetry disabled.
    pub fn start(model: DecisionModel, cfg: ServeConfig) -> io::Result<Server> {
        Self::start_with(model, cfg, Telemetry::disabled())
    }

    /// Starts serving `model`, recording request metrics into `telemetry`:
    /// `serve.latency` / `serve.batch_size` histograms, `serve.requests` /
    /// `serve.rejected` / `serve.reloads` counters and a `serve.sessions`
    /// gauge.
    pub fn start_with(
        model: DecisionModel,
        cfg: ServeConfig,
        telemetry: Telemetry,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let threads = cit_compute::resolve_threads(cfg.threads);
        let state = Arc::new(ServerState {
            listen_addr: addr,
            model_cfg: *model.config(),
            num_assets: model.num_assets(),
            model: RwLock::new(Arc::new(model)),
            store: SessionStore::new(cfg.shards),
            threads,
            shutdown: AtomicBool::new(false),
            latency: telemetry.histogram("serve.latency", &duration_bounds()),
            requests: telemetry.counter("serve.requests"),
            rejects: telemetry.counter("serve.rejected"),
            batch_size: telemetry.histogram(
                "serve.batch_size",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
            reloads: telemetry.counter("serve.reloads"),
            sessions_gauge: telemetry.gauge("serve.sessions"),
            telemetry,
            cfg,
        });

        let (tx, rx) = mpsc::sync_channel::<Job>(state.cfg.queue_cap.max(1));
        let batcher = {
            let state = state.clone();
            std::thread::spawn(move || run_batcher(rx, &state))
        };
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = state.clone();
            let tx = tx.clone();
            let conns = conns.clone();
            std::thread::spawn(move || run_accept(listener, state, tx, conns))
        };
        Ok(Server {
            state,
            addr,
            sender: Some(tx),
            accept: Some(accept),
            batcher: Some(batcher),
            conns,
        })
    }

    /// The bound address (resolve the actual port when binding to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The telemetry handle metrics are recorded into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// Live session count.
    pub fn sessions(&self) -> usize {
        self.state.store.len()
    }

    /// `true` once a drain has started (via [`Server::shutdown`] or the
    /// protocol `shutdown` op).
    pub fn is_draining(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }

    /// Graceful drain: stops accepting, lets in-flight and queued
    /// requests finish, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        begin_drain(&self.state, self.addr);
        self.sender.take(); // drop the master sender
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conns.lock().expect("conn list poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.batcher.is_some() {
            self.shutdown_impl();
        }
    }
}

/// Flags the drain and pokes the listener awake with a throwaway
/// connection so `accept` observes the flag.
fn begin_drain(state: &ServerState, addr: SocketAddr) {
    state.shutdown.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

fn run_accept(
    listener: TcpListener,
    state: Arc<ServerState>,
    tx: SyncSender<Job>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        let tx = tx.clone();
        let handle = std::thread::spawn(move || serve_conn(stream, &state, &tx));
        conns.lock().expect("conn list poisoned").push(handle);
    }
}

/// Reads newline-delimited requests off one connection until EOF or
/// drain, answering each on the same stream.
fn serve_conn(stream: TcpStream, state: &ServerState, tx: &SyncSender<Job>) {
    // Short read timeouts let the thread observe the drain flag while
    // idle; partial lines survive timeouts in the reader's buffer.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut reader = LineReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    while let Some(line) = reader.next_line(&state.shutdown) {
        if line.trim().is_empty() {
            continue;
        }
        let resp = handle_line(&line, state, tx);
        let stop = matches!(resp, Response::ShuttingDown);
        let mut payload = resp.render();
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}

fn handle_line(line: &str, state: &ServerState, tx: &SyncSender<Job>) -> Response {
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return Response::error(ErrorKind::BadRequest, e),
    };
    match req {
        Request::Info => {
            let model = state.model.read().expect("model lock poisoned").clone();
            Response::Info {
                sessions: state.store.len(),
                num_assets: state.num_assets,
                num_params: model.num_params(),
                window: model.min_history(),
                policies: model.config().num_policies,
            }
        }
        Request::Reload { checkpoint } => {
            match DecisionModel::from_checkpoint(&checkpoint, state.model_cfg, state.num_assets) {
                Ok(new_model) => {
                    let num_params = new_model.num_params();
                    *state.model.write().expect("model lock poisoned") = Arc::new(new_model);
                    state.reloads.inc();
                    state
                        .telemetry
                        .emit(cit_telemetry::Record::new("serve.reload").with("path", checkpoint));
                    Response::Reloaded { num_params }
                }
                Err(e) => Response::error(
                    ErrorKind::ReloadFailed,
                    format!("checkpoint {checkpoint:?} not loaded: {e}"),
                ),
            }
        }
        Request::Shutdown => {
            begin_drain(state, state.listen_addr);
            Response::ShuttingDown
        }
        Request::Sleep { .. } if !state.cfg.debug_ops => {
            Response::error(ErrorKind::BadRequest, "sleep requires debug_ops")
        }
        queued @ (Request::Open { .. }
        | Request::Decide { .. }
        | Request::Close { .. }
        | Request::Sleep { .. }) => {
            if state.shutdown.load(Ordering::Relaxed) {
                return Response::error(ErrorKind::ShuttingDown, "server is draining");
            }
            let started = Instant::now();
            let (reply_tx, reply_rx) = mpsc::channel();
            match tx.try_send(Job {
                req: queued,
                reply: reply_tx,
            }) {
                Ok(()) => match reply_rx.recv_timeout(Duration::from_secs(60)) {
                    Ok(resp) => {
                        state.latency.record(started.elapsed().as_secs_f64());
                        state.requests.inc();
                        resp
                    }
                    Err(_) => Response::error(ErrorKind::ShuttingDown, "server is draining"),
                },
                Err(TrySendError::Full(_)) => {
                    state.rejects.inc();
                    Response::error(
                        ErrorKind::Overloaded,
                        format!(
                            "decision queue full ({} queued); retry later",
                            state.cfg.queue_cap
                        ),
                    )
                }
                Err(TrySendError::Disconnected(_)) => {
                    Response::error(ErrorKind::ShuttingDown, "server is draining")
                }
            }
        }
    }
}

/// A timeout-tolerant line reader: partial reads accumulate across
/// `WouldBlock`/`TimedOut` so a slow writer never corrupts framing.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// The next full line (without the newline), or `None` on EOF, a hard
    /// I/O error, or drain-while-idle.
    fn next_line(&mut self, shutdown: &AtomicBool) -> Option<String> {
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=i).collect();
                line.pop(); // '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::Relaxed) {
                        return None;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
    }
}
