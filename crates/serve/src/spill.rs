//! Disk spill/restore of evicted sessions.
//!
//! An idle-evicted (or drained-at-shutdown) session is serialized to
//! `<spill_dir>/<hex(name)>.spill` with the same crash-safety idiom as
//! cit-params checkpoints: written to a temp file, fsynced, then renamed
//! over the destination. The format stores every `f64` as its exact bit
//! pattern, so a restored session decides **bitwise identically** to one
//! that was never evicted (the DWT cache is rebuilt on restore, which the
//! `SlidingDwt` contract guarantees is decision-invariant — the same
//! property history trimming already relies on).

use crate::session::Session;
use cit_core::DecisionModel;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::PathBuf;

/// Magic prefix of a spill file (format version 1).
pub(crate) const SPILL_MAGIC: &[u8; 8] = b"CITSESS1";

/// A directory holding spilled sessions, one file per session name.
#[derive(Debug, Clone)]
pub(crate) struct SpillDir {
    dir: PathBuf,
}

impl SpillDir {
    /// Opens (creating if needed) a spill directory.
    pub(crate) fn open(dir: impl Into<PathBuf>) -> io::Result<SpillDir> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SpillDir { dir })
    }

    /// The spill file path for a session name. Names are arbitrary
    /// client strings, so they are hex-encoded into a safe filename.
    pub(crate) fn path_for(&self, name: &str) -> PathBuf {
        let mut encoded = String::with_capacity(name.len() * 2);
        for b in name.as_bytes() {
            encoded.push_str(&format!("{b:02x}"));
        }
        self.dir.join(format!("{encoded}.spill"))
    }

    /// Whether a spilled copy of `name` exists.
    pub(crate) fn contains(&self, name: &str) -> bool {
        self.path_for(name).is_file()
    }

    /// Atomically writes one session: temp file in the same directory,
    /// fsync, rename. A crash mid-write never corrupts an existing spill.
    pub(crate) fn write(&self, session: &Session) -> io::Result<()> {
        let path = self.path_for(session.name());
        let tmp = path.with_extension("spill.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&session.spill_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Reads and **removes** the spilled copy of `name`, rebuilding the
    /// live session against `model`. `Ok(None)` when nothing is spilled;
    /// `Err` describes a corrupt or model-incompatible file (which is
    /// left on disk for inspection).
    pub(crate) fn take(
        &self,
        name: &str,
        model: &DecisionModel,
    ) -> Result<Option<Session>, String> {
        let path = self.path_for(name);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read spill {path:?}: {e}")),
        };
        let session = Session::from_spill_bytes(&bytes, model)?;
        if session.name() != name {
            return Err(format!(
                "spill {path:?} holds session {:?}, expected {name:?}",
                session.name()
            ));
        }
        fs::remove_file(&path)
            .map_err(|e| format!("cannot remove restored spill {path:?}: {e}"))?;
        Ok(Some(session))
    }

    /// Deletes the spilled copy of `name` if present (session close).
    /// Returns whether a file was removed.
    pub(crate) fn remove(&self, name: &str) -> bool {
        fs::remove_file(self.path_for(name)).is_ok()
    }
}
