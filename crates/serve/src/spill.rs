//! Disk spill/restore of evicted sessions, with end-to-end integrity.
//!
//! An idle-evicted (or drained-at-shutdown) session is serialized to
//! `<spill_dir>/<hex(name)>.spill` with the same crash-safety idiom as
//! cit-params checkpoints: written to a temp file, fsynced, then renamed
//! over the destination. The `CITSESS2` format stores every `f64` as its
//! exact bit pattern and ends in a [`checksum64`] trailer, so a restored
//! session decides **bitwise identically** to one that was never evicted
//! (the DWT cache is rebuilt on restore, which the `SlidingDwt` contract
//! guarantees is decision-invariant) and any truncation or bit-flip on
//! disk is *detected* rather than silently restored. A damaged file is
//! **quarantined** — renamed to `<file>.corrupt`, never deleted — and the
//! session is surfaced to the client as a typed `session_lost` reject;
//! [`SpillDir::recover_scan`] applies the same policy to everything left
//! in the directory at startup, so one torn file can never wedge a
//! restart. Write-path faults (`serve.spill.write` I/O errors,
//! `serve.spill.truncate` short writes, `serve.spill.corrupt` bit-flips)
//! are injectable through the `cit-faults` plan machinery.

use crate::session::{spill_peek, Session};
use cit_core::DecisionModel;
use cit_faults::FaultInjector;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of a spill file (format version 3: checksum trailer +
/// model-slot pin). Files from earlier versions (`CITSESS1` without a
/// checksum, `CITSESS2` without the model pin) are treated as corrupt
/// and quarantined — a deliberate one-way migration, since a session
/// without a pin cannot be safely assigned to a slot.
pub(crate) const SPILL_MAGIC: &[u8; 8] = b"CITSESS3";

/// Resolves a model-slot name from a spill header to the model to
/// restore against — `None` when the server does not host that slot.
pub(crate) type ModelResolver<'a> = &'a dyn Fn(&str) -> Option<Arc<DecisionModel>>;

/// FNV-1a 64-bit over `bytes` — the spill trailer. Not cryptographic;
/// it exists to catch truncation, torn writes and bit rot, which it does
/// for any single flipped byte and any shortened payload.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a spilled session could not be restored.
#[derive(Debug)]
pub(crate) enum SpillError {
    /// The bytes on disk are damaged (bad magic, truncation, checksum
    /// mismatch, implausible shape). The file gets quarantined.
    Corrupt(String),
    /// The file is intact but does not fit the served model (asset or
    /// policy count mismatch). Left in place — a compatible server can
    /// still restore it.
    Incompatible(String),
    /// The disk itself failed (read or rename error).
    Io(io::Error),
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Corrupt(m) => write!(f, "corrupt spill: {m}"),
            SpillError::Incompatible(m) => write!(f, "incompatible spill: {m}"),
            SpillError::Io(e) => write!(f, "spill io error: {e}"),
        }
    }
}

/// A directory holding spilled sessions, one file per session name.
#[derive(Debug, Clone)]
pub(crate) struct SpillDir {
    dir: PathBuf,
    faults: FaultInjector,
}

/// The outcome of one restore attempt that failed: what to tell the
/// client plus whether the on-disk copy was quarantined.
pub(crate) struct RestoreFailure {
    pub(crate) message: String,
    pub(crate) quarantined: bool,
}

impl SpillDir {
    /// Opens (creating if needed) a spill directory. `faults` drives the
    /// injectable write-path failures (disabled handle = no overhead).
    pub(crate) fn open(dir: impl Into<PathBuf>, faults: FaultInjector) -> io::Result<SpillDir> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SpillDir { dir, faults })
    }

    /// The spill file path for a session name. Names are arbitrary
    /// client strings, so they are hex-encoded into a safe filename.
    pub(crate) fn path_for(&self, name: &str) -> PathBuf {
        let mut encoded = String::with_capacity(name.len() * 2);
        for b in name.as_bytes() {
            encoded.push_str(&format!("{b:02x}"));
        }
        self.dir.join(format!("{encoded}.spill"))
    }

    /// Whether a spilled copy of `name` exists.
    pub(crate) fn contains(&self, name: &str) -> bool {
        self.path_for(name).is_file()
    }

    /// Atomically writes one session: temp file in the same directory,
    /// fsync, rename. A crash mid-write never corrupts an existing spill.
    /// Fault sites: `serve.spill.write` (the write errors out, session
    /// stays resident), `serve.spill.truncate` (short write — the file
    /// lands torn, caught by the checksum on restore),
    /// `serve.spill.corrupt` (one byte flipped — same detection).
    pub(crate) fn write(&self, session: &Session) -> io::Result<()> {
        if let Some(e) = self.faults.io_error("serve.spill.write") {
            return Err(e);
        }
        let mut bytes = session.spill_bytes();
        if let Some(cap) = self.faults.partial_write("serve.spill.truncate") {
            bytes.truncate(cap.max(1));
        }
        if let Some(offset) = self.faults.corrupt_write("serve.spill.corrupt") {
            let i = offset.min(bytes.len().saturating_sub(1));
            bytes[i] ^= 0xff;
        }
        let path = self.path_for(session.name());
        let tmp = path.with_extension("spill.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Reads and **removes** the spilled copy of `name`, rebuilding the
    /// live session against the model `resolve` returns for the file's
    /// model-slot pin. `Ok(None)` when nothing is spilled; `Err`
    /// describes a corrupt, unreadable or model-incompatible file — a
    /// pin naming a slot the server no longer hosts is *not* corruption:
    /// the file stays in place (a server hosting that slot can still
    /// restore it) and the client gets a typed `session_lost`. Corrupt
    /// files are already quarantined when this returns (see
    /// [`SpillDir::quarantine`]). Fault site: `serve.spill.read`.
    pub(crate) fn take(
        &self,
        name: &str,
        resolve: ModelResolver,
    ) -> Result<Option<Session>, RestoreFailure> {
        let path = self.path_for(name);
        let bytes = match self
            .faults
            .io_error("serve.spill.read")
            .map(Err::<Vec<u8>, _>)
        {
            Some(r) => r,
            None => fs::read(&path),
        };
        let bytes = match bytes {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                // A failed read is not evidence of corruption: the file
                // (if any) stays put so a retry can succeed.
                return Err(RestoreFailure {
                    message: format!("cannot read spill {path:?}: {e}"),
                    quarantined: false,
                });
            }
        };
        let header = match spill_peek(&bytes) {
            Ok(h) => h,
            Err(SpillError::Corrupt(m)) => {
                let q = self.quarantine(&path);
                return Err(RestoreFailure {
                    message: format!("spill {path:?} is damaged ({m})"),
                    quarantined: q,
                });
            }
            Err(e) => {
                return Err(RestoreFailure {
                    message: format!("spill {path:?} cannot be restored: {e}"),
                    quarantined: false,
                })
            }
        };
        if header.name != name {
            let q = self.quarantine(&path);
            return Err(RestoreFailure {
                message: format!(
                    "spill {path:?} holds session {:?}, expected {name:?}",
                    header.name
                ),
                quarantined: q,
            });
        }
        let model = match resolve(&header.model) {
            Some(m) => m,
            None => {
                return Err(RestoreFailure {
                    message: format!(
                        "spill {path:?} is pinned to model slot {:?}, which this \
                         server does not host",
                        header.model
                    ),
                    quarantined: false,
                })
            }
        };
        let session = match Session::from_spill_bytes(&bytes, &model) {
            Ok(s) => s,
            Err(SpillError::Corrupt(m)) => {
                let q = self.quarantine(&path);
                return Err(RestoreFailure {
                    message: format!("spill {path:?} is damaged ({m})"),
                    quarantined: q,
                });
            }
            Err(e) => {
                return Err(RestoreFailure {
                    message: format!("spill {path:?} cannot be restored: {e}"),
                    quarantined: false,
                })
            }
        };
        if let Err(e) = fs::remove_file(&path) {
            return Err(RestoreFailure {
                message: format!("cannot remove restored spill {path:?}: {e}"),
                quarantined: false,
            });
        }
        Ok(Some(session))
    }

    /// Deletes the spilled copy of `name` if present (session close).
    /// Returns whether a file was removed.
    pub(crate) fn remove(&self, name: &str) -> bool {
        fs::remove_file(self.path_for(name)).is_ok()
    }

    /// Moves a damaged spill file out of the restore path by renaming it
    /// to `<file>.corrupt` — quarantined for inspection, never deleted.
    /// Returns whether the rename succeeded.
    pub(crate) fn quarantine(&self, path: &Path) -> bool {
        let mut target = path.as_os_str().to_owned();
        target.push(".corrupt");
        fs::rename(path, PathBuf::from(target)).is_ok()
    }

    /// Startup recovery scan: validates every `*.spill` file in the
    /// directory against the model its pin resolves to, quarantining
    /// damaged ones so a torn file left by a crashed process can never
    /// wedge a later restore. Files pinned to a slot this server does
    /// not host are left untouched (neither intact nor quarantined).
    /// Stale `.spill.tmp` files (a crash mid-write) are also quarantined.
    /// Returns `(intact, quarantined)` counts; unreadable directories
    /// count as zero of each (the server still starts).
    pub(crate) fn recover_scan(&self, resolve: ModelResolver) -> (usize, usize) {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return (0, 0),
        };
        let (mut intact, mut quarantined) = (0, 0);
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".spill.tmp") {
                // A temp file is a torn write by definition.
                if self.quarantine(&path) {
                    quarantined += 1;
                }
                continue;
            }
            if !name.ends_with(".spill") {
                continue; // `.corrupt` files and strangers are left alone
            }
            let verdict = fs::read(&path).map_err(SpillError::Io).and_then(|bytes| {
                let header = spill_peek(&bytes)?;
                match resolve(&header.model) {
                    // A pin to a slot we don't host is a foreign file,
                    // not a broken one — skip without judging it.
                    None => Ok(None),
                    Some(model) => Session::from_spill_bytes(&bytes, &model).map(Some),
                }
            });
            match verdict {
                Ok(Some(_)) => intact += 1,
                Ok(None) => {}
                Err(SpillError::Corrupt(_)) => {
                    if self.quarantine(&path) {
                        quarantined += 1;
                    }
                }
                // Incompatible or unreadable files stay: another server
                // (or a retry) may still want them.
                Err(_) => {}
            }
        }
        (intact, quarantined)
    }
}
