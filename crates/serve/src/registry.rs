//! Named model slots: the multi-model half of the serving plane.
//!
//! A [`ModelRegistry`] holds a fixed set of slots, each a name bound to a
//! hot-swappable `Arc<DecisionModel>` plus that slot's own telemetry
//! instruments. Slot zero is the **default** slot — the one addressed by
//! every request that carries no `model` field, which keeps single-model
//! deployments byte-identical to the pre-registry protocol. The slot
//! *set* is fixed at startup (no dynamic add/remove — a reload swaps a
//! slot's checkpoint, never the roster), so lookups are a linear scan
//! over a short immutable vector and never take a registry-wide lock.
//!
//! Every slot must share one architecture (asset count, window, policy
//! count): sessions live in one store, prices share one wire validation
//! path, and the meta-router must be free to send a given open history
//! to any slot.

use cit_core::DecisionModel;
use cit_telemetry::{Counter, Telemetry, WindowedCounter};
use std::io;
use std::sync::{Arc, RwLock};

/// The reserved `model` value that asks the meta-router to pick a slot
/// on `open` (and is therefore forbidden as a slot name).
pub const AUTO_MODEL: &str = "auto";

/// The conventional name of the default slot (slot zero). Requests
/// without a `model` field land here; the name exists so stats and logs
/// can refer to the slot explicitly.
pub const DEFAULT_MODEL: &str = "default";

/// One model to host: the input to [`crate::Server::start_multi`].
pub struct NamedModel {
    /// Slot name clients address via the wire `model` field.
    pub name: String,
    /// The model to serve in this slot.
    pub model: DecisionModel,
    /// Identity label reported by `stats` until a reload replaces it.
    pub checkpoint_label: String,
}

/// One named slot: a hot-swappable model plus per-slot accounting.
pub(crate) struct ModelSlot {
    pub(crate) name: String,
    model: RwLock<Arc<DecisionModel>>,
    checkpoint: RwLock<String>,
    /// Successful reloads into this slot.
    pub(crate) reloads: Counter,
    /// `open`/`decide` requests answered by this slot.
    pub(crate) requests: Counter,
    /// Error responses attributed to this slot.
    pub(crate) errors: Counter,
    /// Per-slot request rate (the `req_per_s` column of `stats`).
    pub(crate) requests_window: WindowedCounter,
}

impl ModelSlot {
    /// The slot's current model, cloned out of the swap lock. Callers
    /// hold the `Arc` for the whole request, so a concurrent reload
    /// never changes a decision mid-flight.
    pub(crate) fn current(&self) -> Arc<DecisionModel> {
        self.model.read().expect("model lock poisoned").clone()
    }

    /// Atomically swaps in a new model and records the checkpoint
    /// identity (the slot half of the `reload` op).
    pub(crate) fn swap(&self, model: DecisionModel, checkpoint: &str) {
        *self.model.write().expect("model lock poisoned") = Arc::new(model);
        *self.checkpoint.write().expect("checkpoint lock poisoned") = checkpoint.to_string();
        self.reloads.inc();
    }

    /// Identity of the slot's loaded checkpoint.
    pub(crate) fn checkpoint(&self) -> String {
        self.checkpoint
            .read()
            .expect("checkpoint lock poisoned")
            .clone()
    }
}

/// The fixed roster of named slots a server hosts.
pub(crate) struct ModelRegistry {
    slots: Vec<Arc<ModelSlot>>,
}

impl ModelRegistry {
    /// Builds a registry from `models` (slot zero becomes the default).
    /// Rejects an empty roster, duplicate or reserved names (`""`,
    /// `"auto"`), and architecture mismatches across slots — every slot
    /// must agree on asset count, window and policy count so sessions
    /// and the router can move freely between them.
    pub(crate) fn new(models: Vec<NamedModel>, telemetry: &Telemetry) -> io::Result<ModelRegistry> {
        let bad = |m: String| io::Error::new(io::ErrorKind::InvalidInput, m);
        if models.is_empty() {
            return Err(bad("model registry needs at least one model".into()));
        }
        let mut slots: Vec<Arc<ModelSlot>> = Vec::with_capacity(models.len());
        let first = (
            models[0].model.num_assets(),
            models[0].model.min_history(),
            models[0].model.config().num_policies,
        );
        for nm in models {
            if nm.name.is_empty() || nm.name == AUTO_MODEL {
                return Err(bad(format!("{:?} is a reserved model slot name", nm.name)));
            }
            if slots.iter().any(|s| s.name == nm.name) {
                return Err(bad(format!("duplicate model slot name {:?}", nm.name)));
            }
            let shape = (
                nm.model.num_assets(),
                nm.model.min_history(),
                nm.model.config().num_policies,
            );
            if shape != first {
                return Err(bad(format!(
                    "model slot {:?} has shape (assets, window, policies) = {:?}, \
                     but the default slot has {:?} — all slots must share one architecture",
                    nm.name, shape, first
                )));
            }
            let name = &nm.name;
            slots.push(Arc::new(ModelSlot {
                model: RwLock::new(Arc::new(nm.model)),
                checkpoint: RwLock::new(nm.checkpoint_label),
                reloads: telemetry.counter(&format!("serve.model.{name}.reloads")),
                requests: telemetry.counter(&format!("serve.model.{name}.requests")),
                errors: telemetry.counter(&format!("serve.model.{name}.errors")),
                requests_window: telemetry
                    .windowed_counter(&format!("serve.model.{name}.requests_window")),
                name: nm.name,
            }));
        }
        Ok(ModelRegistry { slots })
    }

    /// The default slot (slot zero) — where model-oblivious traffic goes.
    pub(crate) fn default_slot(&self) -> &Arc<ModelSlot> {
        &self.slots[0]
    }

    /// Resolves a wire `model` value to a slot: empty addresses the
    /// default slot, anything else must match a slot name exactly.
    /// `None` is the caller's cue for a typed `model_not_found`.
    pub(crate) fn get(&self, name: &str) -> Option<&Arc<ModelSlot>> {
        if name.is_empty() {
            return Some(self.default_slot());
        }
        self.slots.iter().find(|s| s.name == name)
    }

    /// Resolves a router pick (an index into the roster) to its slot.
    pub(crate) fn by_index(&self, i: usize) -> &Arc<ModelSlot> {
        &self.slots[i.min(self.slots.len() - 1)]
    }

    /// Every slot, default first — the iteration basis for per-model
    /// stats and the recovery scan's name resolver.
    pub(crate) fn slots(&self) -> &[Arc<ModelSlot>] {
        &self.slots
    }

    /// Number of hosted slots.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_core::CitConfig;

    fn named(name: &str, seed: u64, assets: usize) -> NamedModel {
        NamedModel {
            name: name.into(),
            model: DecisionModel::untrained(CitConfig::smoke(seed), assets).expect("valid"),
            checkpoint_label: format!("label-{name}"),
        }
    }

    #[test]
    fn resolves_default_named_and_unknown() {
        let t = Telemetry::disabled();
        let reg = ModelRegistry::new(vec![named("default", 1, 2), named("alt", 2, 2)], &t).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("").unwrap().name, "default");
        assert_eq!(reg.get("default").unwrap().name, "default");
        assert_eq!(reg.get("alt").unwrap().name, "alt");
        assert!(reg.get("nope").is_none());
        assert!(reg.get(AUTO_MODEL).is_none());
        assert_eq!(reg.by_index(1).name, "alt");
    }

    #[test]
    fn rejects_bad_rosters() {
        let t = Telemetry::disabled();
        assert!(ModelRegistry::new(vec![], &t).is_err());
        assert!(ModelRegistry::new(vec![named("auto", 1, 2)], &t).is_err());
        assert!(ModelRegistry::new(vec![named("", 1, 2)], &t).is_err());
        assert!(ModelRegistry::new(vec![named("a", 1, 2), named("a", 2, 2)], &t).is_err());
        // Mismatched asset counts are an architecture mismatch.
        assert!(ModelRegistry::new(vec![named("a", 1, 2), named("b", 2, 3)], &t).is_err());
    }

    #[test]
    fn swap_changes_only_its_slot() {
        // A live (NoopSink) handle so the per-slot counters are real.
        let t = Telemetry::new(std::sync::Arc::new(cit_telemetry::NoopSink));
        let reg = ModelRegistry::new(vec![named("default", 1, 2), named("alt", 2, 2)], &t).unwrap();
        let before_default = Arc::as_ptr(&reg.get("default").unwrap().current());
        let new = DecisionModel::untrained(CitConfig::smoke(9), 2).expect("valid");
        reg.get("alt").unwrap().swap(new, "/tmp/new.cit");
        assert_eq!(reg.get("alt").unwrap().checkpoint(), "/tmp/new.cit");
        assert_eq!(reg.get("alt").unwrap().reloads.get(), 1);
        assert_eq!(
            Arc::as_ptr(&reg.get("default").unwrap().current()),
            before_default,
            "swapping alt must not touch the default slot"
        );
    }
}
