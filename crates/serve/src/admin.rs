//! The optional admin listener: a minimal plain-HTTP endpoint so the
//! server is scrapable without speaking the line protocol.
//!
//! `GET /metrics` answers Prometheus-style text exposition of the whole
//! telemetry registry; `GET /stats` answers the same registry as one
//! JSON object. Anything else is a 404. The implementation is
//! deliberately tiny (std only, one thread, connection-per-request,
//! `Connection: close`): it exists for scrapers and curl, not browsers.

use crate::server::ServerState;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Accept loop: polls non-blockingly so it can observe the drain flag,
/// answering one request per connection.
pub(crate) fn run_admin(listener: TcpListener, state: Arc<ServerState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => answer(stream, &state),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads the request head and writes one response.
fn answer(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head (blank line) or timeout;
    // the request body is irrelevant for GETs.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && !head.windows(2).any(|w| w == b"\n\n") {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let path = request_line
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            state.telemetry.take_snapshot().to_prometheus(),
        ),
        "/stats" => (
            "200 OK",
            "application/json",
            state.telemetry.take_snapshot().to_json(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics or /stats\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
