//! # cit-serve
//!
//! Batched low-latency decision serving for trained Cross-Insight Trader
//! checkpoints: the online half the paper's backtest loop implies — a
//! trained policy asked for "today's" portfolio as new prices arrive.
//!
//! A [`Server`] hosts one or more cit-params checkpoints as named
//! **model slots** (see [`NamedModel`] and [`Server::start_multi`]),
//! each an immutable [`cit_core::DecisionModel`] behind a shared `Arc`,
//! hot-swappable per slot on a `reload` admin command. It speaks a
//! newline-delimited JSON protocol over TCP (see [`protocol`] and
//! `PROTOCOL.md`): a single readiness-polled **reactor** thread owns
//! every connection and parses requests into a **bounded queue**; a
//! single batcher drains up to [`ServeConfig::max_batch`] requests
//! (waiting at most [`ServeConfig::max_wait_us`] after the first) and
//! fans the batch out over the `cit-compute` thread pool — per-session
//! order is preserved, distinct sessions run in parallel. A full queue
//! is answered with a typed `overloaded` reject instead of blocking:
//! backpressure is part of the protocol. Sessions are pinned to their
//! slot for life (including across disk spill/restore); opening with
//! `model: "auto"` lets the deterministic [`RegimeRouter`] pick the slot
//! from the open history's market regime. Per-request latency, batch
//! size, throughput counters, per-model breakdowns and reload/session
//! gauges go through `cit-telemetry`.
//!
//! Served decisions are **bitwise identical** to offline evaluation of
//! the same checkpoint: the deterministic inference path has no RNG, and
//! the wire format renders `f64` with shortest-round-trip formatting
//! (verified end-to-end by `tests/roundtrip.rs`).
//!
//! ```
//! use cit_core::{CitConfig, DecisionModel};
//! use cit_serve::{Client, Request, ServeConfig, Server};
//!
//! // An untrained smoke model keeps the example fast; production loads
//! // DecisionModel::from_checkpoint.
//! let model = DecisionModel::untrained(CitConfig::smoke(1), 2).unwrap();
//! let window = model.min_history();
//! let server = Server::start(model, ServeConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! // One OHLC row per day: [m × 4] values, here m = 2 assets.
//! let prices: Vec<Vec<f64>> = (0..window)
//!     .map(|d| vec![1.0 + d as f64 * 0.01; 8])
//!     .collect();
//! let opened = client
//!     .call(&Request::Open { session: "demo".into(), prices })
//!     .unwrap();
//! assert!(opened.ok());
//! let decision = client
//!     .call(&Request::Decide { session: "demo".into(), prices: vec![] })
//!     .unwrap();
//! let weights = decision.final_action().unwrap();
//! assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod json;
pub mod protocol;

mod admin;
mod batch;
mod client;
mod reactor;
mod registry;
mod router;
mod server;
mod session;
mod spill;

pub use client::{Client, Reply, RetryPolicy};
pub use protocol::{ErrorKind, ModelStats, OpStats, Request, Response, ServerStats, WindowStats};
pub use registry::{NamedModel, AUTO_MODEL, DEFAULT_MODEL};
pub use router::{RegimeRouter, RouterPolicy};
pub use server::{ServeConfig, Server};
pub use session::{Session, SessionStore};
