//! Session-lifecycle tests: idle-TTL eviction driven off the reactor
//! tick, disk spill/restore transparency (bitwise decision parity with a
//! never-evicted session), persistence across a server restart, and
//! eviction under concurrent decide traffic.

use cit_core::{CitConfig, DecisionModel};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{Client, Request, ServeConfig, Server};
use std::time::{Duration, Instant};

fn synth(num_assets: usize, seed: u64) -> AssetPanel {
    SynthConfig {
        num_assets,
        num_days: 220,
        test_start: 160,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The `[m·4]` OHLC wire rows for panel days `[from, to)`.
fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
    (from..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

fn spill_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cit_spill_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn model(seed: u64, assets: usize) -> DecisionModel {
    DecisionModel::untrained(CitConfig::smoke(seed), assets).expect("smoke model")
}

fn lifecycle_cfg(tag: &str, ttl_ms: u64) -> ServeConfig {
    ServeConfig {
        session_ttl: Some(Duration::from_millis(ttl_ms)),
        spill_dir: Some(spill_dir(tag)),
        tick_ms: 20,
        ..Default::default()
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Waits (bounded) until the server's live session count reaches `want`.
fn wait_for_sessions(client: &mut Client, want: usize, deadline: Duration) -> usize {
    let start = Instant::now();
    loop {
        let stats = client
            .call(&Request::Stats)
            .expect("stats")
            .stats()
            .expect("typed stats");
        if stats.sessions == want || start.elapsed() > deadline {
            return stats.sessions;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Idle-TTL eviction fires — but only after the TTL: a session is still
/// resident well inside its TTL and spilled to disk shortly after it
/// lapses, with the eviction counted in `stats`.
#[test]
fn idle_ttl_evicts_only_after_ttl() {
    let panel = synth(2, 31);
    let cfg = lifecycle_cfg("ttl", 400);
    let dir = cfg.spill_dir.clone().unwrap();
    let server = Server::start(model(31, 2), cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client
        .call(&Request::Open {
            session: "idle".into(),
            prices: rows(&panel, 0, 40),
        })
        .unwrap()
        .ok());

    // Well inside the TTL the session must still be resident.
    std::thread::sleep(Duration::from_millis(120));
    let stats = client.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(stats.sessions, 1, "evicted before the TTL elapsed");
    assert_eq!(stats.sessions_evicted, 0);

    // After the TTL (+ tick slack) it must be evicted and on disk.
    let left = wait_for_sessions(&mut client, 0, Duration::from_secs(5));
    assert_eq!(left, 0, "idle session was never evicted");
    let stats = client.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(stats.sessions_evicted, 1);
    let spilled = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(spilled, 1, "evicted session must be spilled to disk");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The heart of the lifecycle guarantee: a session that is idle-evicted,
/// spilled to disk and transparently restored decides **bitwise
/// identically** to one that was never evicted.
#[test]
fn evict_restore_decide_is_bitwise_invariant() {
    let panel = synth(3, 47);

    // Control: same model, no eviction.
    let control = Server::start(model(47, 3), ServeConfig::default()).unwrap();
    // Probe: aggressive TTL so the session is evicted between decides.
    let cfg = lifecycle_cfg("bitwise", 150);
    let dir = cfg.spill_dir.clone().unwrap();
    let probe = Server::start(model(47, 3), cfg).unwrap();

    let mut cc = Client::connect(control.addr()).unwrap();
    let mut pc = Client::connect(probe.addr()).unwrap();
    for (name, c) in [("ctl", &mut cc), ("prb", &mut pc)] {
        assert!(c
            .call(&Request::Open {
                session: name.into(),
                prices: rows(&panel, 0, 160),
            })
            .unwrap()
            .ok());
    }

    let mut evictions_seen = 0;
    for t in 160..172 {
        // Let the probe's session go idle past its TTL every other day.
        if t % 2 == 0 {
            std::thread::sleep(Duration::from_millis(250));
            let stats = pc.call(&Request::Stats).unwrap().stats().unwrap();
            if stats.sessions == 0 {
                evictions_seen += 1;
            }
        }
        let day = rows(&panel, t, t + 1);
        let rc = cc
            .call(&Request::Decide {
                session: "ctl".into(),
                prices: day.clone(),
            })
            .unwrap();
        let rp = pc
            .call(&Request::Decide {
                session: "prb".into(),
                prices: day,
            })
            .unwrap();
        assert!(rc.ok(), "{:?}", rc.error_message());
        assert!(rp.ok(), "restored decide failed: {:?}", rp.error_message());
        assert_eq!(
            bits(&rc.final_action().unwrap()),
            bits(&rp.final_action().unwrap()),
            "final action diverged at t={t}"
        );
        for (k, (a, b)) in rc
            .pre_actions()
            .unwrap()
            .iter()
            .zip(&rp.pre_actions().unwrap())
            .enumerate()
        {
            assert_eq!(bits(a), bits(b), "pre-action {k} diverged at t={t}");
        }
    }
    assert!(
        evictions_seen >= 3,
        "probe session was never actually evicted ({evictions_seen} evictions seen) — the test is vacuous"
    );
    let stats = pc.call(&Request::Stats).unwrap().stats().unwrap();
    assert!(stats.sessions_evicted >= 3);
    assert!(stats.sessions_restored >= 3);

    probe.shutdown();
    control.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful shutdown spills every live session; a fresh server over the
/// same spill directory restores them transparently, with the decision
/// stream bitwise-unbroken across the restart.
#[test]
fn restart_restores_spilled_sessions() {
    let panel = synth(2, 53);
    let dir = spill_dir("restart");

    // Control stream without any restart.
    let control = Server::start(model(53, 2), ServeConfig::default()).unwrap();
    let mut cc = Client::connect(control.addr()).unwrap();
    assert!(cc
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    let mut expected = Vec::new();
    for t in 160..170 {
        let r = cc
            .call(&Request::Decide {
                session: "s".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(r.ok());
        expected.push(r.final_action().unwrap());
    }
    control.shutdown();

    // First server: decide half the stream, then shut down (spill-all).
    let cfg = ServeConfig {
        spill_dir: Some(dir.clone()),
        ..Default::default()
    };
    let first = Server::start(model(53, 2), cfg.clone()).unwrap();
    let mut fc = Client::connect(first.addr()).unwrap();
    assert!(fc
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    for (i, t) in (160..165).enumerate() {
        let r = fc
            .call(&Request::Decide {
                session: "s".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(r.ok());
        assert_eq!(bits(&r.final_action().unwrap()), bits(&expected[i]));
    }
    first.shutdown();
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        1,
        "shutdown must spill the live session"
    );

    // Second server, same spill dir: the session is still "open".
    let second = Server::start(model(53, 2), cfg).unwrap();
    let mut sc = Client::connect(second.addr()).unwrap();
    // Re-opening the id is refused — the spilled session owns it.
    let dup = sc
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap();
    assert!(!dup.ok(), "spilled session id must stay reserved");
    for (i, t) in (165..170).enumerate() {
        let r = sc
            .call(&Request::Decide {
                session: "s".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(r.ok(), "{:?}", r.error_message());
        assert_eq!(
            bits(&r.final_action().unwrap()),
            bits(&expected[5 + i]),
            "stream diverged after restart at t={t}"
        );
    }
    let stats = sc.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(stats.sessions_restored, 1);
    // `close` of a restored-then-closed session also clears the disk copy.
    assert!(sc
        .call(&Request::Close {
            session: "s".into(),
        })
        .unwrap()
        .ok());
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Eviction racing live traffic: with an aggressive TTL and many
/// concurrent clients deciding on their own sessions, no request may
/// ever observe a lost session — a checked-out session cannot be
/// evicted, and an evicted one is restored transparently.
#[test]
fn eviction_under_concurrent_decides_never_drops_sessions() {
    let panel = synth(2, 61);
    let cfg = ServeConfig {
        session_ttl: Some(Duration::from_millis(30)),
        spill_dir: Some(spill_dir("race")),
        tick_ms: 5,
        ..Default::default()
    };
    let dir = cfg.spill_dir.clone().unwrap();
    let server = Server::start(model(61, 2), cfg).unwrap();
    let addr = server.addr();

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let panel = panel.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let session = format!("w{w}");
                assert!(c
                    .call(&Request::Open {
                        session: session.clone(),
                        prices: rows(&panel, 0, 160),
                    })
                    .unwrap()
                    .ok());
                for t in 160..190 {
                    // Pause long enough for the TTL to lapse on some
                    // iterations, so evictions interleave with decides.
                    if t % 3 == w % 3 {
                        std::thread::sleep(Duration::from_millis(45));
                    }
                    let reply = c
                        .call(&Request::Decide {
                            session: session.clone(),
                            prices: rows(&panel, t, t + 1),
                        })
                        .unwrap();
                    assert!(
                        reply.ok(),
                        "worker {w} lost its session at t={t}: {:?}",
                        reply.error_message()
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.call(&Request::Stats).unwrap().stats().unwrap();
    assert!(
        stats.sessions_evicted > 0,
        "TTL never fired — the race was not exercised"
    );
    // Every eviction was either restored by a later decide or is still
    // on disk; nothing vanished.
    let spilled = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(stats.sessions + spilled, 4, "a session was dropped");
    assert!(stats.sessions_restored <= stats.sessions_evicted);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
