//! Multi-model serving tests: slot isolation under hot reload, model
//! pinning across spill/restart, typed `model_not_found` rejects, router
//! determinism under concurrent traffic, and the per-model stats
//! breakdown.

use cit_core::{CitConfig, CrossInsightTrader, DecisionModel};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{
    Client, ErrorKind, NamedModel, Request, ServeConfig, Server, AUTO_MODEL, DEFAULT_MODEL,
};
use cit_telemetry::Telemetry;

fn synth(num_assets: usize, seed: u64) -> AssetPanel {
    SynthConfig {
        num_assets,
        num_days: 220,
        test_start: 160,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The `[m·4]` OHLC wire rows for panel days `[from, to)`.
fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
    (from..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cit_multimodel_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.cit"))
}

fn spill_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cit_mm_spill_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Trains a tiny model, saves a checkpoint and returns it with the config.
fn trained_checkpoint(tag: &str, panel: &AssetPanel, seed: u64) -> (std::path::PathBuf, CitConfig) {
    let cfg = CitConfig::smoke(seed);
    let mut trader = CrossInsightTrader::new(panel, cfg);
    trader.train(panel);
    let path = tmp_path(tag);
    trader.save(&path).expect("save checkpoint");
    (path, cfg)
}

fn load(ckpt: &std::path::Path, cfg: CitConfig, assets: usize) -> DecisionModel {
    DecisionModel::from_checkpoint(ckpt, cfg, assets).expect("load checkpoint")
}

/// A two-slot roster: `default` from `ckpt_a`, `alt` from `ckpt_b`.
fn roster(
    ckpt_a: &std::path::Path,
    ckpt_b: &std::path::Path,
    cfg: CitConfig,
    assets: usize,
) -> Vec<NamedModel> {
    vec![
        NamedModel {
            name: DEFAULT_MODEL.into(),
            model: load(ckpt_a, cfg, assets),
            checkpoint_label: ckpt_a.display().to_string(),
        },
        NamedModel {
            name: "alt".into(),
            model: load(ckpt_b, cfg, assets),
            checkpoint_label: ckpt_b.display().to_string(),
        },
    ]
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The offline decision chain of a checkpoint over `[start, start+n)` —
/// the bitwise ground truth a pinned session must reproduce.
fn offline_chain(
    ckpt: &std::path::Path,
    cfg: CitConfig,
    panel: &AssetPanel,
    start: usize,
    n: usize,
) -> Vec<Vec<f64>> {
    let model = load(ckpt, cfg, panel.num_assets());
    let mut cache = model.new_cache();
    let mut prev = model.uniform_prev_actions();
    (start..start + n)
        .map(|t| {
            let out = model.decide(panel, t, &prev, &mut cache);
            prev = out.pre_actions.clone();
            out.final_action
        })
        .collect()
}

/// Reloading slot A must not perturb a session pinned to slot B: its
/// in-flight decision stream stays bitwise identical to the offline
/// evaluation of slot B's checkpoint.
#[test]
fn reload_of_one_slot_leaves_other_slots_bitwise_unchanged() {
    let panel = synth(2, 71);
    let (ckpt_a, cfg) = trained_checkpoint("iso_a", &panel, 71);
    let (ckpt_b, _) = trained_checkpoint("iso_b", &panel, 72);
    let (ckpt_c, _) = trained_checkpoint("iso_c", &panel, 73);
    let expected = offline_chain(&ckpt_b, cfg, &panel, 160, 10);

    let server = Server::start_multi(
        roster(&ckpt_a, &ckpt_b, cfg, 2),
        ServeConfig::default(),
        Telemetry::disabled(),
    )
    .expect("start server");
    let mut client = Client::connect(server.addr()).unwrap();
    let opened = client
        .call(&Request::OpenAs {
            session: "pinned".into(),
            prices: rows(&panel, 0, 160),
            model: "alt".into(),
        })
        .unwrap();
    assert!(opened.ok(), "{:?}", opened.error_message());
    assert_eq!(opened.model(), Some("alt"));

    for (i, t) in (160..170).enumerate() {
        if i == 5 {
            // Mid-stream: swap the *default* slot to a third checkpoint.
            let reloaded = client
                .call(&Request::ReloadAs {
                    checkpoint: ckpt_c.display().to_string(),
                    model: DEFAULT_MODEL.into(),
                })
                .unwrap();
            assert!(reloaded.ok(), "{:?}", reloaded.error_message());
            assert_eq!(reloaded.model(), Some(DEFAULT_MODEL));
        }
        let r = client
            .call(&Request::Decide {
                session: "pinned".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(r.ok(), "{:?}", r.error_message());
        assert_eq!(r.model(), Some("alt"), "decide echoes the pin");
        assert_eq!(
            bits(&r.final_action().unwrap()),
            bits(&expected[i]),
            "alt-pinned stream diverged at t={t} (default-slot reload leaked)"
        );
    }
    server.shutdown();
    for p in [&ckpt_a, &ckpt_b, &ckpt_c] {
        std::fs::remove_file(p).ok();
    }
}

/// A spilled session restores pinned to its original slot after a
/// restart (bitwise-unbroken stream); restarting *without* that slot
/// answers `session_lost` and leaves the spill file on disk.
#[test]
fn spill_restore_preserves_model_pinning() {
    let panel = synth(2, 81);
    let (ckpt_a, cfg) = trained_checkpoint("pin_a", &panel, 81);
    let (ckpt_b, _) = trained_checkpoint("pin_b", &panel, 82);
    let dir = spill_dir("pin");
    let expected = offline_chain(&ckpt_b, cfg, &panel, 160, 10);
    let serve_cfg = ServeConfig {
        spill_dir: Some(dir.clone()),
        ..Default::default()
    };

    // First server: open pinned to "alt", decide half the stream, spill
    // everything on shutdown.
    let first = Server::start_multi(
        roster(&ckpt_a, &ckpt_b, cfg, 2),
        serve_cfg.clone(),
        Telemetry::disabled(),
    )
    .unwrap();
    let mut fc = Client::connect(first.addr()).unwrap();
    assert!(fc
        .call(&Request::OpenAs {
            session: "pinned".into(),
            prices: rows(&panel, 0, 160),
            model: "alt".into(),
        })
        .unwrap()
        .ok());
    for (i, t) in (160..165).enumerate() {
        let r = fc
            .call(&Request::Decide {
                session: "pinned".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(r.ok());
        assert_eq!(bits(&r.final_action().unwrap()), bits(&expected[i]));
    }
    first.shutdown();
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);

    // Second server, same roster: the restored session still decides
    // with the "alt" parameters and still echoes its pin.
    let second = Server::start_multi(
        roster(&ckpt_a, &ckpt_b, cfg, 2),
        serve_cfg.clone(),
        Telemetry::disabled(),
    )
    .unwrap();
    let mut sc = Client::connect(second.addr()).unwrap();
    for (i, t) in (165..170).enumerate() {
        let r = sc
            .call(&Request::Decide {
                session: "pinned".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(r.ok(), "{:?}", r.error_message());
        assert_eq!(r.model(), Some("alt"));
        assert_eq!(
            bits(&r.final_action().unwrap()),
            bits(&expected[5 + i]),
            "pinned stream diverged across restart at t={t}"
        );
    }
    second.shutdown();
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);

    // Third server hosts only the default slot: the "alt"-pinned spill
    // cannot be restored — typed session_lost, file left in place (an
    // operator can bring the slot back).
    let third = Server::start_multi(
        vec![NamedModel {
            name: DEFAULT_MODEL.into(),
            model: load(&ckpt_a, cfg, 2),
            checkpoint_label: ckpt_a.display().to_string(),
        }],
        serve_cfg,
        Telemetry::disabled(),
    )
    .unwrap();
    let mut tc = Client::connect(third.addr()).unwrap();
    let lost = tc
        .call(&Request::Decide {
            session: "pinned".into(),
            prices: rows(&panel, 170, 171),
        })
        .unwrap();
    assert!(!lost.ok());
    assert_eq!(lost.error_kind(), Some(ErrorKind::SessionLost));
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        1,
        "a foreign-slot spill must not be quarantined"
    );
    third.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    for p in [&ckpt_a, &ckpt_b] {
        std::fs::remove_file(p).ok();
    }
}

/// Unknown slot names answer typed `model_not_found` on every
/// model-addressed op; a decide against the wrong (but existing) slot is
/// a `bad_request`; `auto` is only valid on open.
#[test]
fn unknown_models_are_typed_rejects() {
    let panel = synth(2, 91);
    let (ckpt_a, cfg) = trained_checkpoint("nf_a", &panel, 91);
    let (ckpt_b, _) = trained_checkpoint("nf_b", &panel, 92);
    let server = Server::start_multi(
        roster(&ckpt_a, &ckpt_b, cfg, 2),
        ServeConfig::default(),
        Telemetry::disabled(),
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let open = c
        .call(&Request::OpenAs {
            session: "x".into(),
            prices: rows(&panel, 0, 160),
            model: "nope".into(),
        })
        .unwrap();
    assert_eq!(open.error_kind(), Some(ErrorKind::ModelNotFound));
    let info = c
        .call(&Request::InfoAs {
            model: "nope".into(),
        })
        .unwrap();
    assert_eq!(info.error_kind(), Some(ErrorKind::ModelNotFound));
    let reload = c
        .call(&Request::ReloadAs {
            checkpoint: ckpt_a.display().to_string(),
            model: "nope".into(),
        })
        .unwrap();
    assert_eq!(reload.error_kind(), Some(ErrorKind::ModelNotFound));

    // A real session pinned to the default slot:
    assert!(c
        .call(&Request::Open {
            session: "x".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    let decide = c
        .call(&Request::DecideAs {
            session: "x".into(),
            prices: rows(&panel, 160, 161),
            model: "nope".into(),
        })
        .unwrap();
    assert_eq!(decide.error_kind(), Some(ErrorKind::ModelNotFound));
    // Addressing the wrong *hosted* slot is a bad request, not not-found.
    let mismatch = c
        .call(&Request::DecideAs {
            session: "x".into(),
            prices: rows(&panel, 160, 161),
            model: "alt".into(),
        })
        .unwrap();
    assert_eq!(mismatch.error_kind(), Some(ErrorKind::BadRequest));
    // "auto" names the router, not a slot — rejected outside open.
    let auto_decide = c
        .call(&Request::DecideAs {
            session: "x".into(),
            prices: rows(&panel, 160, 161),
            model: AUTO_MODEL.into(),
        })
        .unwrap();
    assert_eq!(auto_decide.error_kind(), Some(ErrorKind::ModelNotFound));
    // ModelNotFound is terminal, not retryable backpressure.
    assert!(!ErrorKind::ModelNotFound.is_retryable());
    server.shutdown();
    for p in [&ckpt_a, &ckpt_b] {
        std::fs::remove_file(p).ok();
    }
}

/// `open {"model":"auto"}` is deterministic: under concurrent traffic,
/// every session opened with the same seed and the same price history
/// lands on the same slot — across threads and across a server restart.
#[test]
fn router_is_deterministic_under_concurrent_traffic() {
    let panel = synth(2, 101);
    let (ckpt_a, cfg) = trained_checkpoint("rt_a", &panel, 101);
    let (ckpt_b, _) = trained_checkpoint("rt_b", &panel, 102);
    let serve_cfg = ServeConfig {
        router_seed: 7,
        ..Default::default()
    };

    let picks_of = |addr: std::net::SocketAddr, round: usize| -> Vec<String> {
        let panel = panel.clone();
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let panel = panel.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let r = c
                        .call(&Request::OpenAs {
                            session: format!("auto_{round}_{w}"),
                            prices: rows(&panel, 0, 160),
                            model: AUTO_MODEL.into(),
                        })
                        .expect("open auto");
                    assert!(r.ok(), "{:?}", r.error_message());
                    r.model()
                        .expect("auto open echoes the routed slot")
                        .to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    let server = Server::start_multi(
        roster(&ckpt_a, &ckpt_b, cfg, 2),
        serve_cfg.clone(),
        Telemetry::disabled(),
    )
    .unwrap();
    let picks = picks_of(server.addr(), 0);
    let first = picks[0].clone();
    assert!(
        picks.iter().all(|p| *p == first),
        "same history + seed must route every concurrent open to one slot: {picks:?}"
    );
    assert!(
        first == DEFAULT_MODEL || first == "alt",
        "routed to a hosted slot"
    );

    // Per-model stats reconcile: the routed slot carries the sessions.
    let mut c = Client::connect(server.addr()).unwrap();
    let stats = c.call(&Request::Stats).unwrap().stats().unwrap();
    let names: Vec<_> = stats.models.iter().map(|m| m.model.clone()).collect();
    assert_eq!(names, vec![DEFAULT_MODEL.to_string(), "alt".to_string()]);
    let routed = stats.models.iter().find(|m| m.model == first).unwrap();
    assert_eq!(routed.sessions, 8, "all auto sessions pinned to one slot");
    assert!(routed.requests >= 8);
    assert_eq!(
        stats.models.iter().map(|m| m.sessions).sum::<usize>(),
        stats.sessions,
        "per-model session counts must sum to the store total"
    );
    server.shutdown();

    // A fresh server with the same seed routes the same way.
    let again = Server::start_multi(
        roster(&ckpt_a, &ckpt_b, cfg, 2),
        serve_cfg,
        Telemetry::disabled(),
    )
    .unwrap();
    let repeat = picks_of(again.addr(), 1);
    assert!(
        repeat.iter().all(|p| *p == first),
        "restart changed the route"
    );
    again.shutdown();
    for p in [&ckpt_a, &ckpt_b] {
        std::fs::remove_file(p).ok();
    }
}
