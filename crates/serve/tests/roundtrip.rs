//! End-to-end serving tests: protocol round-trip with bitwise parity
//! against offline evaluation, hot checkpoint reload, and backpressure.

use cit_core::{CitConfig, CrossInsightTrader, DecisionModel};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{Client, ErrorKind, Request, ServeConfig, Server};

fn synth(num_assets: usize, seed: u64) -> AssetPanel {
    SynthConfig {
        num_assets,
        num_days: 220,
        test_start: 160,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The `[m·4]` OHLC wire rows for panel days `[from, to)`.
fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
    (from..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cit_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.cit"))
}

/// Trains a tiny model, saves a checkpoint and returns it with the config.
fn trained_checkpoint(tag: &str, panel: &AssetPanel, seed: u64) -> (std::path::PathBuf, CitConfig) {
    let cfg = CitConfig::smoke(seed);
    let mut trader = CrossInsightTrader::new(panel, cfg);
    trader.train(panel);
    let path = tmp_path(tag);
    trader.save(&path).expect("save checkpoint");
    (path, cfg)
}

/// The tentpole acceptance test: decisions served over TCP are **bitwise
/// identical** to offline evaluation of the same checkpoint over the same
/// window, including the carried previous-action state.
#[test]
fn served_decisions_match_offline_eval_bitwise() {
    let panel = synth(3, 17);
    let (ckpt, cfg) = trained_checkpoint("parity", &panel, 17);

    // Offline: the deterministic evaluation path of the trained model.
    let model = DecisionModel::from_checkpoint(&ckpt, cfg, 3).expect("load checkpoint");
    let mut cache = model.new_cache();
    let mut prev = model.uniform_prev_actions();
    let mut offline = Vec::new();
    for t in panel.test_start()..panel.test_start() + 25 {
        let out = model.decide(&panel, t, &prev, &mut cache);
        prev = out.pre_actions.clone();
        offline.push(out);
    }

    // Online: same checkpoint behind the server, fed day by day.
    let served_model = DecisionModel::from_checkpoint(&ckpt, cfg, 3).expect("load checkpoint");
    let server = Server::start(served_model, ServeConfig::default()).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let opened = client
        .call(&Request::Open {
            session: "parity".into(),
            // History up to the day before the first decision.
            prices: rows(&panel, 0, panel.test_start()),
        })
        .unwrap();
    assert!(opened.ok(), "{:?}", opened.error_message());
    for (i, expected) in offline.iter().enumerate() {
        let t = panel.test_start() + i;
        let reply = client
            .call(&Request::Decide {
                session: "parity".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(reply.ok(), "decide failed: {:?}", reply.error_message());
        assert_eq!(reply.number("day"), Some(t as f64));
        let served_final = reply.final_action().expect("final_action");
        let served_pre = reply.pre_actions().expect("pre_actions");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&served_final),
            bits(&expected.final_action),
            "final action diverged at t={t}"
        );
        for (k, (s, e)) in served_pre.iter().zip(&expected.pre_actions).enumerate() {
            assert_eq!(bits(s), bits(e), "pre-action {k} diverged at t={t}");
        }
    }
    server.shutdown();
    std::fs::remove_file(&ckpt).ok();
}

/// Hot reload: swapping in a differently-trained checkpoint changes the
/// decisions of live sessions without restarting or losing session state,
/// and a bad path leaves the active model untouched.
#[test]
fn hot_reload_swaps_model_atomically() {
    let panel = synth(2, 5);
    let (ckpt_a, cfg) = trained_checkpoint("reload_a", &panel, 5);
    // A second model trained with a different seed: same architecture,
    // different parameters.
    let ckpt_b = {
        let cfg_b = CitConfig::smoke(99);
        let mut trader = CrossInsightTrader::new(&panel, cfg_b);
        trader.train(&panel);
        let path = tmp_path("reload_b");
        trader.save(&path).expect("save checkpoint");
        path
    };

    let model = DecisionModel::from_checkpoint(&ckpt_a, cfg, 2).unwrap();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 60),
        })
        .unwrap()
        .ok());
    let decide = |client: &mut Client, t: usize| {
        let reply = client
            .call(&Request::Decide {
                session: "s".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(reply.ok(), "{:?}", reply.error_message());
        reply.final_action().unwrap()
    };
    let before = decide(&mut client, 60);

    // Failed reload: server keeps serving with the old model.
    let bad = client
        .call(&Request::Reload {
            checkpoint: "/nonexistent/path.cit".into(),
        })
        .unwrap();
    assert!(!bad.ok());
    assert_eq!(bad.error_kind(), Some(ErrorKind::ReloadFailed));

    // Successful reload with different parameters.
    let good = client
        .call(&Request::Reload {
            checkpoint: ckpt_b.display().to_string(),
        })
        .unwrap();
    assert!(good.ok(), "{:?}", good.error_message());
    assert!(good.number("num_params").unwrap() > 0.0);

    let after = decide(&mut client, 61);
    assert_ne!(
        before, after,
        "decisions should change after loading different parameters"
    );
    // The session survived the swap (day counter advanced monotonically).
    let info = client.call(&Request::Info).unwrap();
    assert_eq!(info.number("sessions"), Some(1.0));
    server.shutdown();
    std::fs::remove_file(&ckpt_a).ok();
    std::fs::remove_file(&ckpt_b).ok();
}

/// Backpressure: with the batcher stalled and the bounded queue full, an
/// extra request gets a typed `overloaded` reject immediately instead of
/// blocking, and the queued work still completes.
#[test]
fn full_queue_rejects_with_overloaded() {
    let panel = synth(2, 7);
    let model = DecisionModel::untrained(CitConfig::smoke(7), 2).unwrap();
    let cfg = ServeConfig {
        max_batch: 1,
        queue_cap: 2,
        debug_ops: true,
        ..Default::default()
    };
    let server = Server::start(model, cfg).unwrap();
    let addr = server.addr();

    let mut setup = Client::connect(addr).unwrap();
    assert!(setup
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 40),
        })
        .unwrap()
        .ok());

    // Stall the batcher: with max_batch = 1 the sleep occupies it alone.
    let stall = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call(&Request::Sleep { ms: 600 }).unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Fill the queue (cap 2) with decides that cannot drain yet.
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.call(&Request::Decide {
                    session: "s".into(),
                    prices: vec![],
                })
                .unwrap()
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(150));

    // The queue is full and the batcher asleep: this must be rejected now.
    let started = std::time::Instant::now();
    let reject = setup
        .call(&Request::Decide {
            session: "s".into(),
            prices: vec![],
        })
        .unwrap();
    assert!(!reject.ok(), "expected overloaded, got {:?}", reject.json());
    assert_eq!(reject.error_kind(), Some(ErrorKind::Overloaded));
    assert!(
        started.elapsed() < std::time::Duration::from_millis(300),
        "reject must not wait for the stalled batcher"
    );

    // The stalled and queued work still completes successfully.
    assert!(stall.join().unwrap().ok());
    for f in fillers {
        let reply = f.join().unwrap();
        assert!(
            reply.ok(),
            "queued decide failed: {:?}",
            reply.error_message()
        );
    }
    server.shutdown();
}

/// Protocol-level shutdown drains gracefully: new work is refused, the
/// connection closes after the acknowledgement.
#[test]
fn shutdown_op_drains() {
    let model = DecisionModel::untrained(CitConfig::smoke(3), 2).unwrap();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let ack = client.call(&Request::Shutdown).unwrap();
    assert!(ack.ok());
    // The server closed our connection after the ack.
    assert!(client.call(&Request::Info).is_err());
    assert!(server.is_draining());
    server.shutdown();
}

/// Unknown sessions and malformed lines produce typed errors, not hangs.
#[test]
fn error_paths_are_typed() {
    let model = DecisionModel::untrained(CitConfig::smoke(3), 2).unwrap();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let r = client
        .call(&Request::Decide {
            session: "ghost".into(),
            prices: vec![],
        })
        .unwrap();
    assert_eq!(r.error_kind(), Some(ErrorKind::UnknownSession));

    let r = client.call_line("this is not json").unwrap();
    assert_eq!(r.error_kind(), Some(ErrorKind::BadRequest));

    let r = client.call_line(r#"{"op":"sleep","ms":5}"#).unwrap();
    assert_eq!(r.error_kind(), Some(ErrorKind::BadRequest), "debug op off");

    let panel = synth(2, 3);
    assert!(client
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 40),
        })
        .unwrap()
        .ok());
    let r = client
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 40),
        })
        .unwrap();
    assert_eq!(r.error_kind(), Some(ErrorKind::SessionExists));

    let r = client
        .call(&Request::Decide {
            session: "s".into(),
            prices: vec![vec![1.0; 3]],
        })
        .unwrap();
    assert_eq!(r.error_kind(), Some(ErrorKind::BadData));

    let r = client
        .call(&Request::Close {
            session: "s".into(),
        })
        .unwrap();
    assert!(r.ok());
    server.shutdown();
}

/// Concurrent clients on distinct sessions all get correct, independent
/// decision streams through the micro-batcher.
#[test]
fn concurrent_sessions_are_independent() {
    let panel = synth(2, 23);
    let (ckpt, cfg) = trained_checkpoint("concurrent", &panel, 23);
    let model = DecisionModel::from_checkpoint(&ckpt, cfg, 2).unwrap();

    // Reference stream, computed offline once.
    let reference = {
        let model = DecisionModel::from_checkpoint(&ckpt, cfg, 2).unwrap();
        let mut cache = model.new_cache();
        let mut prev = model.uniform_prev_actions();
        (160..180)
            .map(|t| {
                let out = model.decide(&panel, t, &prev, &mut cache);
                prev = out.pre_actions.clone();
                out.final_action
            })
            .collect::<Vec<_>>()
    };

    let server = Server::start(model, ServeConfig::default()).unwrap();
    let addr = server.addr();
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let reference = reference.clone();
            let panel = panel.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let session = format!("w{w}");
                assert!(c
                    .call(&Request::Open {
                        session: session.clone(),
                        prices: rows(&panel, 0, 160),
                    })
                    .unwrap()
                    .ok());
                for (i, expected) in reference.iter().enumerate() {
                    let t = 160 + i;
                    let reply = c
                        .call(&Request::Decide {
                            session: session.clone(),
                            prices: rows(&panel, t, t + 1),
                        })
                        .unwrap();
                    assert!(reply.ok(), "{:?}", reply.error_message());
                    let got = reply.final_action().unwrap();
                    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&got), bits(expected), "worker {w} diverged at t={t}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    assert_eq!(server.sessions(), 4);
    server.shutdown();
    std::fs::remove_file(&ckpt).ok();
}
