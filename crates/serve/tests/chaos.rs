//! Chaos tests for the serving plane: injected socket, spill and batcher
//! faults against a live server with concurrent clients. The contract
//! under test — no panics, damaged spills quarantined (never deleted)
//! and surfaced as typed `session_lost`, stale jobs shed with typed
//! `deadline_exceeded`, reject accounting consistent between clients and
//! the server, queue depth back to zero, and every session that dodged
//! the faults deciding **bitwise identically** to an uninjected run.

use cit_core::{CitConfig, DecisionModel};
use cit_faults::{FaultInjector, FaultPlan};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{Client, ErrorKind, Request, RetryPolicy, ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

fn synth(num_assets: usize, seed: u64) -> AssetPanel {
    SynthConfig {
        num_assets,
        num_days: 220,
        test_start: 160,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The `[m·4]` OHLC wire rows for panel days `[from, to)`.
fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
    (from..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cit_chaos_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn model(seed: u64, assets: usize) -> DecisionModel {
    DecisionModel::untrained(CitConfig::smoke(seed), assets).expect("smoke model")
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Files in `dir` whose name ends with `suffix`.
fn files_with_suffix(dir: &PathBuf, suffix: &str) -> usize {
    std::fs::read_dir(dir)
        .map(|d| {
            d.flatten()
                .filter(|e| e.file_name().to_string_lossy().ends_with(suffix))
                .count()
        })
        .unwrap_or(0)
}

/// A spill file damaged on disk between two server runs is quarantined
/// by the startup recovery scan — renamed to `*.corrupt`, counted in
/// `sessions_quarantined` — and the session id becomes free again. Torn
/// temp files and alien bytes get the same treatment; intact spills are
/// left alone.
#[test]
fn startup_recovery_scan_quarantines_damaged_spills() {
    let panel = synth(2, 71);
    let dir = spill_dir("recover");
    let cfg = ServeConfig {
        spill_dir: Some(dir.clone()),
        ..Default::default()
    };

    // First server: two sessions, spilled at shutdown.
    let first = Server::start(model(71, 2), cfg.clone()).unwrap();
    let mut c = Client::connect(first.addr()).unwrap();
    for name in ["victim", "intact"] {
        assert!(c
            .call(&Request::Open {
                session: name.into(),
                prices: rows(&panel, 0, 160),
            })
            .unwrap()
            .ok());
    }
    first.shutdown();
    assert_eq!(files_with_suffix(&dir, ".spill"), 2);

    // Damage one spill (truncate to half), plant a stale temp file and a
    // file that was never a spill.
    let victim_path = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            std::fs::read(p).is_ok_and(|b| {
                String::from_utf8_lossy(&b).contains("victim")
                    || p.to_string_lossy().contains(&hex("victim"))
            })
        })
        .expect("victim spill on disk");
    let good = std::fs::read(&victim_path).unwrap();
    std::fs::write(&victim_path, &good[..good.len() / 2]).unwrap();
    std::fs::write(dir.join("torn.spill.tmp"), b"half a write").unwrap();
    std::fs::write(dir.join("alien.spill"), b"NOTSPILL").unwrap();

    // Second server: the scan quarantines the damage before traffic.
    let second = Server::start(model(71, 2), cfg).unwrap();
    let mut c = Client::connect(second.addr()).unwrap();
    let stats = c.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(
        stats.sessions_quarantined, 3,
        "truncated spill + temp file + alien bytes must all be quarantined"
    );
    assert_eq!(
        files_with_suffix(&dir, ".corrupt"),
        3,
        "renamed, not deleted"
    );
    assert_eq!(
        files_with_suffix(&dir, ".spill"),
        1,
        "intact spill untouched"
    );

    // The quarantined session's id is free again; the intact one is not.
    assert!(c
        .call(&Request::Open {
            session: "victim".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    assert!(!c
        .call(&Request::Open {
            session: "intact".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Hex encoding matching the spill filename scheme.
fn hex(name: &str) -> String {
    name.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
}

/// A spill corrupted *while the server runs* (injected torn write) is
/// detected at restore: the client gets a typed `session_lost`, the file
/// is quarantined and counted, and the session id is free to reopen —
/// the server never panics and other sessions never notice.
#[test]
fn live_spill_corruption_surfaces_typed_session_lost() {
    let panel = synth(2, 73);
    let dir = spill_dir("livecorrupt");
    let plan = FaultPlan::parse("cit-faults v1\nseed 1\npartial-write serve.spill.truncate 1 40\n")
        .unwrap();
    let cfg = ServeConfig {
        spill_dir: Some(dir.clone()),
        session_ttl: Some(Duration::from_millis(40)),
        tick_ms: 10,
        faults: FaultInjector::new(plan),
        ..Default::default()
    };
    let server = Server::start(model(73, 2), cfg).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());

    // Let the TTL evict it — the first spill write is truncated to 40
    // bytes by the plan.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = c.call(&Request::Stats).unwrap().stats().unwrap();
        if stats.sessions_evicted >= 1 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // The decide that triggers the restore must come back as a typed
    // session_lost — not a hang, not a panic, not a silent wrong answer.
    let reply = c
        .call(&Request::Decide {
            session: "s".into(),
            prices: rows(&panel, 160, 161),
        })
        .unwrap();
    assert!(!reply.ok());
    assert_eq!(
        reply.error_kind(),
        Some(ErrorKind::SessionLost),
        "restore of a torn spill must surface session_lost, got {:?}",
        reply.error_message()
    );
    let stats = c.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(stats.sessions_quarantined, 1);
    assert_eq!(
        files_with_suffix(&dir, ".corrupt"),
        1,
        "quarantined, not deleted"
    );
    // The id is free again and the server is fully operational.
    assert!(c
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Deadline budgets shed stale work: a request stuck behind a stalled
/// batch longer than `request_deadline` is answered with a typed
/// `deadline_exceeded` reject (not computed late, not dropped), the
/// retry policy recovers it, and the queue depth returns to zero.
#[test]
fn deadline_shedding_rejects_stale_queued_jobs() {
    let panel = synth(2, 79);
    let cfg = ServeConfig {
        debug_ops: true,
        request_deadline: Some(Duration::from_millis(50)),
        ..Default::default()
    };
    let server = Server::start(model(79, 2), cfg).unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    assert!(c
        .call(&Request::Open {
            session: "d".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());

    // Stall the batcher for 150 ms from a second connection, then queue
    // a decide behind it: by the time the batcher drains it, the decide
    // has overstayed its 50 ms budget.
    let staller = std::thread::spawn(move || {
        let mut s = Client::connect(addr).unwrap();
        let r = s.call(&Request::Sleep { ms: 150 }).unwrap();
        assert!(r.ok());
    });
    std::thread::sleep(Duration::from_millis(30)); // sleep batch is in flight
    let reply = c
        .call(&Request::Decide {
            session: "d".into(),
            prices: rows(&panel, 160, 161),
        })
        .unwrap();
    staller.join().unwrap();
    assert!(!reply.ok());
    assert_eq!(
        reply.error_kind(),
        Some(ErrorKind::DeadlineExceeded),
        "stale queued job must be shed with deadline_exceeded, got {:?}",
        reply.error_message()
    );

    // A shed request touched no session state: the retry policy replays
    // the identical decide and it lands.
    let mut policy = RetryPolicy::new(10).seeded(79);
    let retried = c
        .call_retry(
            &Request::Decide {
                session: "d".into(),
                prices: rows(&panel, 160, 161),
            },
            &mut policy,
        )
        .unwrap();
    assert!(retried.ok(), "{:?}", retried.error_message());

    let stats = c.call(&Request::Stats).unwrap().stats().unwrap();
    assert!(
        stats
            .errors
            .iter()
            .any(|(tag, n)| tag == "deadline_exceeded" && *n >= 1),
        "deadline_exceeded missing from stats error breakdown: {:?}",
        stats.errors
    );
    assert_eq!(stats.queue_depth, 0, "shed jobs must release queue slots");
    server.shutdown();
}

/// What a chaos-soak worker saw, for parity and accounting.
struct WorkerReport {
    session: String,
    /// Bitwise final actions for each decided day, in order.
    decided: Vec<Vec<u64>>,
    /// Retryable rejects observed (retries taken + terminal rejects).
    rejects: u64,
    /// The worker lost its connection or its session mid-run.
    excluded: bool,
    /// Responses that were neither ok nor a typed protocol error.
    protocol_errors: u64,
}

/// The full chaos soak: the CI fault plan (sockets, spills, batcher
/// stalls, reload) against concurrent clients with retrying, over a
/// server with aggressive eviction and a deadline budget. Asserts the
/// whole robustness contract at once.
#[test]
fn chaos_soak_survives_combined_fault_plan() {
    const WORKERS: usize = 8;
    const DAYS: std::ops::Range<usize> = 160..190;
    let panel = synth(2, 83);

    // Uninjected control: the bitwise ground truth per day. Sessions are
    // independent, so one control session stands for all of them.
    let control = Server::start(model(83, 2), ServeConfig::default()).unwrap();
    let mut cc = Client::connect(control.addr()).unwrap();
    assert!(cc
        .call(&Request::Open {
            session: "ctl".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    let mut expected: Vec<Vec<u64>> = Vec::new();
    for t in DAYS {
        let r = cc
            .call(&Request::Decide {
                session: "ctl".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(r.ok());
        expected.push(bits(&r.final_action().unwrap()));
    }
    control.shutdown();

    // Chaos server under the same plan ci.sh uses.
    let plan_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../faults/plans/serve_chaos.plan");
    let plan_text = std::fs::read_to_string(&plan_path).expect("serve_chaos.plan readable");
    let plan = FaultPlan::parse(&plan_text).expect("serve_chaos.plan parses");
    let dir = spill_dir("soak");
    let cfg = ServeConfig {
        spill_dir: Some(dir.clone()),
        session_ttl: Some(Duration::from_millis(40)),
        tick_ms: 10,
        request_deadline: Some(Duration::from_millis(25)),
        faults: FaultInjector::new(plan),
        ..Default::default()
    };
    let server = Server::start(model(83, 2), cfg).unwrap();
    let addr = server.addr();

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let panel = panel.clone();
            std::thread::spawn(move || {
                let session = format!("w{w}");
                let mut report = WorkerReport {
                    session: session.clone(),
                    decided: Vec::new(),
                    rejects: 0,
                    excluded: false,
                    protocol_errors: 0,
                };
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        report.excluded = true;
                        return report;
                    }
                };
                let mut policy = RetryPolicy::new(12).seeded(1000 + w as u64);
                let open = client.call_retry(
                    &Request::Open {
                        session: session.clone(),
                        prices: rows(&panel, 0, 160),
                    },
                    &mut policy,
                );
                match open {
                    Ok(r) if r.ok() => {}
                    Ok(_) | Err(_) => {
                        report.rejects += std::mem::take(&mut policy.retries_taken);
                        report.excluded = true;
                        return report;
                    }
                }
                for (i, t) in DAYS.enumerate() {
                    // Go idle past the TTL on some days so eviction,
                    // spill and restore interleave with the faults.
                    if t % 3 == w % 3 {
                        std::thread::sleep(Duration::from_millis(60));
                    }
                    let reply = client.call_retry(
                        &Request::Decide {
                            session: session.clone(),
                            prices: rows(&panel, t, t + 1),
                        },
                        &mut policy,
                    );
                    match reply {
                        Ok(r) if r.ok() => {
                            report.decided.push(bits(&r.final_action().unwrap()));
                        }
                        Ok(r) => {
                            match r.error_kind() {
                                // Session state is gone (quarantined
                                // spill) — a real client reopens; for
                                // parity this stream is over.
                                Some(ErrorKind::SessionLost) => {}
                                // Retries exhausted on a retryable kind:
                                // counts as one more observed reject.
                                Some(k) if k.is_retryable() => report.rejects += 1,
                                _ => report.protocol_errors += 1,
                            }
                            report.excluded = true;
                            break;
                        }
                        // Connection killed by an injected socket fault:
                        // a mid-flight decide must not be blindly
                        // resent (it may have been applied), so the
                        // stream ends here.
                        Err(_) => {
                            report.excluded = true;
                            break;
                        }
                    }
                    let _ = i;
                }
                report.rejects += policy.retries_taken;
                report
            })
        })
        .collect();

    let reports: Vec<WorkerReport> = workers
        .into_iter()
        .map(|h| h.join().expect("chaos worker must not panic"))
        .collect();

    // No response was ever malformed or mistyped.
    let protocol_errors: u64 = reports.iter().map(|r| r.protocol_errors).sum();
    assert_eq!(
        protocol_errors, 0,
        "typed-error contract violated under chaos"
    );

    // Bitwise parity: every decision any worker got — including those of
    // workers later excluded — matches the uninjected control stream.
    let mut clean = 0;
    for report in &reports {
        for (day, got) in report.decided.iter().enumerate() {
            assert_eq!(
                got, &expected[day],
                "session {} diverged from control at day index {day}",
                report.session
            );
        }
        if !report.excluded {
            assert_eq!(report.decided.len(), DAYS.len());
            clean += 1;
        }
    }
    assert!(
        clean >= 2,
        "too few sessions survived the plan cleanly ({clean}/{WORKERS}) — the soak is vacuous"
    );

    // Accounting against the server, via a resilient stats client.
    let mut stats_policy = RetryPolicy::new(8).seeded(2).with_io_retries();
    let mut sc = Client::connect(addr).unwrap();
    let stats = sc
        .call_retry(&Request::Stats, &mut stats_policy)
        .unwrap()
        .stats()
        .unwrap();

    // Every retryable reject a client observed was counted by the server;
    // the server may additionally have counted rejects whose response
    // died with an injected connection drop (at most one in-flight per
    // dropped worker).
    let client_rejects: u64 = reports.iter().map(|r| r.rejects).sum();
    let server_rejects: u64 = stats
        .errors
        .iter()
        .filter(|(tag, _)| tag == "overloaded" || tag == "deadline_exceeded")
        .map(|(_, n)| n)
        .sum();
    let dropped = reports.iter().filter(|r| r.excluded).count() as u64;
    assert!(
        server_rejects >= client_rejects && server_rejects - client_rejects <= dropped,
        "reject accounting drifted: clients saw {client_rejects}, server counted \
         {server_rejects}, {dropped} workers dropped"
    );

    // The plan's spill corruption was detected and quarantined (the
    // workers' idle periods force eviction/restore traffic through it).
    assert!(
        stats.sessions_quarantined >= 1,
        "no spill damage was ever quarantined — the spill faults never bit"
    );
    assert_eq!(
        files_with_suffix(&dir, ".corrupt") as u64,
        stats.sessions_quarantined
    );

    // All shed and answered work released its queue slot.
    assert_eq!(stats.queue_depth, 0, "queue depth must return to zero");

    // The injected reload fault was absorbed as a typed reload_failed
    // without touching the live model.
    let before = stats.reloads;
    let r = sc
        .call_retry(
            &Request::Reload {
                checkpoint: "/nonexistent".into(),
            },
            &mut stats_policy,
        )
        .unwrap();
    assert!(!r.ok());
    assert_eq!(r.error_kind(), Some(ErrorKind::ReloadFailed));
    let after = sc
        .call_retry(&Request::Stats, &mut stats_policy)
        .unwrap()
        .stats()
        .unwrap();
    assert_eq!(
        after.reloads, before,
        "failed reload must not swap the model"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
