//! End-to-end tests of the live metrics plane: the `stats` op under
//! real load, the admin exposition endpoint, the queue-depth gauge
//! across reject bursts, and checkpoint identity across reloads.

use cit_core::{CitConfig, CrossInsightTrader, DecisionModel};
use cit_market::{AssetPanel, Feature, SynthConfig};
use cit_serve::{json::Json, Client, ErrorKind, Request, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn synth(num_assets: usize, seed: u64) -> AssetPanel {
    SynthConfig {
        num_assets,
        num_days: 220,
        test_start: 160,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The `[m·4]` OHLC wire rows for panel days `[from, to)`.
fn rows(panel: &AssetPanel, from: usize, to: usize) -> Vec<Vec<f64>> {
    (from..to)
        .map(|t| {
            (0..panel.num_assets())
                .flat_map(|i| {
                    [Feature::Open, Feature::High, Feature::Low, Feature::Close]
                        .into_iter()
                        .map(move |f| panel.price(t, i, f))
                })
                .collect()
        })
        .collect()
}

/// One plain-HTTP GET against the admin listener; returns (status line,
/// body).
fn admin_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A live server under decide load answers `stats` with non-zero
/// last-10s throughput and latency quantiles, a per-op breakdown, and
/// consistent totals.
#[test]
fn stats_under_load_report_live_windows() {
    let panel = synth(2, 11);
    let model = DecisionModel::untrained(CitConfig::smoke(11), 2).unwrap();
    let cfg = ServeConfig {
        checkpoint_label: "smoke-11".into(),
        ..Default::default()
    };
    let server = Server::start(model, cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    assert!(client
        .call(&Request::Open {
            session: "load".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    for t in 160..200 {
        let reply = client
            .call(&Request::Decide {
                session: "load".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap();
        assert!(reply.ok(), "{:?}", reply.error_message());
    }

    let reply = client.call(&Request::Stats).unwrap();
    assert!(reply.ok());
    let stats = reply.stats().expect("typed stats payload");

    assert_eq!(stats.checkpoint, "smoke-11");
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.queue_depth, 0, "queue idle between requests");
    // open + 40 decides (+ this stats request, observed after building
    // the reply, so not yet counted).
    assert_eq!(stats.requests_total, 41);
    assert_eq!(stats.errors_total, 0);
    assert!(stats.batch_mean >= 1.0);

    // The whole burst happened inside the last 10 seconds.
    let w10 = stats.windows.iter().find(|w| w.secs == 10).expect("10s");
    assert!(w10.requests >= 41, "window missed requests: {w10:?}");
    assert!(w10.req_per_s > 0.0, "live req/s must be non-zero");
    assert!(w10.p99_us > 0.0, "live p99 must be non-zero");
    assert!(
        w10.p50_us <= w10.p95_us && w10.p95_us <= w10.p99_us,
        "quantiles must be ordered: {w10:?}"
    );

    let decide = stats.ops.iter().find(|o| o.op == "decide").expect("decide");
    assert_eq!(decide.requests, 40);
    assert_eq!(decide.errors, 0);
    assert!(decide.p99_us > 0.0);
    assert!(stats.ops.iter().any(|o| o.op == "open"));
    server.shutdown();
}

/// The admin listener serves Prometheus-parseable text exposition and a
/// JSON snapshot without speaking the line protocol; unknown paths 404.
#[test]
fn admin_endpoint_serves_parseable_exposition() {
    let panel = synth(2, 13);
    let model = DecisionModel::untrained(CitConfig::smoke(13), 2).unwrap();
    let cfg = ServeConfig {
        admin_addr: Some("127.0.0.1:0".into()),
        ..Default::default()
    };
    let server = Server::start(model, cfg).unwrap();
    let admin = server.admin_addr().expect("admin listener bound");
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 160),
        })
        .unwrap()
        .ok());
    for t in 160..170 {
        assert!(client
            .call(&Request::Decide {
                session: "s".into(),
                prices: rows(&panel, t, t + 1),
            })
            .unwrap()
            .ok());
    }

    let (status, body) = admin_get(admin, "/metrics");
    assert!(status.contains("200"), "bad status: {status}");
    // Expected metric families from the serving plane.
    for needle in [
        "# TYPE serve_requests counter",
        "# TYPE serve_latency histogram",
        "serve_latency_window_bucket{",
        "serve_requests_window_rate{window=\"10s\"}",
        "serve_op_decide_requests 10",
        "serve_sessions 1",
        "serve_queue_depth 0",
        "telemetry_uptime_seconds",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    // Every sample line is `name[{labels}] value` with a finite value.
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name, value) = line.rsplit_once(' ').expect("sample line shape");
        assert!(!name.is_empty());
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        assert!(v.is_finite(), "non-finite sample in {line:?}");
    }
    // Cumulative histogram buckets are monotone non-decreasing.
    let mut last = 0u64;
    for line in body
        .lines()
        .filter(|l| l.starts_with("serve_latency_bucket"))
    {
        let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(v >= last, "non-monotone bucket: {line}");
        last = v;
    }

    let (status, body) = admin_get(admin, "/stats");
    assert!(status.contains("200"));
    let snap = Json::parse(body.trim()).expect("valid JSON snapshot");
    assert!(snap.get("uptime_s").and_then(Json::as_f64).is_some());
    assert!(snap.get("metrics").is_some());

    let (status, _) = admin_get(admin, "/nope");
    assert!(status.contains("404"), "unknown path must 404: {status}");
    server.shutdown();
}

/// Regression: a burst of `overloaded` rejects must leave the
/// queue-depth gauge at exactly zero — the rejected jobs' occupancy is
/// released on the reject path, not only on the answered path.
#[test]
fn overloaded_burst_leaves_queue_depth_zero() {
    let panel = synth(2, 19);
    let model = DecisionModel::untrained(CitConfig::smoke(19), 2).unwrap();
    let cfg = ServeConfig {
        max_batch: 1,
        queue_cap: 2,
        debug_ops: true,
        ..Default::default()
    };
    let server = Server::start(model, cfg).unwrap();
    let addr = server.addr();

    let mut setup = Client::connect(addr).unwrap();
    assert!(setup
        .call(&Request::Open {
            session: "s".into(),
            prices: rows(&panel, 0, 40),
        })
        .unwrap()
        .ok());

    // Stall the batcher, fill the bounded queue, then burst well past it.
    let stall = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call(&Request::Sleep { ms: 700 }).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.call(&Request::Decide {
                    session: "s".into(),
                    prices: vec![],
                })
                .unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    let mut rejects = 0;
    for _ in 0..16 {
        let reply = setup
            .call(&Request::Decide {
                session: "s".into(),
                prices: vec![],
            })
            .unwrap();
        assert_eq!(reply.error_kind(), Some(ErrorKind::Overloaded));
        rejects += 1;
    }
    assert_eq!(rejects, 16);

    // Drain: stalled + queued work completes.
    assert!(stall.join().unwrap().ok());
    for f in fillers {
        assert!(f.join().unwrap().ok());
    }

    let stats = server.stats();
    assert_eq!(
        stats.queue_depth, 0,
        "rejects leaked queue occupancy: {stats:?}"
    );
    let overloaded = stats
        .errors
        .iter()
        .find(|(kind, _)| kind == "overloaded")
        .map(|(_, n)| *n)
        .unwrap_or(0);
    assert_eq!(overloaded, 16, "all rejects counted by kind");
    assert_eq!(stats.errors_total, 16);
    server.shutdown();
}

/// `stats` reports the identity of the loaded checkpoint and follows a
/// successful hot reload; a failed reload leaves it untouched.
#[test]
fn stats_track_checkpoint_identity_across_reload() {
    let panel = synth(2, 29);
    let cfg = CitConfig::smoke(29);
    let mut trader = CrossInsightTrader::new(&panel, cfg);
    trader.train(&panel);
    let dir = std::env::temp_dir().join(format!("cit_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("reload.cit");
    trader.save(&ckpt).expect("save checkpoint");

    let model = DecisionModel::from_checkpoint(&ckpt, cfg, 2).unwrap();
    let server = Server::start(
        model,
        ServeConfig {
            checkpoint_label: "boot-label".into(),
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let stats = client.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(stats.checkpoint, "boot-label");
    assert_eq!(stats.reloads, 0);

    // Failed reload: identity unchanged.
    assert!(!client
        .call(&Request::Reload {
            checkpoint: "/nonexistent/x.cit".into(),
        })
        .unwrap()
        .ok());
    let stats = client.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(stats.checkpoint, "boot-label");
    assert_eq!(stats.reloads, 0);

    // Successful reload: identity follows the new checkpoint path.
    assert!(client
        .call(&Request::Reload {
            checkpoint: ckpt.display().to_string(),
        })
        .unwrap()
        .ok());
    let stats = client.call(&Request::Stats).unwrap().stats().unwrap();
    assert_eq!(stats.checkpoint, ckpt.display().to_string());
    assert_eq!(stats.reloads, 1);
    server.shutdown();
    std::fs::remove_file(&ckpt).ok();
}
