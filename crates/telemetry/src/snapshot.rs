//! A whole-registry metrics snapshot with std-only encoders.
//!
//! [`TelemetrySnapshot`] freezes every registered counter, gauge,
//! histogram, rolling histogram and windowed counter into plain data,
//! then renders it either as Prometheus-style text exposition
//! ([`TelemetrySnapshot::to_prometheus`], what `cit-serve`'s admin
//! `GET /metrics` endpoint returns) or as one deterministic JSON object
//! ([`TelemetrySnapshot::to_json`], reusing the same bitwise-safe
//! [`crate::Value`] encoding as the JSONL sinks).

use crate::value::Value;
use crate::window::{WindowSnapshot, DEFAULT_WINDOWS};
use std::fmt::Write as _;

/// Frozen bucket state of a (cumulative or windowed) histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramData {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: f64,
    /// Bucket upper bounds; one overflow bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket counts including the trailing overflow bucket.
    pub buckets: Vec<u64>,
}

impl HistogramData {
    pub(crate) fn from_window(w: &WindowSnapshot) -> Self {
        HistogramData {
            count: w.count,
            sum: w.sum,
            bounds: w.bounds.clone(),
            buckets: w.buckets.clone(),
        }
    }

    /// Quantile estimate by in-bucket interpolation (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        crate::window::bucket_quantile(&self.bounds, &self.buckets, self.count, q)
    }
}

/// One trailing window's digest of a rolling histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowData {
    /// Window length in seconds (nominal).
    pub secs: u64,
    /// Effective covered seconds (capped at uptime).
    pub window_s: f64,
    /// Observations inside the window.
    pub count: u64,
    /// Observations per second (0 when empty).
    pub rate: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One trailing window's digest of a windowed counter.
#[derive(Debug, Clone, PartialEq)]
pub struct RateData {
    /// Window length in seconds (nominal).
    pub secs: u64,
    /// Events inside the window.
    pub count: u64,
    /// Events per second (0 when empty).
    pub rate: f64,
}

/// The frozen state of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricData {
    /// A monotone counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A cumulative fixed-bucket histogram.
    Histogram(HistogramData),
    /// A rolling histogram: the cumulative view plus trailing windows.
    RollingHistogram {
        /// Whole-run bucket state.
        cumulative: HistogramData,
        /// Digests for [`DEFAULT_WINDOWS`].
        windows: Vec<WindowData>,
    },
    /// A windowed counter: the total plus trailing-window rates.
    WindowedCounter {
        /// Events since start.
        total: u64,
        /// Digests for [`DEFAULT_WINDOWS`].
        windows: Vec<RateData>,
    },
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// The registry name (dotted, e.g. `serve.latency`).
    pub name: String,
    /// The frozen state.
    pub data: MetricData,
}

/// A point-in-time copy of every metric in a [`crate::Telemetry`]
/// registry, with std-only encoders for scraping and dashboards.
///
/// ```
/// use cit_telemetry::Telemetry;
///
/// let (telemetry, _sink) = Telemetry::memory();
/// telemetry.counter("serve.requests").add(3);
/// telemetry.gauge("serve.sessions").set(2.0);
/// telemetry.rolling_histogram("serve.latency_window", &[0.001, 0.1]).record(0.02);
///
/// let snap = telemetry.take_snapshot();
/// let text = snap.to_prometheus();
/// assert!(text.contains("# TYPE serve_requests counter"));
/// assert!(text.contains("serve_requests 3"));
/// assert!(text.contains("serve_latency_window_bucket{le=\"+Inf\"} 1"));
///
/// let json = snap.to_json();
/// assert!(json.contains("\"serve.sessions\""));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Wall-clock capture time (milliseconds since the Unix epoch).
    pub at_unix_ms: u64,
    /// Monotonic seconds since the process's telemetry epoch.
    pub uptime_s: f64,
    /// Every registered metric, sorted by name.
    pub entries: Vec<MetricEntry>,
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; dotted registry names
/// map dots (and anything else) to underscores.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn write_histogram_exposition(out: &mut String, name: &str, h: &HistogramData) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        cum += c;
        if i < h.bounds.len() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", h.bounds[i]);
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        }
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

impl TelemetrySnapshot {
    /// Renders Prometheus-style text exposition (version 0.0.4 format):
    /// one `# TYPE` header per family, histograms with cumulative
    /// `_bucket{le=...}` lines, window digests as labelled gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256 + self.entries.len() * 64);
        let _ = writeln!(out, "# TYPE telemetry_uptime_seconds gauge");
        let _ = writeln!(out, "telemetry_uptime_seconds {}", self.uptime_s);
        for e in &self.entries {
            let name = sanitize(&e.name);
            match &e.data {
                MetricData::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricData::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricData::Histogram(h) => write_histogram_exposition(&mut out, &name, h),
                MetricData::RollingHistogram {
                    cumulative,
                    windows,
                } => {
                    write_histogram_exposition(&mut out, &name, cumulative);
                    let _ = writeln!(out, "# TYPE {name}_window gauge");
                    for w in windows {
                        for (stat, v) in [
                            ("rate", w.rate),
                            ("p50", w.p50),
                            ("p95", w.p95),
                            ("p99", w.p99),
                        ] {
                            let _ = writeln!(
                                out,
                                "{name}_window{{window=\"{}s\",stat=\"{stat}\"}} {v}",
                                w.secs
                            );
                        }
                    }
                }
                MetricData::WindowedCounter { total, windows } => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {total}");
                    let _ = writeln!(out, "# TYPE {name}_rate gauge");
                    for w in windows {
                        let _ = writeln!(out, "{name}_rate{{window=\"{}s\"}} {}", w.secs, w.rate);
                    }
                }
            }
        }
        out
    }

    /// Renders one deterministic JSON object using the same bitwise-safe
    /// number encoding as the JSONL sinks: metric names key an object of
    /// typed entries, field order fixed by the registry's name sort.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.entries.len() * 96);
        s.push_str("{\"at_unix_ms\":");
        Value::from(self.at_unix_ms).encode(&mut s);
        s.push_str(",\"uptime_s\":");
        Value::from(self.uptime_s).encode(&mut s);
        s.push_str(",\"metrics\":{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            Value::from(e.name.as_str()).encode(&mut s);
            s.push(':');
            encode_metric(&mut s, &e.data);
        }
        s.push_str("}}");
        s
    }
}

fn encode_histogram_fields(s: &mut String, h: &HistogramData) {
    s.push_str("\"count\":");
    Value::from(h.count).encode(s);
    s.push_str(",\"sum\":");
    Value::from(h.sum).encode(s);
    s.push_str(",\"mean\":");
    let mean = if h.count == 0 {
        0.0
    } else {
        h.sum / h.count as f64
    };
    Value::from(mean).encode(s);
    for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
        s.push_str(",\"");
        s.push_str(label);
        s.push_str("\":");
        Value::from(h.quantile(q)).encode(s);
    }
    s.push_str(",\"bounds\":");
    Value::from(h.bounds.clone()).encode(s);
    s.push_str(",\"buckets\":");
    Value::Array(h.buckets.iter().map(|&b| Value::from(b)).collect()).encode(s);
}

fn encode_metric(s: &mut String, data: &MetricData) {
    match data {
        MetricData::Counter(v) => {
            s.push_str("{\"type\":\"counter\",\"value\":");
            Value::from(*v).encode(s);
            s.push('}');
        }
        MetricData::Gauge(v) => {
            s.push_str("{\"type\":\"gauge\",\"value\":");
            Value::from(*v).encode(s);
            s.push('}');
        }
        MetricData::Histogram(h) => {
            s.push_str("{\"type\":\"histogram\",");
            encode_histogram_fields(s, h);
            s.push('}');
        }
        MetricData::RollingHistogram {
            cumulative,
            windows,
        } => {
            s.push_str("{\"type\":\"rolling_histogram\",");
            encode_histogram_fields(s, cumulative);
            s.push_str(",\"windows\":[");
            for (i, w) in windows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("{\"secs\":");
                Value::from(w.secs).encode(s);
                s.push_str(",\"count\":");
                Value::from(w.count).encode(s);
                s.push_str(",\"rate\":");
                Value::from(w.rate).encode(s);
                for (label, v) in [("p50", w.p50), ("p95", w.p95), ("p99", w.p99)] {
                    s.push_str(",\"");
                    s.push_str(label);
                    s.push_str("\":");
                    Value::from(v).encode(s);
                }
                s.push('}');
            }
            s.push_str("]}");
        }
        MetricData::WindowedCounter { total, windows } => {
            s.push_str("{\"type\":\"windowed_counter\",\"total\":");
            Value::from(*total).encode(s);
            s.push_str(",\"windows\":[");
            for (i, w) in windows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("{\"secs\":");
                Value::from(w.secs).encode(s);
                s.push_str(",\"count\":");
                Value::from(w.count).encode(s);
                s.push_str(",\"rate\":");
                Value::from(w.rate).encode(s);
                s.push('}');
            }
            s.push_str("]}");
        }
    }
}

/// Builds the per-window digests of a rolling histogram for
/// [`DEFAULT_WINDOWS`].
pub(crate) fn window_digests(h: &crate::RollingHistogram) -> Vec<WindowData> {
    DEFAULT_WINDOWS
        .iter()
        .map(|&secs| {
            let w = h.window(secs);
            WindowData {
                secs,
                window_s: w.window_s,
                count: w.count,
                rate: w.rate(),
                p50: w.quantile(0.5),
                p95: w.quantile(0.95),
                p99: w.quantile(0.99),
            }
        })
        .collect()
}

/// Builds the per-window digests of a windowed counter for
/// [`DEFAULT_WINDOWS`].
pub(crate) fn rate_digests(c: &crate::WindowedCounter) -> Vec<RateData> {
    DEFAULT_WINDOWS
        .iter()
        .map(|&secs| RateData {
            secs,
            count: c.window_count(secs),
            rate: c.rate(secs),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn snapshot_covers_every_metric_type() {
        let (t, _sink) = Telemetry::memory();
        t.counter("a.count").add(7);
        t.gauge("b.gauge").set(-1.5);
        t.histogram("c.hist", &[1.0, 2.0]).record(1.5);
        t.rolling_histogram("d.roll", &[0.5]).record(0.25);
        t.windowed_counter("e.win").add(4);
        let snap = t.take_snapshot();
        assert_eq!(snap.entries.len(), 5);
        // Sorted by name.
        let names: Vec<_> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["a.count", "b.gauge", "c.hist", "d.roll", "e.win"]
        );
    }

    #[test]
    fn prometheus_exposition_is_parseable_shape() {
        let (t, _sink) = Telemetry::memory();
        t.counter("serve.requests").add(3);
        t.histogram("serve.lat", &[0.01, 0.1]).record(0.05);
        let text = t.take_snapshot().to_prometheus();
        for needle in [
            "# TYPE serve_requests counter",
            "serve_requests 3",
            "# TYPE serve_lat histogram",
            "serve_lat_bucket{le=\"0.01\"} 0",
            "serve_lat_bucket{le=\"0.1\"} 1",
            "serve_lat_bucket{le=\"+Inf\"} 1",
            "serve_lat_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn json_snapshot_is_valid_and_typed() {
        let (t, _sink) = Telemetry::memory();
        t.counter("x").add(1);
        t.windowed_counter("y").add(2);
        let json = t.take_snapshot().to_json();
        assert!(json.starts_with("{\"at_unix_ms\":"));
        assert!(json.contains("\"x\":{\"type\":\"counter\",\"value\":1}"));
        assert!(json.contains("\"type\":\"windowed_counter\",\"total\":2"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn disabled_registry_snapshots_empty() {
        let t = Telemetry::disabled();
        let snap = t.take_snapshot();
        assert!(snap.entries.is_empty());
        assert!(snap.to_prometheus().contains("telemetry_uptime_seconds"));
    }
}
