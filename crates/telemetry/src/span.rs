//! RAII span timers for hot paths.

use crate::metrics::Histogram;
use std::time::Instant;

/// Times a scope and records the elapsed seconds into a duration
/// histogram on drop. Obtained from [`crate::Telemetry::span`]; when
/// telemetry is disabled the span is inert and never reads the clock.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// An inert span (disabled telemetry).
    pub(crate) fn noop() -> Self {
        Span { inner: None }
    }

    /// A live span recording into `hist` on drop.
    pub(crate) fn live(hist: Histogram) -> Self {
        Span {
            inner: Some(SpanInner {
                hist,
                start: Instant::now(),
            }),
        }
    }

    /// Whether this span actually measures time.
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds elapsed so far (0 when inert).
    pub fn elapsed_secs(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |s| s.start.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            s.hist.record(s.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{duration_bounds, HistogramCore};
    use std::sync::Arc;

    #[test]
    fn live_span_records_on_drop() {
        let hist = Histogram(Some(Arc::new(HistogramCore::new(duration_bounds()))));
        {
            let _s = Span::live(hist.clone());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(hist.count(), 1);
        assert!(hist.sum() >= 0.002, "recorded {}", hist.sum());
    }

    #[test]
    fn noop_span_records_nothing() {
        let s = Span::noop();
        assert!(!s.is_live());
        assert_eq!(s.elapsed_secs(), 0.0);
    }
}
