//! Structured telemetry records.

use crate::value::Value;
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The process-wide monotonic epoch backing [`Stamp::elapsed_s`]:
/// initialised on first use, so elapsed times from every telemetry
/// handle in the process share one origin and are mutually orderable.
static PROCESS_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic seconds since the process's telemetry epoch.
pub(crate) fn process_elapsed_s() -> f64 {
    PROCESS_EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_secs_f64()
}

/// Wall-clock milliseconds since the Unix epoch.
pub(crate) fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Capture times of a record: a wall-clock stamp for correlating runs
/// with the outside world, plus a monotonic elapsed stamp immune to
/// clock steps for ordering and rate math within a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamp {
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Monotonic seconds since the process's telemetry epoch.
    pub elapsed_s: f64,
}

impl Stamp {
    /// Captures the current time from both clocks.
    pub fn now() -> Stamp {
        Stamp {
            unix_ms: unix_ms(),
            elapsed_s: process_elapsed_s(),
        }
    }
}

/// One structured diagnostic event: a kind tag plus ordered key/value
/// fields. Field order is preserved so JSONL output is deterministic.
///
/// Records are stamped by [`crate::Telemetry::emit`]; a record built and
/// serialised by hand stays unstamped and renders without time fields,
/// which keeps golden tests byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The record kind, e.g. `train.update` or `backtest.step`.
    pub kind: String,
    /// Capture times, filled in by [`crate::Telemetry::emit`].
    pub stamp: Option<Stamp>,
    /// Ordered fields.
    pub fields: Vec<(String, Value)>,
}

impl Record {
    /// Starts a record of the given kind (unstamped).
    pub fn new(kind: impl Into<String>) -> Self {
        Record {
            kind: kind.into(),
            stamp: None,
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push(key, value);
        self
    }

    /// Appends a field in place.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((key.into(), value.into()));
    }

    /// Looks up a field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience: a numeric field as `f64`.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// One-line JSON object: `{"kind":"...","k":v,...}`. Stamped records
    /// render `ts_ms` (wall clock) and `elapsed_s` (monotonic) right
    /// after the kind; unstamped records render exactly as before.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.fields.len() * 16);
        s.push_str("{\"kind\":");
        Value::from(self.kind.as_str()).encode(&mut s);
        if let Some(stamp) = &self.stamp {
            s.push_str(",\"ts_ms\":");
            Value::from(stamp.unix_ms).encode(&mut s);
            s.push_str(",\"elapsed_s\":");
            Value::from(stamp.elapsed_s).encode(&mut s);
        }
        for (k, v) in &self.fields {
            s.push(',');
            Value::from(k.as_str()).encode(&mut s);
            s.push(':');
            v.encode(&mut s);
        }
        s.push('}');
        s
    }

    /// Human-readable one-liner: `[kind] k=v k=v`.
    pub fn pretty(&self) -> String {
        let mut s = format!("[{}]", self.kind);
        for (k, v) in &self.fields {
            match v {
                Value::Str(text) => {
                    // Quote only when needed to keep progress lines clean.
                    if text.contains(' ') || text.is_empty() {
                        let _ = write!(s, " {k}={text:?}");
                    } else {
                        let _ = write!(s, " {k}={text}");
                    }
                }
                Value::Float(f) => {
                    let _ = write!(s, " {k}={f:.6}");
                }
                other => {
                    let _ = write!(s, " {k}={}", other.to_json());
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_preserves_field_order() {
        let r = Record::new("t").with("b", 1u64).with("a", 2u64);
        assert_eq!(r.to_json(), "{\"kind\":\"t\",\"b\":1,\"a\":2}");
    }

    #[test]
    fn pretty_is_single_line() {
        let r = Record::new("progress").with("msg", "running CIT on U.S.");
        let p = r.pretty();
        assert!(p.starts_with("[progress]"), "{p}");
        assert!(!p.contains('\n'));
    }

    #[test]
    fn stamped_records_render_time_fields_after_kind() {
        let mut r = Record::new("t").with("a", 1u64);
        r.stamp = Some(Stamp {
            unix_ms: 1700000000123,
            elapsed_s: 2.5,
        });
        assert_eq!(
            r.to_json(),
            "{\"kind\":\"t\",\"ts_ms\":1700000000123,\"elapsed_s\":2.5,\"a\":1}"
        );
    }

    #[test]
    fn stamp_now_reads_both_clocks() {
        let a = Stamp::now();
        let b = Stamp::now();
        assert!(
            a.unix_ms > 1_600_000_000_000,
            "wall clock sane: {}",
            a.unix_ms
        );
        assert!(b.elapsed_s >= a.elapsed_s, "monotonic never regresses");
    }

    #[test]
    fn get_finds_fields() {
        let r = Record::new("x").with("loss", 0.25).with("step", 7usize);
        assert_eq!(r.get_f64("loss"), Some(0.25));
        assert_eq!(r.get("step").and_then(|v| v.as_i64()), Some(7));
        assert!(r.get("missing").is_none());
    }
}
