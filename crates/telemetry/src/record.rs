//! Structured telemetry records.

use crate::value::Value;
use std::fmt::Write as _;

/// One structured diagnostic event: a kind tag plus ordered key/value
/// fields. Field order is preserved so JSONL output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The record kind, e.g. `train.update` or `backtest.step`.
    pub kind: String,
    /// Ordered fields.
    pub fields: Vec<(String, Value)>,
}

impl Record {
    /// Starts a record of the given kind.
    pub fn new(kind: impl Into<String>) -> Self {
        Record {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push(key, value);
        self
    }

    /// Appends a field in place.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((key.into(), value.into()));
    }

    /// Looks up a field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience: a numeric field as `f64`.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// One-line JSON object: `{"kind":"...","k":v,...}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.fields.len() * 16);
        s.push_str("{\"kind\":");
        Value::from(self.kind.as_str()).encode(&mut s);
        for (k, v) in &self.fields {
            s.push(',');
            Value::from(k.as_str()).encode(&mut s);
            s.push(':');
            v.encode(&mut s);
        }
        s.push('}');
        s
    }

    /// Human-readable one-liner: `[kind] k=v k=v`.
    pub fn pretty(&self) -> String {
        let mut s = format!("[{}]", self.kind);
        for (k, v) in &self.fields {
            match v {
                Value::Str(text) => {
                    // Quote only when needed to keep progress lines clean.
                    if text.contains(' ') || text.is_empty() {
                        let _ = write!(s, " {k}={text:?}");
                    } else {
                        let _ = write!(s, " {k}={text}");
                    }
                }
                Value::Float(f) => {
                    let _ = write!(s, " {k}={f:.6}");
                }
                other => {
                    let _ = write!(s, " {k}={}", other.to_json());
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_preserves_field_order() {
        let r = Record::new("t").with("b", 1u64).with("a", 2u64);
        assert_eq!(r.to_json(), "{\"kind\":\"t\",\"b\":1,\"a\":2}");
    }

    #[test]
    fn pretty_is_single_line() {
        let r = Record::new("progress").with("msg", "running CIT on U.S.");
        let p = r.pretty();
        assert!(p.starts_with("[progress]"), "{p}");
        assert!(!p.contains('\n'));
    }

    #[test]
    fn get_finds_fields() {
        let r = Record::new("x").with("loss", 0.25).with("step", 7usize);
        assert_eq!(r.get_f64("loss"), Some(0.25));
        assert_eq!(r.get("step").and_then(|v| v.as_i64()), Some(7));
        assert!(r.get("missing").is_none());
    }
}
