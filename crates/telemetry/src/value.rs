//! A minimal JSON value model with a hand-rolled encoder.
//!
//! The build environment resolves dependencies offline, so `serde_json`
//! is unavailable; the telemetry schema only needs scalars, strings and
//! flat arrays, which this module covers completely. Encoding is
//! deterministic (fields keep insertion order) so JSONL output can be
//! golden-tested.

use std::fmt::Write as _;

/// A JSON-encodable value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (covers unsigned workspace uses too).
    Int(i64),
    /// A double-precision float; non-finite values encode as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// A flat array of values.
    Array(Vec<Value>),
}

impl Value {
    /// Appends the JSON encoding of `self` to `out`.
    pub fn encode(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Always keep a decimal point or exponent so the
                    // value round-trips as a float.
                    let mut s = format!("{f}");
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => encode_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode(out);
                }
                out.push(']');
            }
        }
    }

    /// The JSON encoding as a fresh string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.encode(&mut s);
        s
    }

    /// The float content, if this value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string content, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

/// JSON string encoding with the escapes required by RFC 8259.
fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&[f64]> for Value {
    fn from(v: &[f64]) -> Self {
        Value::Array(v.iter().map(|&x| Value::Float(x)).collect())
    }
}
impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Array(v.into_iter().map(Value::Float).collect())
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode_as_json() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Int(-3).to_json(), "-3");
        assert_eq!(Value::Float(0.5).to_json(), "0.5");
        assert_eq!(Value::Float(2.0).to_json(), "2.0");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(Value::from("a\"b\\c\nd").to_json(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Value::from("\u{1}").to_json(), "\"\\u0001\"");
    }

    #[test]
    fn arrays_encode_in_order() {
        let v = Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::from("x")]);
        assert_eq!(v.to_json(), "[1,2.5,\"x\"]");
    }
}
