//! Pluggable record sinks.

use crate::record::Record;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Consumes emitted [`Record`]s.
pub trait Sink: Send + Sync {
    /// Handles one record.
    fn emit(&self, record: &Record);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards everything.
#[derive(Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _record: &Record) {}
}

/// Pretty one-line-per-record printer to stderr — the shared format for
/// experiment progress output.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, record: &Record) {
        eprintln!("{}", record.pretty());
    }

    fn flush(&self) {
        let _ = io::stderr().flush();
    }
}

/// Record kinds a live tail is expected to watch for: the JSONL sink
/// flushes eagerly after these so `tail -f` sees heartbeats and progress
/// as they happen, while bulk records stay buffered.
const EAGER_FLUSH_KINDS: [&str; 3] = ["progress", "train.heartbeat", "supervisor."];

/// Writes one JSON object per line to any writer (typically a file).
///
/// Buffered output is flushed on [`Sink::flush`], on drop, and eagerly
/// after monitorable kinds (`progress`, `train.heartbeat`,
/// `supervisor.*`) so long training runs are tailable mid-flight.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Creates (truncates) a JSONL file, creating parent directories.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Wraps an arbitrary writer (used by tests for golden output).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, record: &Record) {
        let mut line = record.to_json();
        line.push('\n');
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = w.write_all(line.as_bytes());
        if EAGER_FLUSH_KINDS.iter().any(|k| record.kind.starts_with(k)) {
            let _ = w.flush();
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Buffers records in memory — the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    /// An empty memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records emitted so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("memory sink poisoned").clone()
    }

    /// Records of one kind.
    pub fn by_kind(&self, kind: &str) -> Vec<Record> {
        self.records()
            .into_iter()
            .filter(|r| r.kind == kind)
            .collect()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.lock().expect("memory sink poisoned").len()
    }

    /// `true` when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&self, record: &Record) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(record.clone());
    }
}

/// Forwards only records whose kind starts with one of the allowed
/// prefixes — e.g. a stderr sink limited to `progress` lines while the
/// JSONL sink records everything.
pub struct FilterSink {
    inner: std::sync::Arc<dyn Sink>,
    prefixes: Vec<String>,
}

impl FilterSink {
    /// Wraps `inner`, passing through kinds matching any of `prefixes`.
    pub fn new(inner: std::sync::Arc<dyn Sink>, prefixes: &[&str]) -> Self {
        FilterSink {
            inner,
            prefixes: prefixes.iter().map(|p| p.to_string()).collect(),
        }
    }
}

impl Sink for FilterSink {
    fn emit(&self, record: &Record) {
        if self
            .prefixes
            .iter()
            .any(|p| record.kind.starts_with(p.as_str()))
        {
            self.inner.emit(record);
        }
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// Fans records out to several sinks (e.g. stderr + JSONL).
pub struct MultiSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl MultiSink {
    /// Builds a fan-out over the given sinks.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn emit(&self, record: &Record) {
        for s in &self.sinks {
            s.emit(record);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.emit(&Record::new("a").with("i", 0usize));
        sink.emit(&Record::new("b").with("i", 1usize));
        let rs = sink.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].kind, "a");
        assert_eq!(sink.by_kind("b").len(), 1);
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        multi.emit(&Record::new("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn filter_sink_passes_only_matching_kinds() {
        let mem = Arc::new(MemorySink::new());
        let filter = FilterSink::new(mem.clone(), &["progress", "run."]);
        filter.emit(&Record::new("progress"));
        filter.emit(&Record::new("run.start"));
        filter.emit(&Record::new("train.update"));
        assert_eq!(mem.len(), 2);
        assert!(mem.by_kind("train.update").is_empty());
    }

    #[test]
    fn jsonl_writes_one_line_per_record() {
        // Shared buffer observed through an Arc<Mutex<Vec<u8>>> writer.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::from_writer(Box::new(Shared(buf.clone())));
        sink.emit(&Record::new("r").with("v", 1.5));
        sink.emit(&Record::new("r").with("v", 2usize));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"kind\":\"r\",\"v\":1.5}\n{\"kind\":\"r\",\"v\":2}\n"
        );
    }

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_flushes_eagerly_after_monitorable_kinds() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::from_writer(Box::new(BufWriter::with_capacity(
            1 << 20,
            SharedBuf(buf.clone()),
        )));
        sink.emit(&Record::new("train.update").with("loss", 0.5));
        assert!(buf.lock().unwrap().is_empty(), "bulk records stay buffered");
        sink.emit(&Record::new("train.heartbeat").with("update", 5usize));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(
            text.contains("train.heartbeat"),
            "heartbeat forces a flush: {text:?}"
        );
    }

    #[test]
    fn jsonl_flushes_on_drop() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::from_writer(Box::new(BufWriter::with_capacity(
            1 << 20,
            SharedBuf(buf.clone()),
        )));
        sink.emit(&Record::new("r").with("v", 1usize));
        assert!(buf.lock().unwrap().is_empty());
        drop(sink);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"kind\":\"r\",\"v\":1}\n");
    }
}
