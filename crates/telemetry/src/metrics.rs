//! Counters, gauges and fixed-bucket histograms with lock-free updates.
//!
//! Handles are cheap `Arc` clones of atomic cells; a disabled
//! [`crate::Telemetry`] hands out empty handles whose operations compile
//! to a branch on `None`.

use crate::record::Record;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge storing an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (NaN when never set, 0-bits default decodes to 0.0).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Shared state of a fixed-bucket histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Upper bounds of the first `bounds.len()` buckets; one overflow
    /// bucket follows. A value `v` lands in the first bucket with
    /// `v <= bound`.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values as f64 bits, updated by CAS.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: Vec<f64>) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop to accumulate the f64 sum without a lock.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A fixed-bucket histogram handle.
///
/// ```
/// use cit_telemetry::Telemetry;
///
/// let (telemetry, _sink) = Telemetry::memory();
/// let latency = telemetry.histogram("request.latency_s", &[0.001, 0.01, 0.1, 1.0]);
/// for v in [0.002, 0.004, 0.05, 0.2] {
///     latency.record(v);
/// }
/// assert_eq!(latency.count(), 4);
/// assert!(latency.quantile(0.5) <= 0.011); // interpolated inside the owning bucket
/// assert!(latency.quantile(0.99) > 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |h| f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Quantile estimate by linear interpolation inside the owning
    /// bucket. `q` is clamped to `[0, 1]`. Returns 0 when empty. The
    /// overflow bucket reports its lower bound (the largest finite
    /// boundary).
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(h) = &self.0 else { return 0.0 };
        let total = h.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut cum = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c;
            if (cum as f64) >= rank {
                if i == h.bounds.len() {
                    // Overflow bucket: no finite upper bound.
                    return h.bounds[h.bounds.len() - 1];
                }
                let lo = if i == 0 { 0.0 } else { h.bounds[i - 1] };
                let hi = h.bounds[i];
                let within = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lo + within * (hi - lo);
            }
        }
        h.bounds[h.bounds.len() - 1]
    }

    /// Per-bucket counts, including the trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.as_ref().map_or_else(Vec::new, |h| {
            h.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        })
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> Vec<f64> {
        self.0.as_ref().map_or_else(Vec::new, |h| h.bounds.clone())
    }

    /// A snapshot record (kind `metric.histogram`) used by
    /// [`crate::Telemetry::report`].
    pub fn snapshot(&self, name: &str) -> Record {
        Record::new("metric.histogram")
            .with("name", name)
            .with("count", self.count())
            .with("sum", self.sum())
            .with("mean", self.mean())
            .with("p50", self.quantile(0.5))
            .with("p90", self.quantile(0.9))
            .with("p99", self.quantile(0.99))
    }
}

/// Log-spaced duration bounds in seconds (1 µs … 10 s), the default for
/// span-timer histograms.
pub fn duration_bounds() -> Vec<f64> {
    let mut out = Vec::new();
    let mut v = 1e-6;
    while v <= 10.0 + 1e-12 {
        for m in [1.0, 2.5, 5.0] {
            out.push(v * m);
        }
        v *= 10.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[f64]) -> Histogram {
        Histogram(Some(Arc::new(HistogramCore::new(bounds.to_vec()))))
    }

    #[test]
    fn bucketing_uses_upper_bounds() {
        let h = hist(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        // 0.5, 1.0 → bucket 0; 1.5 → bucket 1; 3.0 → bucket 2; 100 → overflow.
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let h = hist(&[10.0, 20.0, 30.0]);
        for v in 1..=100 {
            h.record(v as f64 * 0.3); // 0.3..30, uniform
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 15.0).abs() < 2.0, "p50 {p50}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 27.0).abs() < 2.0, "p90 {p90}");
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn duration_bounds_are_increasing() {
        let b = duration_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] <= 1e-6 && *b.last().unwrap() >= 10.0);
    }
}
