//! # cit-telemetry
//!
//! Structured run-time diagnostics for the cross-insight-trader
//! workspace: a registry of counters, gauges and fixed-bucket histograms
//! with lock-free concurrent updates, RAII span timers for hot paths,
//! and pluggable record sinks (no-op, stderr pretty-printer, JSONL file,
//! in-memory for tests).
//!
//! Dependency-light by design (std only): the build environment resolves
//! offline, so `tracing`/`metrics` are deliberately not used.
//!
//! A [`Telemetry`] value is a cheap clonable handle. The disabled handle
//! ([`Telemetry::disabled`]) costs one `Option` branch per call site —
//! library users who never opt in pay nothing measurable:
//!
//! ```
//! use cit_telemetry::{Record, Telemetry};
//!
//! // Disabled: every call is a no-op.
//! let off = Telemetry::disabled();
//! off.emit(Record::new("train.update").with("loss", 0.5));
//! assert_eq!(off.counter("updates").get(), 0);
//!
//! // Enabled with the in-memory sink (used by tests):
//! let (tel, sink) = Telemetry::memory();
//! tel.emit(Record::new("train.update").with("loss", 0.5));
//! let c = tel.counter("updates");
//! c.inc();
//! {
//!     let _span = tel.span("dwt.horizon_windows");
//!     // ... timed work ...
//! }
//! assert_eq!(sink.by_kind("train.update").len(), 1);
//! assert_eq!(c.get(), 1);
//! assert_eq!(tel.span_histogram("dwt.horizon_windows").count(), 1);
//! ```

#![deny(missing_docs)]

mod metrics;
mod record;
mod sink;
mod snapshot;
mod span;
mod value;
mod window;

pub use metrics::{duration_bounds, Counter, Gauge, Histogram};
pub use record::{Record, Stamp};
pub use sink::{FilterSink, JsonlSink, MemorySink, MultiSink, NoopSink, Sink, StderrSink};
pub use snapshot::{
    HistogramData, MetricData, MetricEntry, RateData, TelemetrySnapshot, WindowData,
};
pub use span::Span;
pub use value::Value;
pub use window::{ManualClock, RollingHistogram, WindowSnapshot, WindowedCounter, DEFAULT_WINDOWS};

use metrics::HistogramCore;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use window::{RollingCore, WindowedCounterCore};

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
    Rolling(Arc<RollingCore>),
    Windowed(Arc<WindowedCounterCore>),
}

struct Inner {
    sink: Arc<dyn Sink>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The telemetry handle passed through configs and constructors.
///
/// Cloning is cheap (one `Arc`). The default value is disabled.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The zero-cost disabled handle: all operations are no-ops.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle routing records to `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        // Pin the process telemetry epoch now, so uptime in snapshots
        // measures from handle creation even if no record is stamped
        // until much later.
        record::process_elapsed_s();
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                metrics: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Enabled, printing pretty one-liners to stderr.
    pub fn stderr() -> Self {
        Self::new(Arc::new(StderrSink))
    }

    /// Enabled, writing JSONL to `path` (truncating; parents created).
    pub fn jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(Arc::new(JsonlSink::create(path)?)))
    }

    /// Enabled with an in-memory sink; returns the sink for inspection.
    pub fn memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Self::new(sink.clone()), sink)
    }

    /// `true` when records and metrics are actually collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Routes a record to the sink (dropped when disabled), stamping it
    /// with wall-clock and monotonic-elapsed capture times first (unless
    /// the caller already stamped it).
    pub fn emit(&self, record: Record) {
        if let Some(inner) = &self.inner {
            let mut record = record;
            if record.stamp.is_none() {
                record.stamp = Some(Stamp::now());
            }
            inner.sink.emit(&record);
        }
    }

    /// Convenience: emits a `progress` record with a `msg` field — the
    /// shared replacement for ad-hoc `eprintln!` progress lines.
    pub fn progress(&self, msg: impl Into<String>) {
        if self.is_enabled() {
            self.emit(Record::new("progress").with("msg", msg.into()));
        }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    /// Registers (or fetches) a counter. Hold the handle for hot paths —
    /// updates through it are a single atomic add.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut metrics = inner.metrics.lock().expect("metric registry poisoned");
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match entry {
            Metric::Counter(c) => Counter(Some(c.clone())),
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut metrics = inner.metrics.lock().expect("metric registry poisoned");
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))));
        match entry {
            Metric::Gauge(g) => Gauge(Some(g.clone())),
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or fetches) a histogram with the given bucket upper
    /// bounds (strictly increasing; an overflow bucket is appended).
    /// Bounds are fixed by the first registration.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::default();
        };
        let mut metrics = inner.metrics.lock().expect("metric registry poisoned");
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCore::new(bounds.to_vec()))));
        match entry {
            Metric::Histogram(h) => Histogram(Some(h.clone())),
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or fetches) a rolling histogram: a ring of per-second
    /// epoch buckets answering trailing-window queries ("last-10s p99")
    /// alongside the cumulative view. Bounds are fixed by the first
    /// registration.
    pub fn rolling_histogram(&self, name: &str, bounds: &[f64]) -> RollingHistogram {
        let Some(inner) = &self.inner else {
            return RollingHistogram::default();
        };
        let mut metrics = inner.metrics.lock().expect("metric registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Rolling(
                RollingHistogram::new(bounds)
                    .0
                    .expect("fresh rolling histogram is enabled"),
            )
        });
        match entry {
            Metric::Rolling(r) => RollingHistogram(Some(r.clone())),
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or fetches) a windowed counter: a cumulative total plus
    /// trailing-window event rates ("req/s over the last 10 s").
    pub fn windowed_counter(&self, name: &str) -> WindowedCounter {
        let Some(inner) = &self.inner else {
            return WindowedCounter::default();
        };
        let mut metrics = inner.metrics.lock().expect("metric registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Windowed(
                WindowedCounter::new()
                    .0
                    .expect("fresh windowed counter is enabled"),
            )
        });
        match entry {
            Metric::Windowed(w) => WindowedCounter(Some(w.clone())),
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    /// Starts an RAII span timer recording into the duration histogram
    /// `span.<name>` on drop. Inert (no clock read) when disabled.
    pub fn span(&self, name: &str) -> Span {
        if self.inner.is_none() {
            return Span::noop();
        }
        Span::live(self.span_histogram(name))
    }

    /// The duration histogram behind [`Telemetry::span`] for `name`.
    pub fn span_histogram(&self, name: &str) -> Histogram {
        self.histogram(&format!("span.{name}"), &duration_bounds())
    }

    /// Snapshot records for every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<Record> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let metrics = inner.metrics.lock().expect("metric registry poisoned");
        metrics
            .iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => Record::new("metric.counter")
                    .with("name", name.as_str())
                    .with("value", Counter(Some(c.clone())).get()),
                Metric::Gauge(g) => Record::new("metric.gauge")
                    .with("name", name.as_str())
                    .with("value", Gauge(Some(g.clone())).get()),
                Metric::Histogram(h) => Histogram(Some(h.clone())).snapshot(name),
                Metric::Rolling(r) => {
                    let h = RollingHistogram(Some(r.clone()));
                    let cum = h.cumulative();
                    Record::new("metric.rolling_histogram")
                        .with("name", name.as_str())
                        .with("count", cum.count)
                        .with("sum", cum.sum)
                        .with("mean", cum.mean())
                        .with("p50", cum.quantile(0.5))
                        .with("p90", cum.quantile(0.9))
                        .with("p99", cum.quantile(0.99))
                }
                Metric::Windowed(w) => {
                    let c = WindowedCounter(Some(w.clone()));
                    let mut r = Record::new("metric.windowed_counter")
                        .with("name", name.as_str())
                        .with("value", c.total());
                    for secs in DEFAULT_WINDOWS {
                        r.push(format!("rate_{secs}s"), c.rate(secs));
                    }
                    r
                }
            })
            .collect()
    }

    /// Freezes every registered metric into a [`TelemetrySnapshot`] —
    /// the structure behind the Prometheus-style `/metrics` exposition
    /// and the `stats` wire op of `cit-serve`. Empty when disabled.
    pub fn take_snapshot(&self) -> TelemetrySnapshot {
        let stamp = Stamp::now();
        let mut entries = Vec::new();
        if let Some(inner) = &self.inner {
            let metrics = inner.metrics.lock().expect("metric registry poisoned");
            for (name, m) in metrics.iter() {
                let data = match m {
                    Metric::Counter(c) => MetricData::Counter(Counter(Some(c.clone())).get()),
                    Metric::Gauge(g) => MetricData::Gauge(Gauge(Some(g.clone())).get()),
                    Metric::Histogram(h) => {
                        let h = Histogram(Some(h.clone()));
                        MetricData::Histogram(HistogramData {
                            count: h.count(),
                            sum: h.sum(),
                            bounds: h.bounds(),
                            buckets: h.bucket_counts(),
                        })
                    }
                    Metric::Rolling(r) => {
                        let h = RollingHistogram(Some(r.clone()));
                        MetricData::RollingHistogram {
                            cumulative: HistogramData::from_window(&h.cumulative()),
                            windows: snapshot::window_digests(&h),
                        }
                    }
                    Metric::Windowed(w) => {
                        let c = WindowedCounter(Some(w.clone()));
                        MetricData::WindowedCounter {
                            total: c.total(),
                            windows: snapshot::rate_digests(&c),
                        }
                    }
                };
                entries.push(MetricEntry {
                    name: name.clone(),
                    data,
                });
            }
        }
        TelemetrySnapshot {
            at_unix_ms: stamp.unix_ms,
            uptime_s: stamp.elapsed_s,
            entries,
        }
    }

    /// Emits every metric snapshot to the sink and flushes — typically
    /// called once at the end of a run to dump span timings.
    pub fn report(&self) {
        for r in self.snapshot() {
            self.emit(r);
        }
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_everything_is_noop() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.emit(Record::new("x"));
        t.progress("hi");
        let s = t.span("work");
        assert!(!s.is_live());
        drop(s);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn counter_handles_share_state() {
        let (t, _sink) = Telemetry::memory();
        let a = t.counter("n");
        let b = t.counter("n");
        a.add(2);
        b.inc();
        assert_eq!(t.counter("n").get(), 3);
    }

    #[test]
    fn span_records_into_named_histogram() {
        let (t, _sink) = Telemetry::memory();
        {
            let _s = t.span("fwd");
        }
        {
            let _s = t.span("fwd");
        }
        assert_eq!(t.span_histogram("fwd").count(), 2);
    }

    #[test]
    fn report_emits_metric_records() {
        let (t, sink) = Telemetry::memory();
        t.counter("steps").add(5);
        t.gauge("loss").set(0.25);
        t.report();
        let counters = sink.by_kind("metric.counter");
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].get_f64("value"), Some(5.0));
        let gauges = sink.by_kind("metric.gauge");
        assert_eq!(gauges[0].get_f64("value"), Some(0.25));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let (t, _sink) = Telemetry::memory();
        t.counter("m");
        t.gauge("m");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn rolling_vs_plain_histogram_mismatch_panics() {
        let (t, _sink) = Telemetry::memory();
        t.histogram("m", &[1.0]);
        t.rolling_histogram("m", &[1.0]);
    }

    #[test]
    fn emit_stamps_records_with_both_clocks() {
        let (t, sink) = Telemetry::memory();
        t.emit(Record::new("x"));
        let r = &sink.records()[0];
        let stamp = r.stamp.expect("emit stamps records");
        assert!(stamp.unix_ms > 1_600_000_000_000);
        assert!(stamp.elapsed_s >= 0.0);
        let json = r.to_json();
        assert!(json.contains("\"ts_ms\":"), "{json}");
        assert!(json.contains("\"elapsed_s\":"), "{json}");
    }

    #[test]
    fn windowed_metrics_register_and_report() {
        let (t, sink) = Telemetry::memory();
        t.rolling_histogram("lat", &[0.1, 1.0]).record(0.5);
        t.windowed_counter("req").add(3);
        // Handles share state through the registry.
        assert_eq!(t.rolling_histogram("lat", &[0.1, 1.0]).count(), 1);
        assert_eq!(t.windowed_counter("req").total(), 3);
        t.report();
        let rolling = sink.by_kind("metric.rolling_histogram");
        assert_eq!(rolling.len(), 1);
        assert_eq!(rolling[0].get_f64("count"), Some(1.0));
        let windowed = sink.by_kind("metric.windowed_counter");
        assert_eq!(windowed[0].get_f64("value"), Some(3.0));
    }
}
