//! Windowed aggregation: rolling histograms and windowed rate counters.
//!
//! Cumulative instruments ([`crate::Counter`], [`crate::Histogram`])
//! answer "how much since start"; a live server needs "how much *right
//! now*". Both types here keep a ring of per-epoch buckets (one epoch =
//! one second by default) that lock-free concurrent writers update and a
//! reader merges into a trailing-window snapshot — last-10s req/s, last
//! 60s p99 — without stopping the writers.
//!
//! Rotation is lazy: a writer landing on a slot whose epoch tag is stale
//! claims it with a compare-exchange, zeroes it, and re-tags it; losers
//! spin until the slot is usable. A reader skips slots tagged outside the
//! requested window (or mid-reset), so an idle window yields an empty
//! snapshot whose rate is `0.0` — never NaN.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Slot tag meaning "a writer is zeroing this slot right now".
const RESETTING: u64 = u64::MAX;

/// Trailing windows the registry reports by default (seconds).
pub const DEFAULT_WINDOWS: [u64; 2] = [10, 60];

/// The time source driving epoch rotation: the monotonic clock in
/// production, a manually advanced counter in tests (so rotation
/// behaviour is testable without sleeping).
#[derive(Debug, Clone)]
pub(crate) enum Clock {
    /// Monotonic time since construction.
    Monotonic(Instant),
    /// Manually driven microseconds (see [`ManualClock`]).
    Manual(Arc<AtomicU64>),
}

impl Clock {
    fn micros(&self) -> u64 {
        match self {
            Clock::Monotonic(start) => start.elapsed().as_micros() as u64,
            Clock::Manual(t) => t.load(Ordering::Acquire),
        }
    }
}

/// A hand-driven clock for deterministic window tests.
///
/// ```
/// use cit_telemetry::{ManualClock, RollingHistogram};
/// use std::time::Duration;
///
/// let clock = ManualClock::new();
/// let h = RollingHistogram::with_clock(&[0.1, 1.0], 16, &clock);
/// h.record(0.05);
/// clock.advance(Duration::from_secs(3));
/// h.record(0.5);
/// // Only the second observation is younger than 2 seconds.
/// assert_eq!(h.window(2).count, 1);
/// assert_eq!(h.window(10).count, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock.
    pub fn advance(&self, by: Duration) {
        self.micros
            .fetch_add(by.as_micros() as u64, Ordering::AcqRel);
    }

    /// Sets the absolute time.
    pub fn set(&self, at: Duration) {
        self.micros.store(at.as_micros() as u64, Ordering::Release);
    }
}

/// One epoch's worth of histogram state.
struct Slot {
    /// Epoch index this slot currently holds, or [`RESETTING`].
    tag: AtomicU64,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Slot {
    fn new(num_buckets: usize) -> Slot {
        Slot {
            tag: AtomicU64::new(0),
            buckets: (0..num_buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
    }

    /// Ensures the slot represents `epoch`, lazily resetting a stale slot.
    /// Returns once the slot is tagged `epoch` (by us or a racing writer).
    fn rotate_to(&self, epoch: u64) {
        loop {
            match self.tag.load(Ordering::Acquire) {
                tag if tag == epoch => return,
                RESETTING => std::hint::spin_loop(),
                stale => {
                    if self
                        .tag
                        .compare_exchange(stale, RESETTING, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.zero();
                        self.tag.store(epoch, Ordering::Release);
                        return;
                    }
                }
            }
        }
    }
}

fn cas_add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
}

/// Quantile by linear interpolation inside the owning bucket — the same
/// estimator [`crate::Histogram::quantile`] uses, shared so windowed and
/// cumulative snapshots agree exactly on identical bucket contents.
pub(crate) fn bucket_quantile(bounds: &[f64], buckets: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 || bounds.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * total as f64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let prev = cum;
        cum += c;
        if (cum as f64) >= rank {
            if i == bounds.len() {
                return bounds[bounds.len() - 1];
            }
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
            let hi = bounds[i];
            let within = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
            return lo + within * (hi - lo);
        }
    }
    bounds[bounds.len() - 1]
}

/// Shared state of a [`RollingHistogram`].
pub(crate) struct RollingCore {
    bounds: Vec<f64>,
    clock: Clock,
    epoch_micros: u64,
    slots: Vec<Slot>,
    /// Cumulative-since-start totals alongside the ring, so one
    /// instrument serves both "all time" and "right now" queries.
    total_buckets: Vec<AtomicU64>,
    total_count: AtomicU64,
    total_sum_bits: AtomicU64,
}

impl RollingCore {
    pub(crate) fn new(bounds: Vec<f64>, slots: usize, epoch_micros: u64, clock: Clock) -> Self {
        assert!(
            !bounds.is_empty(),
            "rolling histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "rolling histogram bounds must be strictly increasing"
        );
        assert!(slots >= 2, "rolling histogram needs at least two epochs");
        let num_buckets = bounds.len() + 1;
        RollingCore {
            bounds,
            clock,
            epoch_micros: epoch_micros.max(1),
            slots: (0..slots).map(|_| Slot::new(num_buckets)).collect(),
            total_buckets: (0..num_buckets).map(|_| AtomicU64::new(0)).collect(),
            total_count: AtomicU64::new(0),
            total_sum_bits: AtomicU64::new(0),
        }
    }

    fn current_epoch(&self) -> u64 {
        self.clock.micros() / self.epoch_micros
    }

    fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        let epoch = self.current_epoch();
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        slot.rotate_to(epoch);
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        cas_add_f64(&slot.sum_bits, v);
        self.total_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.total_count.fetch_add(1, Ordering::Relaxed);
        cas_add_f64(&self.total_sum_bits, v);
    }

    /// Merges every slot whose epoch lies within the trailing window
    /// (including the in-progress epoch).
    fn window(&self, secs: u64) -> WindowSnapshot {
        let now_micros = self.clock.micros();
        let cur = now_micros / self.epoch_micros;
        // The ring spans slots-1 trustworthy epochs beyond the current one.
        let span = ((secs.max(1)).saturating_mul(1_000_000) / self.epoch_micros)
            .clamp(1, self.slots.len() as u64);
        let mut buckets = vec![0u64; self.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for slot in &self.slots {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == RESETTING || tag > cur || cur - tag >= span {
                continue;
            }
            // A slot can be claimed for reset between the tag read and the
            // bucket reads; the worst case is a partially-zeroed epoch in a
            // diagnostic snapshot, which windowed telemetry tolerates.
            for (acc, b) in buckets.iter_mut().zip(&slot.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += f64::from_bits(slot.sum_bits.load(Ordering::Relaxed));
        }
        // The effective window never exceeds the process uptime, so early
        // rates are not diluted by time that has not elapsed yet.
        let elapsed_s = now_micros as f64 / 1e6;
        let window_s = (secs as f64).min(elapsed_s.max(self.epoch_micros as f64 / 1e6));
        WindowSnapshot {
            window_s,
            count,
            sum,
            bounds: self.bounds.clone(),
            buckets,
        }
    }

    fn cumulative(&self) -> WindowSnapshot {
        let elapsed_s = (self.clock.micros() as f64 / 1e6).max(self.epoch_micros as f64 / 1e6);
        WindowSnapshot {
            window_s: elapsed_s,
            count: self.total_count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.total_sum_bits.load(Ordering::Relaxed)),
            bounds: self.bounds.clone(),
            buckets: self
                .total_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An immutable merged view of a trailing window (or the cumulative
/// run): bucket counts plus derived quantiles, mean and rate.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Effective window length in seconds (capped at process uptime).
    pub window_s: f64,
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observations inside the window.
    pub sum: f64,
    /// Bucket upper bounds (the overflow bucket follows the last bound).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, including the trailing overflow bucket.
    pub buckets: Vec<u64>,
}

impl WindowSnapshot {
    /// Quantile estimate over the window (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        bucket_quantile(&self.bounds, &self.buckets, self.count, q)
    }

    /// Mean of the window's observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations per second over the window. An empty window yields
    /// `0.0`, never NaN — empty snapshots must not poison derived rates.
    pub fn rate(&self) -> f64 {
        if self.count == 0 || self.window_s <= 0.0 {
            0.0
        } else {
            self.count as f64 / self.window_s
        }
    }
}

/// A histogram whose observations age out of trailing-window snapshots.
///
/// A ring of per-second epoch buckets (one minute deep by default) is
/// updated lock-free by any number of writers; [`RollingHistogram::window`]
/// merges the trailing `secs` seconds into a [`WindowSnapshot`] answering
/// "what is p99 *right now*", while [`RollingHistogram::cumulative`] keeps
/// the whole-run view.
///
/// ```
/// use cit_telemetry::Telemetry;
///
/// let (telemetry, _sink) = Telemetry::memory();
/// let latency = telemetry.rolling_histogram("req.latency_s", &[0.001, 0.01, 0.1]);
/// for _ in 0..50 {
///     latency.record(0.004);
/// }
/// let last10 = latency.window(10);
/// assert_eq!(last10.count, 50);
/// assert!(last10.rate() > 0.0);
/// assert!(last10.quantile(0.99) <= 0.01 + 1e-12);
/// // The cumulative view agrees while nothing has aged out.
/// assert_eq!(latency.cumulative().count, 50);
/// ```
#[derive(Clone, Default)]
pub struct RollingHistogram(pub(crate) Option<Arc<RollingCore>>);

impl std::fmt::Debug for RollingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingHistogram")
            .field("enabled", &self.0.is_some())
            .finish()
    }
}

impl RollingHistogram {
    /// A standalone rolling histogram with 1-second epochs and a
    /// 64-epoch ring (trailing windows up to ~60 s).
    pub fn new(bounds: &[f64]) -> RollingHistogram {
        RollingHistogram(Some(Arc::new(RollingCore::new(
            bounds.to_vec(),
            64,
            1_000_000,
            Clock::Monotonic(Instant::now()),
        ))))
    }

    /// A rolling histogram driven by a [`ManualClock`] (tests): `slots`
    /// one-second epochs.
    pub fn with_clock(bounds: &[f64], slots: usize, clock: &ManualClock) -> RollingHistogram {
        RollingHistogram(Some(Arc::new(RollingCore::new(
            bounds.to_vec(),
            slots,
            1_000_000,
            Clock::Manual(clock.micros.clone()),
        ))))
    }

    /// Records one observation into the current epoch (and the
    /// cumulative totals). No-op on a disabled handle.
    pub fn record(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.record(v);
        }
    }

    /// A merged snapshot of the trailing `secs` seconds (clamped to the
    /// ring depth). Disabled handles return an empty snapshot.
    pub fn window(&self, secs: u64) -> WindowSnapshot {
        match &self.0 {
            Some(c) => c.window(secs),
            None => WindowSnapshot {
                window_s: 0.0,
                count: 0,
                sum: 0.0,
                bounds: Vec::new(),
                buckets: Vec::new(),
            },
        }
    }

    /// The cumulative-since-start snapshot.
    pub fn cumulative(&self) -> WindowSnapshot {
        match &self.0 {
            Some(c) => c.cumulative(),
            None => WindowSnapshot {
                window_s: 0.0,
                count: 0,
                sum: 0.0,
                bounds: Vec::new(),
                buckets: Vec::new(),
            },
        }
    }

    /// Total observations since start (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.total_count.load(Ordering::Relaxed))
    }
}

/// One epoch's worth of counter state.
struct CounterSlot {
    tag: AtomicU64,
    value: AtomicU64,
}

/// Shared state of a [`WindowedCounter`].
pub(crate) struct WindowedCounterCore {
    clock: Clock,
    epoch_micros: u64,
    slots: Vec<CounterSlot>,
    total: AtomicU64,
}

impl WindowedCounterCore {
    pub(crate) fn new(slots: usize, epoch_micros: u64, clock: Clock) -> Self {
        WindowedCounterCore {
            clock,
            epoch_micros: epoch_micros.max(1),
            slots: (0..slots.max(2))
                .map(|_| CounterSlot {
                    tag: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
            total: AtomicU64::new(0),
        }
    }

    fn add(&self, n: u64) {
        let epoch = self.clock.micros() / self.epoch_micros;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        loop {
            match slot.tag.load(Ordering::Acquire) {
                tag if tag == epoch => break,
                RESETTING => std::hint::spin_loop(),
                stale => {
                    if slot
                        .tag
                        .compare_exchange(stale, RESETTING, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        slot.value.store(0, Ordering::Relaxed);
                        slot.tag.store(epoch, Ordering::Release);
                        break;
                    }
                }
            }
        }
        slot.value.fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    fn window_count(&self, secs: u64) -> (u64, f64) {
        let now_micros = self.clock.micros();
        let cur = now_micros / self.epoch_micros;
        let span = ((secs.max(1)).saturating_mul(1_000_000) / self.epoch_micros)
            .clamp(1, self.slots.len() as u64);
        let mut count = 0u64;
        for slot in &self.slots {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == RESETTING || tag > cur || cur - tag >= span {
                continue;
            }
            count += slot.value.load(Ordering::Relaxed);
        }
        let elapsed_s = now_micros as f64 / 1e6;
        let window_s = (secs as f64).min(elapsed_s.max(self.epoch_micros as f64 / 1e6));
        (count, window_s)
    }
}

/// A counter that also answers "events per second over the last N
/// seconds" — the instrument behind live req/s and updates/s gauges.
///
/// ```
/// use cit_telemetry::Telemetry;
///
/// let (telemetry, _sink) = Telemetry::memory();
/// let requests = telemetry.windowed_counter("req.count");
/// for _ in 0..30 {
///     requests.inc();
/// }
/// assert_eq!(requests.total(), 30);
/// assert!(requests.rate(10) > 0.0);
/// assert_eq!(requests.window_count(10), 30);
/// ```
#[derive(Clone, Default)]
pub struct WindowedCounter(pub(crate) Option<Arc<WindowedCounterCore>>);

impl std::fmt::Debug for WindowedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedCounter")
            .field("enabled", &self.0.is_some())
            .finish()
    }
}

impl WindowedCounter {
    /// A standalone windowed counter with 1-second epochs and a 64-epoch
    /// ring.
    pub fn new() -> WindowedCounter {
        WindowedCounter(Some(Arc::new(WindowedCounterCore::new(
            64,
            1_000_000,
            Clock::Monotonic(Instant::now()),
        ))))
    }

    /// A windowed counter driven by a [`ManualClock`] (tests).
    pub fn with_clock(slots: usize, clock: &ManualClock) -> WindowedCounter {
        WindowedCounter(Some(Arc::new(WindowedCounterCore::new(
            slots,
            1_000_000,
            Clock::Manual(clock.micros.clone()),
        ))))
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Events since start (0 when disabled).
    pub fn total(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.total.load(Ordering::Relaxed))
    }

    /// Events inside the trailing `secs` seconds.
    pub fn window_count(&self, secs: u64) -> u64 {
        self.0.as_ref().map_or(0, |c| c.window_count(secs).0)
    }

    /// Events per second over the trailing `secs` seconds (`0.0` when
    /// idle or disabled — an empty window never yields NaN).
    pub fn rate(&self, secs: u64) -> f64 {
        let Some(c) = &self.0 else { return 0.0 };
        let (count, window_s) = c.window_count(secs);
        if count == 0 || window_s <= 0.0 {
            0.0
        } else {
            count as f64 / window_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_age_out_of_the_window() {
        let clock = ManualClock::new();
        let h = RollingHistogram::with_clock(&[1.0, 10.0], 8, &clock);
        h.record(0.5);
        h.record(5.0);
        clock.advance(Duration::from_secs(3));
        h.record(0.5);
        assert_eq!(h.window(2).count, 1);
        assert_eq!(h.window(6).count, 3);
        assert_eq!(h.cumulative().count, 3);
        // Ring reuse: past the ring depth the old epochs are overwritten.
        clock.advance(Duration::from_secs(20));
        h.record(0.5);
        assert_eq!(h.window(6).count, 1);
        assert_eq!(h.cumulative().count, 4);
    }

    #[test]
    fn empty_window_rate_is_zero_not_nan() {
        let clock = ManualClock::new();
        let h = RollingHistogram::with_clock(&[1.0], 8, &clock);
        let w = h.window(10);
        assert_eq!(w.count, 0);
        assert_eq!(w.rate(), 0.0);
        assert_eq!(w.quantile(0.99), 0.0);
        assert_eq!(w.mean(), 0.0);
        assert!(w.rate().is_finite());
        let c = WindowedCounter::with_clock(8, &clock);
        assert_eq!(c.rate(10), 0.0);
    }

    #[test]
    fn early_rates_use_elapsed_time_not_the_full_window() {
        let clock = ManualClock::new();
        let c = WindowedCounter::with_clock(64, &clock);
        clock.advance(Duration::from_secs(2));
        c.add(100);
        // 100 events in 2 s of uptime must not read as 100/60.
        let r = c.rate(60);
        assert!((r - 50.0).abs() < 1e-9, "rate {r}");
    }

    #[test]
    fn windowed_counter_rates() {
        let clock = ManualClock::new();
        let c = WindowedCounter::with_clock(16, &clock);
        for _ in 0..10 {
            c.inc();
            clock.advance(Duration::from_secs(1));
        }
        // Events landed in epochs 0..=9; the clock now reads 10 s, so the
        // epoch-0 event is exactly 10 s old and has aged out of the
        // trailing 10-s window (which spans epochs 1..=10).
        assert_eq!(c.total(), 10);
        assert_eq!(c.window_count(10), 9);
        assert!((c.rate(10) - 0.9).abs() < 1e-9);
        clock.advance(Duration::from_secs(5));
        assert_eq!(c.window_count(5), 0);
        assert_eq!(c.rate(5), 0.0);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let h = RollingHistogram::default();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.window(10).count, 0);
        assert_eq!(h.window(10).rate(), 0.0);
        let c = WindowedCounter::default();
        c.inc();
        assert_eq!(c.total(), 0);
        assert_eq!(c.rate(10), 0.0);
    }
}
