//! Rolling-window correctness: concurrent writers racing epoch
//! rotation, window-vs-cumulative agreement, and empty-window hygiene.

use cit_telemetry::{ManualClock, RollingHistogram, Telemetry, WindowedCounter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Many writer threads record while another thread drives the clock
/// across epoch boundaries (forcing slot rotation) and a reader
/// snapshots continuously. No observation may be lost from the
/// cumulative totals, and snapshots must never tear into nonsense
/// (count less than the bucket sum, NaN rates).
#[test]
fn concurrent_writers_survive_epoch_rotation() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;

    let clock = ManualClock::new();
    let h = RollingHistogram::with_clock(&[0.25, 0.5, 1.0], 4, &clock);
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        h.record(((w as u64 + i) % 4) as f64 * 0.25);
                    }
                })
            })
            .collect();
        // Clock driver: sweep epochs so slots rotate mid-write. The ring
        // has 4 slots, so 40 epochs force every slot to be reclaimed
        // many times while writers are active.
        {
            let clock = clock.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    clock.advance(Duration::from_millis(200));
                    std::thread::yield_now();
                }
            });
        }
        // Concurrent reader: snapshots must stay internally consistent.
        {
            let h = h.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let w = h.window(2);
                    assert!(w.rate().is_finite());
                    assert!(w.quantile(0.99).is_finite());
                    let bucket_sum: u64 = w.buckets.iter().sum();
                    assert_eq!(
                        bucket_sum, w.count,
                        "snapshot bucket counts disagree with its count"
                    );
                    std::thread::yield_now();
                }
            });
        }
        // Join the writers, then release the clock driver and reader.
        for w in writers {
            w.join().expect("writer thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Rotation zeroes ring slots but must never lose cumulative totals.
    let cum = h.cumulative();
    assert_eq!(cum.count, WRITERS as u64 * PER_WRITER);
    let bucket_sum: u64 = cum.buckets.iter().sum();
    assert_eq!(bucket_sum, cum.count);
}

/// When the window spans the whole run, the windowed snapshot and the
/// cumulative histogram see identical bucket contents, so their
/// quantiles agree exactly (they share one estimator).
#[test]
fn whole_run_window_agrees_with_cumulative() {
    let clock = ManualClock::new();
    let h = RollingHistogram::with_clock(&[0.001, 0.01, 0.1, 1.0], 64, &clock);
    for i in 0..500 {
        h.record((i % 100) as f64 * 0.01);
        if i % 25 == 0 {
            clock.advance(Duration::from_secs(1));
        }
    }
    let win = h.window(60);
    let cum = h.cumulative();
    assert_eq!(win.count, cum.count);
    assert_eq!(win.buckets, cum.buckets);
    assert!((win.sum - cum.sum).abs() < 1e-9);
    for q in [0.5, 0.9, 0.95, 0.99] {
        assert_eq!(
            win.quantile(q),
            cum.quantile(q),
            "quantile {q} diverged between window and cumulative"
        );
    }
}

/// Idle windows yield zero counts and `0.0` rates — never NaN and never
/// stale data from aged-out epochs — and do not poison later snapshots.
#[test]
fn empty_windows_do_not_poison_rates() {
    let clock = ManualClock::new();
    let h = RollingHistogram::with_clock(&[1.0], 16, &clock);
    let c = WindowedCounter::with_clock(16, &clock);
    h.record(0.5);
    c.inc();
    // Let everything age out of a 5-second window.
    clock.advance(Duration::from_secs(10));
    let w = h.window(5);
    assert_eq!(w.count, 0);
    assert_eq!(w.rate(), 0.0);
    assert_eq!(w.mean(), 0.0);
    assert_eq!(w.quantile(0.5), 0.0);
    assert!(w.rate().is_finite() && w.mean().is_finite());
    assert_eq!(c.window_count(5), 0);
    assert_eq!(c.rate(5), 0.0);
    // New traffic after the idle stretch reads cleanly.
    h.record(0.25);
    c.add(2);
    assert_eq!(h.window(5).count, 1);
    assert!(h.window(5).rate() > 0.0);
    assert_eq!(c.window_count(5), 2);
    // The cumulative view kept the pre-idle history.
    assert_eq!(h.cumulative().count, 2);
    assert_eq!(c.total(), 3);
}

/// The registry path: rolling instruments registered through
/// `Telemetry` land in `take_snapshot()` with window digests attached.
#[test]
fn registry_snapshot_carries_window_digests() {
    let (t, _sink) = Telemetry::memory();
    let lat = t.rolling_histogram("serve.latency_window", &[0.001, 0.01, 0.1]);
    let req = t.windowed_counter("serve.requests_window");
    for _ in 0..25 {
        lat.record(0.005);
        req.inc();
    }
    let snap = t.take_snapshot();
    let lat_entry = snap
        .entries
        .iter()
        .find(|e| e.name == "serve.latency_window")
        .expect("rolling histogram in snapshot");
    match &lat_entry.data {
        cit_telemetry::MetricData::RollingHistogram {
            cumulative,
            windows,
        } => {
            assert_eq!(cumulative.count, 25);
            assert!(!windows.is_empty());
            assert!(windows.iter().all(|w| w.rate > 0.0 && w.p99.is_finite()));
        }
        other => panic!("wrong snapshot variant: {other:?}"),
    }
    let text = snap.to_prometheus();
    assert!(text.contains("serve_latency_window_bucket{le=\"+Inf\"} 25"));
    assert!(text.contains("serve_requests_window_rate{window=\"10s\"}"));
}
