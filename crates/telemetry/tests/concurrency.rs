//! Concurrency tests: metric handles are shared across threads and must
//! not lose updates (counters / histograms use relaxed atomics, the f64
//! sum a CAS loop, record emission a mutex-protected sink).

use cit_telemetry::{Record, Telemetry};
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: usize = 10_000;

#[test]
fn concurrent_counter_increments_are_lossless() {
    let (tel, _sink) = Telemetry::memory();
    let counter = tel.counter("hits");
    thread::scope(|s| {
        for _ in 0..THREADS {
            let c = counter.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), (THREADS * PER_THREAD) as u64);
    // A freshly fetched handle observes the same shared cell.
    assert_eq!(tel.counter("hits").get(), (THREADS * PER_THREAD) as u64);
}

#[test]
fn concurrent_histogram_records_preserve_count_and_sum() {
    let (tel, _sink) = Telemetry::memory();
    let hist = tel.histogram("obs", &[0.25, 0.5, 0.75, 1.0]);
    thread::scope(|s| {
        for t in 0..THREADS {
            let h = hist.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic values in (0, 1].
                    let v = ((t * PER_THREAD + i) % 100 + 1) as f64 / 100.0;
                    h.record(v);
                }
            });
        }
    });
    let n = (THREADS * PER_THREAD) as u64;
    assert_eq!(hist.count(), n);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), n);
    // Each thread records the same multiset: 100 values summing to 50.5,
    // repeated PER_THREAD/100 times.
    let expected = THREADS as f64 * (PER_THREAD / 100) as f64 * 50.5;
    assert!((hist.sum() - expected).abs() < 1e-6, "sum {}", hist.sum());
}

#[test]
fn concurrent_registration_yields_one_metric() {
    let (tel, _sink) = Telemetry::memory();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let t = tel.clone();
            s.spawn(move || {
                for _ in 0..1_000 {
                    t.counter("shared").inc();
                }
            });
        }
    });
    let snaps = tel.snapshot();
    assert_eq!(snaps.len(), 1);
    assert_eq!(snaps[0].get_f64("value"), Some((THREADS * 1_000) as f64));
}

#[test]
fn concurrent_emits_keep_every_record() {
    let (tel, sink) = Telemetry::memory();
    thread::scope(|s| {
        for t in 0..THREADS {
            let tl = tel.clone();
            s.spawn(move || {
                for i in 0..1_000 {
                    tl.emit(Record::new("evt").with("thread", t).with("i", i));
                }
            });
        }
    });
    assert_eq!(sink.by_kind("evt").len(), THREADS * 1_000);
}
