//! Checkpointing: save and restore every parameter of a [`ParamStore`] in
//! a small, versioned, human-inspectable text format, so trained traders
//! can be persisted and reloaded without retraining.
//!
//! Format (line-oriented):
//! ```text
//! cit-params v1
//! <name>\t<dim0,dim1,...>\t<v0 v1 v2 ...>
//! ```

use crate::param::{ParamId, ParamStore};
use cit_tensor::Tensor;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Errors raised while loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Header/format mismatch or corrupt data.
    Malformed(String),
    /// Checkpoint does not match the store's registered parameters.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const HEADER: &str = "cit-params v1";

/// Serialises every parameter of `store`.
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for id in store.ids() {
        let value = store.value(id);
        let dims: Vec<String> = value.shape().iter().map(|d| d.to_string()).collect();
        let _ = write!(out, "{}\t{}\t", store.name(id), dims.join(","));
        for (i, v) in value.data().iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            // `{:e}` keeps full f32 precision compactly.
            let _ = write!(out, "{v:e}");
        }
        out.push('\n');
    }
    out
}

/// Restores parameter values into `store`.
///
/// The checkpoint must contain exactly the parameters the store registered
/// (same names, same shapes, same order) — i.e. the model must be
/// constructed with the same architecture before loading.
pub fn from_string(store: &mut ParamStore, text: &str) -> Result<(), CheckpointError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CheckpointError::Malformed("empty file".into()))?;
    if header.trim() != HEADER {
        return Err(CheckpointError::Malformed(format!(
            "unexpected header: {header}"
        )));
    }
    let ids: Vec<ParamId> = store.ids().collect();
    let mut loaded = 0usize;
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let name = parts
            .next()
            .ok_or_else(|| CheckpointError::Malformed(format!("line {}: no name", lineno + 2)))?;
        let dims = parts
            .next()
            .ok_or_else(|| CheckpointError::Malformed(format!("line {}: no shape", lineno + 2)))?;
        let values = parts
            .next()
            .ok_or_else(|| CheckpointError::Malformed(format!("line {}: no values", lineno + 2)))?;

        if loaded >= ids.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has more parameters than the store ({})",
                ids.len()
            )));
        }
        let id = ids[loaded];
        if store.name(id) != name {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {} expected {}, checkpoint has {name}",
                loaded,
                store.name(id)
            )));
        }
        let shape: Vec<usize> = if dims.is_empty() {
            Vec::new()
        } else {
            dims.split(',')
                .map(|d| {
                    d.parse::<usize>().map_err(|_| {
                        CheckpointError::Malformed(format!("line {}: bad shape", lineno + 2))
                    })
                })
                .collect::<Result<_, _>>()?
        };
        if shape != store.value(id).shape() {
            return Err(CheckpointError::Mismatch(format!(
                "{name}: shape {:?} vs registered {:?}",
                shape,
                store.value(id).shape()
            )));
        }
        let data: Vec<f32> = values
            .split(' ')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<f32>().map_err(|_| {
                    CheckpointError::Malformed(format!("line {}: bad value {s}", lineno + 2))
                })
            })
            .collect::<Result<_, _>>()?;
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(CheckpointError::Mismatch(format!(
                "{name}: {} values for shape {:?}",
                data.len(),
                shape
            )));
        }
        *store.value_mut(id) = Tensor::from_vec(&shape, data);
        loaded += 1;
    }
    if loaded != ids.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {loaded} parameters, store registered {}",
            ids.len()
        )));
    }
    Ok(())
}

/// Saves a checkpoint to a file (creating parent directories).
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_string(store))?;
    Ok(())
}

/// Loads a checkpoint from a file into `store`.
pub fn load(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    from_string(store, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store_with_mlp(seed: u64) -> ParamStore {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = Mlp::new(&mut store, &mut rng, "net", &[3, 5, 2], Activation::Relu);
        store
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = store_with_mlp(1);
        let text = to_string(&src);
        let mut dst = store_with_mlp(2); // different init
        from_string(&mut dst, &text).expect("load");
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let mut dst = store_with_mlp(1);
        assert!(matches!(
            from_string(&mut dst, "nope\n"),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let src = store_with_mlp(1);
        let text = to_string(&src);
        let mut other = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = Mlp::new(&mut other, &mut rng, "net", &[4, 5, 2], Activation::Relu);
        assert!(matches!(
            from_string(&mut other, &text),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_truncated_checkpoint() {
        let src = store_with_mlp(1);
        let text = to_string(&src);
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        let mut dst = store_with_mlp(1);
        assert!(matches!(
            from_string(&mut dst, &truncated),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cit_nn_ckpt_test");
        let path = dir.join("model.ckpt");
        let src = store_with_mlp(5);
        save(&src, &path).expect("save");
        let mut dst = store_with_mlp(6);
        load(&mut dst, &path).expect("load");
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scalar_and_rank0_shapes_roundtrip() {
        let mut src = ParamStore::new();
        src.add("s", Tensor::scalar(2.5));
        let text = to_string(&src);
        let mut dst = ParamStore::new();
        dst.add("s", Tensor::scalar(0.0));
        from_string(&mut dst, &text).expect("load scalar");
        let id = dst.ids().next().expect("one param");
        assert_eq!(dst.value(id).item(), 2.5);
    }
}
