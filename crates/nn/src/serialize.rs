//! Checkpointing: save and restore model parameters — and, since v2, the
//! full training state (optimizer moments, RNG stream, trainer counters) —
//! in a small, versioned, human-inspectable text format, so training runs
//! can be persisted, killed and resumed bit-identically.
//!
//! v1 format (line-oriented, params only):
//! ```text
//! cit-params v1
//! <name>\t<dim0,dim1,...>\t<v0 v1 v2 ...>
//! ```
//!
//! v2 format (sectioned; every section after `[params]` is optional):
//! ```text
//! cit-params v2
//! [params]
//! <name>\t<dim0,dim1,...>\t<v0 v1 v2 ...>
//! [optim]
//! kind\tadam
//! t\t<step>
//! slots\t<num-parameter-slots>
//! m\t<slot>\t<dims>\t<values>
//! v\t<slot>\t<dims>\t<values>
//! [rng]
//! xoshiro256pp\t<s0>\t<s1>\t<s2>\t<s3>
//! [trainer]
//! counter\t<name>\t<u64>
//! series\t<name>\t<len>\t<f64 f64 ...>
//! ```
//!
//! v1 files remain loadable (params-only restore). All saves are
//! crash-safe: the checkpoint is written to a temporary file in the same
//! directory, fsynced, then atomically renamed over the destination — a
//! crash mid-write never corrupts an existing checkpoint.

use crate::optim::{AdamState, OptimState, SgdState};
use crate::param::{ParamId, ParamStore};
use cit_tensor::Tensor;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Errors raised while loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Header/format mismatch or corrupt data (including non-finite
    /// values, which are always rejected).
    Malformed(String),
    /// Checkpoint does not match the store's registered parameters.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const HEADER_V1: &str = "cit-params v1";
const HEADER_V2: &str = "cit-params v2";

/// Counters and float series the trainer carries across a save/resume
/// cycle (step counts, previous actions, environment snapshot, …). The
/// names are chosen by the trainer; the format just round-trips them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainerState {
    /// Named integer counters (e.g. `steps`, `update_idx`).
    pub counters: Vec<(String, u64)>,
    /// Named `f64` series (e.g. `update_rewards`, `prev_actions`).
    pub series: Vec<(String, Vec<f64>)>,
}

impl TrainerState {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// `true` when no counter or series is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.series.is_empty()
    }
}

/// Everything beyond parameter values that a v2 checkpoint carries.
/// Loading a v1 file yields the default (all-`None`, empty) state.
#[derive(Debug, Clone, Default)]
pub struct TrainState {
    /// Optimizer moments/step, when the checkpoint was taken mid-training.
    pub optimizer: Option<OptimState>,
    /// xoshiro256++ RNG state words.
    pub rng: Option<[u64; 4]>,
    /// Trainer counters and series.
    pub trainer: TrainerState,
}

impl TrainState {
    /// `true` when the checkpoint carried nothing beyond parameters.
    pub fn is_empty(&self) -> bool {
        self.optimizer.is_none() && self.rng.is_none() && self.trainer.is_empty()
    }
}

fn write_tensor_values(out: &mut String, t: &Tensor) {
    for (i, v) in t.data().iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        // `{:e}` is shortest-roundtrip: parsing recovers the exact bits.
        let _ = write!(out, "{v:e}");
    }
}

fn write_param_lines(out: &mut String, store: &ParamStore) {
    for id in store.ids() {
        let value = store.value(id);
        let dims: Vec<String> = value.shape().iter().map(|d| d.to_string()).collect();
        let _ = write!(out, "{}\t{}\t", store.name(id), dims.join(","));
        write_tensor_values(out, value);
        out.push('\n');
    }
}

/// Serialises every parameter of `store` in the legacy v1 format.
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::new();
    out.push_str(HEADER_V1);
    out.push('\n');
    write_param_lines(&mut out, store);
    out
}

fn write_slot_tensors(out: &mut String, tag: &str, slots: &[Option<Tensor>]) {
    for (i, slot) in slots.iter().enumerate() {
        if let Some(t) = slot {
            let dims: Vec<String> = t.shape().iter().map(|d| d.to_string()).collect();
            let _ = write!(out, "{tag}\t{i}\t{}\t", dims.join(","));
            write_tensor_values(out, t);
            out.push('\n');
        }
    }
}

/// Serialises parameters plus full training state in the v2 format.
pub fn to_string_v2(store: &ParamStore, state: &TrainState) -> String {
    let mut out = String::new();
    out.push_str(HEADER_V2);
    out.push_str("\n[params]\n");
    write_param_lines(&mut out, store);
    match &state.optimizer {
        Some(OptimState::Adam(a)) => {
            out.push_str("[optim]\nkind\tadam\n");
            let _ = writeln!(out, "t\t{}", a.t);
            let _ = writeln!(out, "slots\t{}", a.m.len().max(a.v.len()));
            write_slot_tensors(&mut out, "m", &a.m);
            write_slot_tensors(&mut out, "v", &a.v);
        }
        Some(OptimState::Sgd(s)) => {
            out.push_str("[optim]\nkind\tsgd\n");
            let _ = writeln!(out, "slots\t{}", s.velocity.len());
            write_slot_tensors(&mut out, "vel", &s.velocity);
        }
        None => {}
    }
    if let Some(s) = &state.rng {
        out.push_str("[rng]\n");
        let _ = writeln!(out, "xoshiro256pp\t{}\t{}\t{}\t{}", s[0], s[1], s[2], s[3]);
    }
    if !state.trainer.is_empty() {
        out.push_str("[trainer]\n");
        for (name, v) in &state.trainer.counters {
            let _ = writeln!(out, "counter\t{name}\t{v}");
        }
        for (name, vs) in &state.trainer.series {
            let _ = write!(out, "series\t{name}\t{}\t", vs.len());
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{v:e}");
            }
            out.push('\n');
        }
    }
    out
}

fn parse_shape(dims: &str, lineno: usize) -> Result<Vec<usize>, CheckpointError> {
    if dims.is_empty() {
        return Ok(Vec::new());
    }
    dims.split(',')
        .map(|d| {
            d.parse::<usize>()
                .map_err(|_| CheckpointError::Malformed(format!("line {lineno}: bad shape")))
        })
        .collect()
}

fn parse_values<T: std::str::FromStr + Copy>(
    values: &str,
    lineno: usize,
    finite: impl Fn(T) -> bool,
) -> Result<Vec<T>, CheckpointError> {
    values
        .split(' ')
        .filter(|s| !s.is_empty())
        .map(|s| {
            let v = s
                .parse::<T>()
                .map_err(|_| CheckpointError::Malformed(format!("line {lineno}: bad value {s}")))?;
            if !finite(v) {
                return Err(CheckpointError::Malformed(format!(
                    "line {lineno}: non-finite value {s}"
                )));
            }
            Ok(v)
        })
        .collect()
}

fn parse_tensor(dims: &str, values: &str, lineno: usize) -> Result<Tensor, CheckpointError> {
    let shape = parse_shape(dims, lineno)?;
    let data: Vec<f32> = parse_values(values, lineno, |v: f32| v.is_finite())?;
    let expected: usize = shape.iter().product();
    if data.len() != expected {
        return Err(CheckpointError::Mismatch(format!(
            "line {lineno}: {} values for shape {:?}",
            data.len(),
            shape
        )));
    }
    Ok(Tensor::from_vec(&shape, data))
}

/// Splits a line into exactly `n` tab-separated fields.
fn fields(line: &str, n: usize, lineno: usize) -> Result<Vec<&str>, CheckpointError> {
    let parts: Vec<&str> = line.splitn(n, '\t').collect();
    if parts.len() != n {
        return Err(CheckpointError::Malformed(format!(
            "line {lineno}: expected {n} tab-separated fields"
        )));
    }
    Ok(parts)
}

struct ParamLoader<'a> {
    store: &'a mut ParamStore,
    ids: Vec<ParamId>,
    loaded: usize,
}

impl<'a> ParamLoader<'a> {
    fn new(store: &'a mut ParamStore) -> Self {
        let ids = store.ids().collect();
        ParamLoader {
            store,
            ids,
            loaded: 0,
        }
    }

    fn load_line(&mut self, line: &str, lineno: usize) -> Result<(), CheckpointError> {
        let parts = fields(line, 3, lineno)?;
        let (name, dims, values) = (parts[0], parts[1], parts[2]);
        if self.loaded >= self.ids.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has more parameters than the store ({})",
                self.ids.len()
            )));
        }
        let id = self.ids[self.loaded];
        if self.store.name(id) != name {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {} expected {}, checkpoint has {name}",
                self.loaded,
                self.store.name(id)
            )));
        }
        let tensor = parse_tensor(dims, values, lineno)?;
        if tensor.shape() != self.store.value(id).shape() {
            return Err(CheckpointError::Mismatch(format!(
                "{name}: shape {:?} vs registered {:?}",
                tensor.shape(),
                self.store.value(id).shape()
            )));
        }
        *self.store.value_mut(id) = tensor;
        self.loaded += 1;
        Ok(())
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.loaded != self.ids.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} parameters, store registered {}",
                self.loaded,
                self.ids.len()
            )));
        }
        Ok(())
    }
}

/// Restores parameter values into `store` from a v1 **or** v2 checkpoint,
/// discarding any training state a v2 file carries. Non-finite values are
/// rejected with [`CheckpointError::Malformed`].
///
/// The checkpoint must contain exactly the parameters the store registered
/// (same names, same shapes, same order) — i.e. the model must be
/// constructed with the same architecture before loading.
pub fn from_string(store: &mut ParamStore, text: &str) -> Result<(), CheckpointError> {
    from_string_full(store, text).map(|_| ())
}

/// Restores parameters into `store` and returns the training state carried
/// by the checkpoint (empty for v1 files).
pub fn from_string_full(store: &mut ParamStore, text: &str) -> Result<TrainState, CheckpointError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CheckpointError::Malformed("empty file".into()))?;
    let v2 = match header.trim() {
        HEADER_V1 => false,
        HEADER_V2 => true,
        other => {
            return Err(CheckpointError::Malformed(format!(
                "unexpected header: {other}"
            )))
        }
    };

    #[derive(PartialEq)]
    enum Section {
        Params,
        Optim,
        Rng,
        Trainer,
    }
    let mut section = Section::Params;
    let mut params = ParamLoader::new(store);
    let mut state = TrainState::default();
    // Optimizer assembly buffers.
    let mut opt_kind: Option<String> = None;
    let mut opt_t: i32 = 0;
    let mut opt_slots: usize = 0;
    let mut opt_m: Vec<(usize, Tensor)> = Vec::new();
    let mut opt_v: Vec<(usize, Tensor)> = Vec::new();
    let mut opt_vel: Vec<(usize, Tensor)> = Vec::new();

    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        if v2 && line.starts_with('[') {
            section = match line {
                "[params]" => Section::Params,
                "[optim]" => Section::Optim,
                "[rng]" => Section::Rng,
                "[trainer]" => Section::Trainer,
                other => {
                    return Err(CheckpointError::Malformed(format!(
                        "line {lineno}: unknown section {other}"
                    )))
                }
            };
            continue;
        }
        match section {
            Section::Params => params.load_line(line, lineno)?,
            Section::Optim => {
                let mut split = line.splitn(2, '\t');
                let key = split.next().unwrap_or_default();
                let rest = split.next().ok_or_else(|| {
                    CheckpointError::Malformed(format!("line {lineno}: missing optim field"))
                })?;
                match key {
                    "kind" => opt_kind = Some(rest.to_string()),
                    "t" => {
                        opt_t = rest.parse().map_err(|_| {
                            CheckpointError::Malformed(format!("line {lineno}: bad optim t"))
                        })?
                    }
                    "slots" => {
                        opt_slots = rest.parse().map_err(|_| {
                            CheckpointError::Malformed(format!("line {lineno}: bad optim slots"))
                        })?
                    }
                    "m" | "v" | "vel" => {
                        let parts = fields(rest, 3, lineno)?;
                        let slot: usize = parts[0].parse().map_err(|_| {
                            CheckpointError::Malformed(format!("line {lineno}: bad slot index"))
                        })?;
                        let t = parse_tensor(parts[1], parts[2], lineno)?;
                        match key {
                            "m" => opt_m.push((slot, t)),
                            "v" => opt_v.push((slot, t)),
                            _ => opt_vel.push((slot, t)),
                        }
                    }
                    other => {
                        return Err(CheckpointError::Malformed(format!(
                            "line {lineno}: unknown optim field {other}"
                        )))
                    }
                }
            }
            Section::Rng => {
                let parts = fields(line, 5, lineno)?;
                if parts[0] != "xoshiro256pp" {
                    return Err(CheckpointError::Malformed(format!(
                        "line {lineno}: unknown rng kind {}",
                        parts[0]
                    )));
                }
                let mut words = [0u64; 4];
                for (w, p) in words.iter_mut().zip(&parts[1..]) {
                    *w = p.parse().map_err(|_| {
                        CheckpointError::Malformed(format!("line {lineno}: bad rng word {p}"))
                    })?;
                }
                state.rng = Some(words);
            }
            Section::Trainer => {
                let parts = fields(line, 3, lineno)?;
                match parts[0] {
                    "counter" => {
                        let v: u64 = parts[2].parse().map_err(|_| {
                            CheckpointError::Malformed(format!("line {lineno}: bad counter"))
                        })?;
                        state.trainer.counters.push((parts[1].to_string(), v));
                    }
                    "series" => {
                        let sub = fields(parts[2], 2, lineno)?;
                        let len: usize = sub[0].parse().map_err(|_| {
                            CheckpointError::Malformed(format!("line {lineno}: bad series len"))
                        })?;
                        let vs: Vec<f64> = parse_values(sub[1], lineno, |v: f64| v.is_finite())?;
                        if vs.len() != len {
                            return Err(CheckpointError::Malformed(format!(
                                "line {lineno}: series {} has {} values, declared {len}",
                                parts[1],
                                vs.len()
                            )));
                        }
                        state.trainer.series.push((parts[1].to_string(), vs));
                    }
                    other => {
                        return Err(CheckpointError::Malformed(format!(
                            "line {lineno}: unknown trainer field {other}"
                        )))
                    }
                }
            }
        }
    }
    params.finish()?;

    if let Some(kind) = opt_kind {
        let fill = |pairs: Vec<(usize, Tensor)>| -> Result<Vec<Option<Tensor>>, CheckpointError> {
            let mut out: Vec<Option<Tensor>> = vec![None; opt_slots];
            for (i, t) in pairs {
                if i >= opt_slots {
                    return Err(CheckpointError::Malformed(format!(
                        "optim slot {i} out of range ({opt_slots})"
                    )));
                }
                out[i] = Some(t);
            }
            Ok(out)
        };
        state.optimizer = Some(match kind.as_str() {
            "adam" => OptimState::Adam(AdamState {
                t: opt_t,
                m: fill(opt_m)?,
                v: fill(opt_v)?,
            }),
            "sgd" => OptimState::Sgd(SgdState {
                velocity: fill(opt_vel)?,
            }),
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "unknown optimizer kind {other}"
                )))
            }
        });
    }
    Ok(state)
}

/// Atomically writes `text` to `path`: the data lands in `<path>.tmp`
/// first, is fsynced, then renamed over the destination. A crash at any
/// point leaves either the old checkpoint or the new one — never a
/// truncated hybrid.
pub fn atomic_write(path: impl AsRef<Path>, text: &str) -> io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself: fsync the directory (best-effort —
    // not all platforms allow opening directories).
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Saves a params-only (v1) checkpoint to a file, atomically.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    atomic_write(path, &to_string(store))?;
    Ok(())
}

/// Saves a full v2 checkpoint (params + training state) to a file,
/// atomically.
pub fn save_v2(
    store: &ParamStore,
    state: &TrainState,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    save_v2_with(store, state, path, &cit_faults::FaultInjector::disabled())
}

/// [`save_v2`] with a fault-injection handle: an injected error at site
/// `checkpoint.save` surfaces as [`CheckpointError::Io`] *before* any byte
/// touches disk, so the previous checkpoint file stays intact — exactly
/// the failure mode of a full disk or revoked write permission.
pub fn save_v2_with(
    store: &ParamStore,
    state: &TrainState,
    path: impl AsRef<Path>,
    faults: &cit_faults::FaultInjector,
) -> Result<(), CheckpointError> {
    if let Some(err) = faults.io_error("checkpoint.save") {
        return Err(CheckpointError::Io(err));
    }
    atomic_write(path, &to_string_v2(store, state))?;
    Ok(())
}

/// Loads a checkpoint (v1 or v2) from a file into `store`, params only.
pub fn load(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    load_full(store, path).map(|_| ())
}

/// Loads a checkpoint (v1 or v2) from a file into `store` and returns the
/// training state it carried (empty for v1 files).
pub fn load_full(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
) -> Result<TrainState, CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    from_string_full(store, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store_with_mlp(seed: u64) -> ParamStore {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = Mlp::new(&mut store, &mut rng, "net", &[3, 5, 2], Activation::Relu);
        store
    }

    fn sample_state(store: &ParamStore) -> TrainState {
        let slots = store.len();
        let mut m = vec![None; slots];
        let mut v = vec![None; slots];
        m[0] = Some(Tensor::vector(&[0.25, -0.5, 1.5e-7]));
        v[0] = Some(Tensor::vector(&[0.1, 0.2, 0.3]));
        TrainState {
            optimizer: Some(OptimState::Adam(AdamState { t: 17, m, v })),
            rng: Some([1, 2, 3, u64::MAX]),
            trainer: TrainerState {
                counters: vec![("steps".into(), 640), ("update_idx".into(), 20)],
                series: vec![
                    ("update_rewards".into(), vec![0.01, -0.002, 1e-17]),
                    ("prev_actions".into(), vec![0.5, 0.25, 0.25]),
                ],
            },
        }
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = store_with_mlp(1);
        let text = to_string(&src);
        let mut dst = store_with_mlp(2); // different init
        from_string(&mut dst, &text).expect("load");
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn v2_roundtrip_preserves_params_and_state() {
        let src = store_with_mlp(3);
        let state = sample_state(&src);
        let text = to_string_v2(&src, &state);
        let mut dst = store_with_mlp(4);
        let loaded = from_string_full(&mut dst, &text).expect("load v2");
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
        assert_eq!(loaded.rng, state.rng);
        assert_eq!(loaded.trainer, state.trainer);
        match (loaded.optimizer, state.optimizer) {
            (Some(OptimState::Adam(a)), Some(OptimState::Adam(b))) => {
                assert_eq!(a.t, b.t);
                assert_eq!(a.m, b.m);
                assert_eq!(a.v, b.v);
            }
            other => panic!("optimizer state mismatch: {other:?}"),
        }
    }

    #[test]
    fn v1_files_load_into_full_reader_with_empty_state() {
        let src = store_with_mlp(5);
        let text = to_string(&src);
        let mut dst = store_with_mlp(6);
        let state = from_string_full(&mut dst, &text).expect("v1 via full reader");
        assert!(state.is_empty());
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn v2_files_load_into_params_only_reader() {
        let src = store_with_mlp(7);
        let text = to_string_v2(&src, &sample_state(&src));
        let mut dst = store_with_mlp(8);
        from_string(&mut dst, &text).expect("params-only read of v2");
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let mut dst = store_with_mlp(1);
        assert!(matches!(
            from_string(&mut dst, "nope\n"),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_non_finite_values() {
        let src = store_with_mlp(1);
        for bad in ["NaN", "inf", "-inf"] {
            let mut text = to_string(&src);
            // Replace the first value of the first parameter line.
            let pos = text.find('\n').unwrap() + 1;
            let line_end = text[pos..].find('\n').unwrap() + pos;
            let line = text[pos..line_end].to_string();
            let mut parts: Vec<&str> = line.splitn(3, '\t').collect();
            let mut values: Vec<&str> = parts[2].split(' ').collect();
            values[0] = bad;
            let joined = values.join(" ");
            parts[2] = &joined;
            let rebuilt = parts.join("\t");
            text.replace_range(pos..line_end, &rebuilt);
            let mut dst = store_with_mlp(1);
            assert!(
                matches!(
                    from_string(&mut dst, &text),
                    Err(CheckpointError::Malformed(_))
                ),
                "{bad} accepted"
            );
        }
    }

    #[test]
    fn rejects_non_finite_trainer_series() {
        let src = store_with_mlp(2);
        let mut state = sample_state(&src);
        state.trainer.series[0].1[1] = f64::NAN;
        let text = to_string_v2(&src, &state);
        let mut dst = store_with_mlp(2);
        assert!(matches!(
            from_string_full(&mut dst, &text),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let src = store_with_mlp(1);
        let text = to_string(&src);
        let mut other = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = Mlp::new(&mut other, &mut rng, "net", &[4, 5, 2], Activation::Relu);
        assert!(matches!(
            from_string(&mut other, &text),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_truncated_checkpoint() {
        let src = store_with_mlp(1);
        let text = to_string(&src);
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        let mut dst = store_with_mlp(1);
        assert!(matches!(
            from_string(&mut dst, &truncated),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cit_nn_ckpt_test");
        let path = dir.join("model.ckpt");
        let src = store_with_mlp(5);
        save(&src, &path).expect("save");
        let mut dst = store_with_mlp(6);
        load(&mut dst, &path).expect("load");
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn atomic_save_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("cit_nn_ckpt_atomic");
        let path = dir.join("model.ckpt");
        let src = store_with_mlp(9);
        let state = sample_state(&src);
        save_v2(&src, &state, &path).expect("save");
        assert!(path.exists());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "tmp file left behind");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn crash_during_save_preserves_previous_checkpoint() {
        // A valid checkpoint exists; a crash mid-write of the next one
        // leaves a truncated `<path>.tmp`, which must not affect loading.
        let dir = std::env::temp_dir().join("cit_nn_ckpt_crash");
        let path = dir.join("model.ckpt");
        let src = store_with_mlp(10);
        save_v2(&src, &sample_state(&src), &path).expect("save");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        std::fs::write(&tmp, "cit-params v2\n[par").expect("write truncated tmp");
        let mut dst = store_with_mlp(11);
        load_full(&mut dst, &path).expect("previous checkpoint still loads");
        for (a, b) in src.ids().zip(dst.ids()) {
            assert_eq!(src.value(a), dst.value(b));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scalar_and_rank0_shapes_roundtrip() {
        let mut src = ParamStore::new();
        src.add("s", Tensor::scalar(2.5));
        let text = to_string(&src);
        let mut dst = ParamStore::new();
        dst.add("s", Tensor::scalar(0.0));
        from_string(&mut dst, &text).expect("load scalar");
        let id = dst.ids().next().expect("one param");
        assert_eq!(dst.value(id).item(), 2.5);
    }
}
