//! Weight initialisation schemes.

use cit_tensor::{rand_util, Tensor};
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-l, l)` with
/// `l = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(
    rng: &mut impl Rng,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let limit = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    let mut t = Tensor::zeros(shape);
    rand_util::fill_uniform(rng, t.data_mut(), limit);
    t
}

/// Kaiming/He normal initialisation: `N(0, 2/fan_in)`.
pub fn kaiming_normal(rng: &mut impl Rng, shape: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0f32 / fan_in.max(1) as f32).sqrt();
    let mut t = Tensor::zeros(shape);
    rand_util::fill_normal(rng, t.data_mut(), std);
    t
}

/// Small uniform initialisation, for output heads that should start near
/// the uniform portfolio.
pub fn small_uniform(rng: &mut impl Rng, shape: &[usize], limit: f32) -> Tensor {
    let mut t = Tensor::zeros(shape);
    rand_util::fill_uniform(rng, t.data_mut(), limit);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, &[8, 8], 8, 8);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
        assert!(t.max_abs() > 0.0);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = kaiming_normal(&mut rng, &[1000], 1000);
        let narrow = kaiming_normal(&mut rng, &[1000], 4);
        let var = |t: &Tensor| t.sq_norm() / t.numel() as f32;
        assert!(var(&wide) < var(&narrow));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(9), &[4, 4], 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(9), &[4, 4], 4, 4);
        assert_eq!(a, b);
    }
}
