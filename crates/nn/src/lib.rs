//! # cit-nn
//!
//! Neural-network building blocks on top of [`cit_tensor`]: a central
//! [`ParamStore`], the forward-pass [`Ctx`], layers (dense, causal TCN,
//! GRU, ASTGCN-style spatial attention, Gaussian policy head) and
//! optimisers (SGD, AdamW-style Adam).
//!
//! ```
//! use cit_nn::{Activation, Adam, Ctx, Mlp, ParamStore};
//! use cit_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let mlp = Mlp::new(&mut store, &mut rng, "net", &[4, 16, 1], Activation::Relu);
//! let mut opt = Adam::new(1e-3, 0.0);
//!
//! let mut ctx = Ctx::new(&store);
//! let x = ctx.input(Tensor::zeros(&[1, 4]));
//! let y = mlp.forward(&mut ctx, x);
//! let loss = ctx.g.mean_all(y);
//! let grads = ctx.backward(loss);
//! for (id, g) in grads {
//!     store.accumulate_grad(id, &g);
//! }
//! opt.step(&mut store);
//! ```

#![deny(missing_docs)]

pub mod init;
mod layers;
mod optim;
mod param;
pub mod serialize;

pub use layers::{
    log_prob_scalar, Activation, Conv1dLayer, GaussianHead, GaussianSample, Gru, Linear, Lstm, Mlp,
    SpatialAttention, Tcn, TcnBlock,
};
pub use optim::{Adam, AdamState, OptimState, Sgd, SgdState};
pub use param::{Ctx, ParamId, ParamStore};
