//! Gradient-descent optimisers over a [`ParamStore`].

use crate::param::{ParamId, ParamStore};
use cit_tensor::Tensor;

/// Exported internal state of an [`Sgd`] optimiser: the per-parameter
/// momentum buffers. Round-trips through [`Sgd::export_state`] /
/// [`Sgd::import_state`] so checkpoints can resume bit-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SgdState {
    /// Momentum velocity per parameter slot (`None` = not yet touched).
    pub velocity: Vec<Option<Tensor>>,
}

/// Exported internal state of an [`Adam`] optimiser: the first/second
/// moment estimates and the step counter driving bias correction.
/// Round-trips through [`Adam::export_state`] / [`Adam::import_state`]
/// so checkpoints can resume bit-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamState {
    /// Number of updates applied so far (`t` in the Adam paper).
    pub t: i32,
    /// First-moment estimate per parameter slot.
    pub m: Vec<Option<Tensor>>,
    /// Second-moment estimate per parameter slot.
    pub v: Vec<Option<Tensor>>,
}

/// State of either supported optimiser, as carried by v2 checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimState {
    /// SGD momentum buffers.
    Sgd(SgdState),
    /// Adam moments + step counter.
    Adam(AdamState),
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates an SGD optimiser with learning rate `lr` and momentum
    /// coefficient `momentum` (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Snapshots the momentum buffers for checkpointing.
    pub fn export_state(&self) -> SgdState {
        SgdState {
            velocity: self.velocity.clone(),
        }
    }

    /// Restores momentum buffers captured by [`Sgd::export_state`]. The
    /// next [`Sgd::step`] then continues exactly where the exporting
    /// optimiser left off.
    pub fn import_state(&mut self, state: SgdState) {
        self.velocity = state.velocity;
    }

    /// Applies one update from the accumulated gradients, then zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.velocity.resize_with(store.len(), || None);
        let ids: Vec<ParamId> = store.ids().collect();
        for (i, id) in ids.into_iter().enumerate() {
            let g = store.grad(id).clone();
            let update = if self.momentum > 0.0 {
                let v = match &self.velocity[i] {
                    Some(prev) => prev.zip_map(&g, |vp, gi| self.momentum * vp + gi),
                    None => g.clone(),
                };
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g
            };
            let lr = self.lr;
            let new = store.value(id).zip_map(&update, |p, u| p - lr * u);
            *store.value_mut(id) = new;
        }
        store.zero_grads();
    }
}

/// Adam with decoupled weight decay (AdamW-style), matching the paper's
/// "Adam optimizer … with the weight decay regulariser".
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: i32,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates an Adam optimiser with standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (simple schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Snapshots the moment estimates and step counter for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::export_state`]. The next
    /// [`Adam::step`] then continues exactly where the exporting optimiser
    /// left off (same bias correction, same moments).
    pub fn import_state(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    /// Applies one update from the accumulated gradients, then zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        self.m.resize_with(store.len(), || None);
        self.v.resize_with(store.len(), || None);
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        let ids: Vec<ParamId> = store.ids().collect();
        for (i, id) in ids.into_iter().enumerate() {
            let g = store.grad(id);
            let m = match &self.m[i] {
                Some(prev) => prev.zip_map(g, |mp, gi| self.beta1 * mp + (1.0 - self.beta1) * gi),
                None => g.scale(1.0 - self.beta1),
            };
            let v = match &self.v[i] {
                Some(prev) => {
                    prev.zip_map(g, |vp, gi| self.beta2 * vp + (1.0 - self.beta2) * gi * gi)
                }
                None => g.map(|gi| (1.0 - self.beta2) * gi * gi),
            };
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let step = m.zip_map(&v, |mi, vi| {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                lr * mhat / (vhat.sqrt() + eps)
            });
            let new = store.value(id).zip_map(&step, |p, s| p - s - lr * wd * p);
            *store.value_mut(id) = new;
            self.m[i] = Some(m);
            self.v[i] = Some(v);
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Ctx;

    /// Minimise f(w) = (w - 3)² with the given optimiser-step closure.
    fn converges(
        mut step: impl FnMut(&mut ParamStore),
        store: &mut ParamStore,
        id: ParamId,
    ) -> f32 {
        for _ in 0..400 {
            let mut ctx = Ctx::new(store);
            let w = ctx.param(id);
            let d = ctx.g.add_scalar(w, -3.0);
            let sq = ctx.g.mul(d, d);
            let loss = ctx.g.sum_all(sq);
            for (pid, g) in ctx.backward(loss) {
                store.accumulate_grad(pid, &g);
            }
            step(store);
        }
        store.value(id).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[0.0]));
        let mut opt = Sgd::new(0.05, 0.0);
        let w = converges(|s| opt.step(s), &mut store, id);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[0.0]));
        let mut opt = Sgd::new(0.02, 0.9);
        let w = converges(|s| opt.step(s), &mut store, id);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[0.0]));
        let mut opt = Adam::new(0.05, 0.0);
        let w = converges(|s| opt.step(s), &mut store, id);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_weight_decay_shrinks_unused_params() {
        let mut store = ParamStore::new();
        let used = store.add("used", Tensor::vector(&[1.0]));
        let unused = store.add("unused", Tensor::vector(&[1.0]));
        let mut opt = Adam::new(0.01, 0.1);
        for _ in 0..50 {
            // Gradient only on `used`.
            store.accumulate_grad(used, &Tensor::vector(&[0.1]));
            opt.step(&mut store);
        }
        assert!(
            store.value(unused).data()[0] < 1.0,
            "weight decay should shrink the unused param"
        );
    }

    #[test]
    fn adam_state_roundtrip_resumes_bitwise() {
        // 10 straight steps vs 5 steps → export/import → 5 steps must give
        // bitwise-identical parameters.
        let grads = [0.3f32, -0.2, 0.7, 0.05, -0.9, 0.4, 0.1, -0.3, 0.6, 0.2];
        let run = |split: Option<usize>| {
            let mut store = ParamStore::new();
            let id = store.add("w", Tensor::vector(&[1.0, -1.0]));
            let mut opt = Adam::new(0.05, 0.01);
            for (i, &g) in grads.iter().enumerate() {
                if split == Some(i) {
                    let state = opt.export_state();
                    opt = Adam::new(0.05, 0.01);
                    opt.import_state(state);
                }
                store.accumulate_grad(id, &Tensor::vector(&[g, -g]));
                opt.step(&mut store);
            }
            store.value(id).data().to_vec()
        };
        assert_eq!(run(None), run(Some(5)));
    }

    #[test]
    fn sgd_state_roundtrip_resumes_bitwise() {
        let run = |split: bool| {
            let mut store = ParamStore::new();
            let id = store.add("w", Tensor::vector(&[0.5]));
            let mut opt = Sgd::new(0.1, 0.9);
            for i in 0..8 {
                if split && i == 4 {
                    let state = opt.export_state();
                    opt = Sgd::new(0.1, 0.9);
                    opt.import_state(state);
                }
                store.accumulate_grad(id, &Tensor::vector(&[0.1 * (i as f32 + 1.0)]));
                opt.step(&mut store);
            }
            store.value(id).data().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[0.0]));
        store.accumulate_grad(id, &Tensor::vector(&[1.0]));
        Adam::new(0.01, 0.0).step(&mut store);
        assert_eq!(store.grad(id).data(), &[0.0]);
    }
}
