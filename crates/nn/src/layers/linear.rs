//! Fully-connected layers and multi-layer perceptrons.

use crate::init::xavier_uniform;
use crate::param::{Ctx, ParamId, ParamStore};
use cit_tensor::{Tensor, Var};
use rand::Rng;

/// Activation applied between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    /// Applies the activation in graph `ctx`.
    pub fn apply(self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        match self {
            Activation::Relu => ctx.g.relu(x),
            Activation::Tanh => ctx.g.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// A dense layer `y = x·W + b` operating on `[N, in] -> [N, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers the layer's parameters into `store`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(
            format!("{name}.w"),
            xavier_uniform(rng, &[in_dim, out_dim], in_dim, out_dim),
        );
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass: `x [N, in] -> [N, out]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        let w = ctx.param(self.w);
        let b = ctx.param(self.b);
        let xw = ctx.g.matmul(x, w);
        ctx.g.add_bias(xw, b)
    }

    /// Forward for a single feature vector: `x [in] -> [out]`.
    pub fn forward_vec(&self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        let x2 = ctx.g.reshape(x, &[1, self.in_dim]);
        let y = self.forward(ctx, x2);
        ctx.g.reshape(y, &[self.out_dim])
    }
}

/// A feed-forward stack of [`Linear`] layers with a shared hidden
/// activation and an identity output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[64, 32, 1]` from an
    /// input of `dims[0]` to an output of `dims.last()`.
    ///
    /// # Panics
    /// Panics when fewer than two widths are given.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dims: &[usize],
        activation: Activation,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp needs at least input and output widths"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.l{i}"), w[0], w[1]))
            .collect();
        Mlp { layers, activation }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward pass on `[N, in]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(ctx, h);
            if i < last {
                h = self.activation.apply(ctx, h);
            }
        }
        h
    }

    /// Forward for a single vector `[in] -> [out]`.
    pub fn forward_vec(&self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        let x2 = ctx.g.reshape(x, &[1, self.in_dim()]);
        let y = self.forward(ctx, x2);
        ctx.g.reshape(y, &[self.out_dim()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(&mut store, &mut rng, "lin", 3, 5);
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(Tensor::zeros(&[4, 3]));
        let y = l.forward(&mut ctx, x);
        assert_eq!(ctx.g.value(y).shape(), &[4, 5]);
    }

    #[test]
    fn linear_zero_weights_give_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(&mut store, &mut rng, "lin", 2, 2);
        // zero the weight, set bias
        for id in store.ids().collect::<Vec<_>>() {
            if store.name(id).ends_with(".w") {
                *store.value_mut(id) = Tensor::zeros(&[2, 2]);
            } else {
                *store.value_mut(id) = Tensor::vector(&[1.5, -0.5]);
            }
        }
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(Tensor::from_vec(&[1, 2], vec![9.0, 9.0]));
        let y = l.forward(&mut ctx, x);
        assert_eq!(ctx.g.value(y).data(), &[1.5, -0.5]);
    }

    #[test]
    fn mlp_learns_linear_map_one_step_reduces_loss() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut store, &mut rng, "mlp", &[2, 8, 1], Activation::Tanh);

        let loss_of = |store: &ParamStore| -> f32 {
            let mut ctx = Ctx::new(store);
            let x = ctx.input(Tensor::from_vec(&[1, 2], vec![1.0, -1.0]));
            let y = mlp.forward(&mut ctx, x);
            let target = ctx.input(Tensor::from_vec(&[1, 1], vec![0.7]));
            let d = ctx.g.sub(y, target);
            let sq = ctx.g.mul(d, d);
            let l = ctx.g.sum_all(sq);
            ctx.g.value(l).item()
        };

        let before = loss_of(&store);
        // One plain SGD step.
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(Tensor::from_vec(&[1, 2], vec![1.0, -1.0]));
        let y = mlp.forward(&mut ctx, x);
        let target = ctx.input(Tensor::from_vec(&[1, 1], vec![0.7]));
        let d = ctx.g.sub(y, target);
        let sq = ctx.g.mul(d, d);
        let l = ctx.g.sum_all(sq);
        let grads = ctx.backward(l);
        for (id, g) in grads {
            let upd = store.value(id).zip_map(&g, |p, gi| p - 0.05 * gi);
            *store.value_mut(id) = upd;
        }
        let after = loss_of(&store);
        assert!(after < before, "loss did not decrease: {before} -> {after}");
    }

    #[test]
    fn mlp_dims() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[7, 5, 3], Activation::Relu);
        assert_eq!(mlp.in_dim(), 7);
        assert_eq!(mlp.out_dim(), 3);
        // 2 layers: 7*5+5 + 5*3+3 = 58 params
        assert_eq!(store.num_elements(), 58);
    }
}
