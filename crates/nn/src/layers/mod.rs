//! Network building blocks: dense layers, temporal convolutions, GRUs,
//! spatial attention and the Gaussian policy head.

mod attention;
mod conv;
mod gaussian;
mod gru;
mod linear;
mod lstm;

pub use attention::SpatialAttention;
pub use conv::{Conv1dLayer, Tcn, TcnBlock};
pub use gaussian::{log_prob_scalar, GaussianHead, GaussianSample};
pub use gru::Gru;
pub use linear::{Activation, Linear, Mlp};
pub use lstm::Lstm;
