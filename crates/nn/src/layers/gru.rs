//! Gated recurrent unit used by the paper's ablation variants
//! (Section V-C2: `GRU` and `ours (GRU)`).

use crate::init::xavier_uniform;
use crate::param::{Ctx, ParamId, ParamStore};
use cit_tensor::{Tensor, Var};
use rand::Rng;

/// A single-layer GRU processing a `[N, d, L]` tensor time-major and
/// returning either the final hidden state or the full hidden sequence.
///
/// The update follows the standard formulation:
/// `z = σ(xW_z + hU_z + b_z)`, `r = σ(xW_r + hU_r + b_r)`,
/// `h̃ = tanh(xW_h + (r⊙h)U_h + b_h)`, `h' = (1−z)⊙h + z⊙h̃`.
#[derive(Debug, Clone)]
pub struct Gru {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    input_dim: usize,
    hidden: usize,
}

impl Gru {
    /// Registers all nine GRU weight tensors.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        input_dim: usize,
        hidden: usize,
    ) -> Self {
        let (i, h) = (input_dim, hidden);
        let wz = store.add(format!("{name}.wz"), xavier_uniform(rng, &[i, h], i, h));
        let uz = store.add(format!("{name}.uz"), xavier_uniform(rng, &[h, h], h, h));
        let wr = store.add(format!("{name}.wr"), xavier_uniform(rng, &[i, h], i, h));
        let ur = store.add(format!("{name}.ur"), xavier_uniform(rng, &[h, h], h, h));
        let wh = store.add(format!("{name}.wh"), xavier_uniform(rng, &[i, h], i, h));
        let uh = store.add(format!("{name}.uh"), xavier_uniform(rng, &[h, h], h, h));
        let bz = store.add(format!("{name}.bz"), Tensor::zeros(&[hidden]));
        let br = store.add(format!("{name}.br"), Tensor::zeros(&[hidden]));
        let bh = store.add(format!("{name}.bh"), Tensor::zeros(&[hidden]));
        Gru {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            input_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One recurrent step: `x [N,d]`, `h [N,hidden]` → new hidden.
    pub fn step(&self, ctx: &mut Ctx<'_>, x: Var, h: Var) -> Var {
        let (wz, uz, bz) = (ctx.param(self.wz), ctx.param(self.uz), ctx.param(self.bz));
        let (wr, ur, br) = (ctx.param(self.wr), ctx.param(self.ur), ctx.param(self.br));
        let (wh, uh, bh) = (ctx.param(self.wh), ctx.param(self.uh), ctx.param(self.bh));

        let xz = ctx.g.matmul(x, wz);
        let hz = ctx.g.matmul(h, uz);
        let zsum = ctx.g.add(xz, hz);
        let zb = ctx.g.add_bias(zsum, bz);
        let z = ctx.g.sigmoid(zb);

        let xr = ctx.g.matmul(x, wr);
        let hr = ctx.g.matmul(h, ur);
        let rsum = ctx.g.add(xr, hr);
        let rb = ctx.g.add_bias(rsum, br);
        let r = ctx.g.sigmoid(rb);

        let xh = ctx.g.matmul(x, wh);
        let rh = ctx.g.mul(r, h);
        let rhu = ctx.g.matmul(rh, uh);
        let hsum = ctx.g.add(xh, rhu);
        let hb = ctx.g.add_bias(hsum, bh);
        let cand = ctx.g.tanh(hb);

        let one_minus_z = {
            let neg = ctx.g.neg(z);
            ctx.g.add_scalar(neg, 1.0)
        };
        let keep = ctx.g.mul(one_minus_z, h);
        let take = ctx.g.mul(z, cand);
        ctx.g.add(keep, take)
    }

    /// Runs the GRU over a `[N, d, L]` window (constant input), feeding time
    /// slices `[N, d]` in order, and returns the final hidden state
    /// `[N, hidden]`.
    pub fn forward_window(&self, ctx: &mut Ctx<'_>, window: &Tensor) -> Var {
        assert_eq!(window.shape().len(), 3, "Gru window must be [N,d,L]");
        let (n, d, l) = (window.shape()[0], window.shape()[1], window.shape()[2]);
        assert_eq!(
            d, self.input_dim,
            "Gru input dim {d} vs expected {}",
            self.input_dim
        );
        let mut h = ctx.input(Tensor::zeros(&[n, self.hidden]));
        for t in 0..l {
            let mut slice = Tensor::zeros(&[n, d]);
            for ni in 0..n {
                for di in 0..d {
                    slice.set2(ni, di, window.at3(ni, di, t));
                }
            }
            let x = ctx.input(slice);
            h = self.step(ctx, x, h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gru_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let gru = Gru::new(&mut store, &mut rng, "g", 4, 6);
        let mut ctx = Ctx::new(&store);
        let h = gru.forward_window(&mut ctx, &Tensor::zeros(&[3, 4, 7]));
        assert_eq!(ctx.g.value(h).shape(), &[3, 6]);
    }

    #[test]
    fn gru_zero_weights_keep_zero_hidden() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let gru = Gru::new(&mut store, &mut rng, "g", 2, 3);
        for id in store.ids().collect::<Vec<_>>() {
            let shape = store.value(id).shape().to_vec();
            *store.value_mut(id) = Tensor::zeros(&shape);
        }
        let mut ctx = Ctx::new(&store);
        let h = gru.forward_window(&mut ctx, &Tensor::ones(&[1, 2, 4]));
        // z = σ(0) = 0.5, candidate = tanh(0) = 0, h' = 0.5·h + 0.5·0 = 0.
        assert!(ctx.g.value(h).max_abs() < 1e-7);
    }

    #[test]
    fn gru_depends_on_input_order() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let gru = Gru::new(&mut store, &mut rng, "g", 1, 4);
        let run = |vals: Vec<f32>| {
            let mut ctx = Ctx::new(&store);
            let w = Tensor::from_vec(&[1, 1, 4], vals);
            let h = gru.forward_window(&mut ctx, &w);
            ctx.g.value(h).data().to_vec()
        };
        let fwd = run(vec![1.0, 2.0, 3.0, 4.0]);
        let rev = run(vec![4.0, 3.0, 2.0, 1.0]);
        let diff: f32 = fwd.iter().zip(&rev).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "GRU output should be order-sensitive");
    }

    #[test]
    fn gru_gradients_flow_to_all_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let gru = Gru::new(&mut store, &mut rng, "g", 2, 3);
        let mut ctx = Ctx::new(&store);
        let h = gru.forward_window(&mut ctx, &Tensor::ones(&[2, 2, 5]));
        let sq = ctx.g.mul(h, h);
        let loss = ctx.g.sum_all(sq);
        let grads = ctx.backward(loss);
        assert_eq!(
            grads.len(),
            9,
            "all nine GRU tensors should receive gradients"
        );
        for (id, g) in grads {
            assert!(g.all_finite(), "non-finite grad for {}", store.name(id));
        }
    }
}
