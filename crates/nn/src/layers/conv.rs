//! Causal dilated convolutions and the temporal convolution network (TCN)
//! block used by the paper's actors (Yu & Koltun dilated convolutions,
//! residual blocks as in Bai et al.).

use crate::init::kaiming_normal;
use crate::param::{Ctx, ParamId, ParamStore};
use cit_tensor::{Tensor, Var};
use rand::Rng;

/// A single causal dilated 1-D convolution `[N,Cin,L] -> [N,Cout,L]`.
#[derive(Debug, Clone)]
pub struct Conv1dLayer {
    w: ParamId,
    b: ParamId,
    dilation: usize,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
}

impl Conv1dLayer {
    /// Registers weights `[Cout, Cin, K]` and bias `[Cout]`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        dilation: usize,
    ) -> Self {
        let fan_in = in_channels * kernel;
        let w = store.add(
            format!("{name}.w"),
            kaiming_normal(rng, &[out_channels, in_channels, kernel], fan_in),
        );
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[out_channels]));
        Conv1dLayer {
            w,
            b,
            dilation,
            in_channels,
            out_channels,
            kernel,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Forward pass.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        let w = ctx.param(self.w);
        let b = ctx.param(self.b);
        ctx.g.conv1d(x, w, b, self.dilation)
    }
}

/// A residual TCN block: two causal dilated convolutions with ReLU, plus a
/// skip connection (1×1 convolution when channel counts differ).
#[derive(Debug, Clone)]
pub struct TcnBlock {
    conv1: Conv1dLayer,
    conv2: Conv1dLayer,
    skip: Option<Conv1dLayer>,
}

impl TcnBlock {
    /// Builds one residual block with the given dilation.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        dilation: usize,
    ) -> Self {
        let conv1 = Conv1dLayer::new(
            store,
            rng,
            &format!("{name}.conv1"),
            in_channels,
            out_channels,
            kernel,
            dilation,
        );
        let conv2 = Conv1dLayer::new(
            store,
            rng,
            &format!("{name}.conv2"),
            out_channels,
            out_channels,
            kernel,
            dilation,
        );
        let skip = (in_channels != out_channels).then(|| {
            Conv1dLayer::new(
                store,
                rng,
                &format!("{name}.skip"),
                in_channels,
                out_channels,
                1,
                1,
            )
        });
        TcnBlock { conv1, conv2, skip }
    }

    /// Forward pass `[N,Cin,L] -> [N,Cout,L]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        let h = self.conv1.forward(ctx, x);
        let h = ctx.g.relu(h);
        let h = self.conv2.forward(ctx, h);
        let h = ctx.g.relu(h);
        let res = match &self.skip {
            Some(s) => s.forward(ctx, x),
            None => x,
        };
        ctx.g.add(h, res)
    }
}

/// A stack of [`TcnBlock`]s with exponentially growing dilation
/// (1, 2, 4, …), giving a receptive field of `(kernel-1)·(2^levels - 1)+1`.
#[derive(Debug, Clone)]
pub struct Tcn {
    blocks: Vec<TcnBlock>,
    hidden: usize,
}

impl Tcn {
    /// Builds `levels` residual blocks mapping `in_channels` to `hidden`
    /// channels.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_channels: usize,
        hidden: usize,
        kernel: usize,
        levels: usize,
    ) -> Self {
        assert!(levels >= 1, "Tcn needs at least one level");
        let mut blocks = Vec::with_capacity(levels);
        let mut cin = in_channels;
        let mut dilation = 1;
        for l in 0..levels {
            blocks.push(TcnBlock::new(
                store,
                rng,
                &format!("{name}.b{l}"),
                cin,
                hidden,
                kernel,
                dilation,
            ));
            cin = hidden;
            dilation *= 2;
        }
        Tcn { blocks, hidden }
    }

    /// Hidden channel width `f`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Forward pass `[N,Cin,L] -> [N,hidden,L]`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, x: Var) -> Var {
        let _timer = ctx.span("nn.tcn_forward");
        let mut h = x;
        for b in &self.blocks {
            h = b.forward(ctx, h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, StdRng) {
        (ParamStore::new(), StdRng::seed_from_u64(42))
    }

    #[test]
    fn conv_shapes() {
        let (mut store, mut rng) = setup();
        let c = Conv1dLayer::new(&mut store, &mut rng, "c", 4, 8, 3, 1);
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(Tensor::zeros(&[5, 4, 10]));
        let y = c.forward(&mut ctx, x);
        assert_eq!(ctx.g.value(y).shape(), &[5, 8, 10]);
    }

    #[test]
    fn tcn_block_residual_passthrough() {
        // With all conv weights zeroed and matching channels the block is
        // the identity (skip connection only).
        let (mut store, mut rng) = setup();
        let b = TcnBlock::new(&mut store, &mut rng, "b", 3, 3, 2, 1);
        for id in store.ids().collect::<Vec<_>>() {
            let shape = store.value(id).shape().to_vec();
            *store.value_mut(id) = Tensor::zeros(&shape);
        }
        let mut ctx = Ctx::new(&store);
        let input = Tensor::from_vec(&[1, 3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let x = ctx.input(input.clone());
        let y = b.forward(&mut ctx, x);
        assert_eq!(ctx.g.value(y), &input);
    }

    #[test]
    fn tcn_stack_shapes_and_dilation_growth() {
        let (mut store, mut rng) = setup();
        let tcn = Tcn::new(&mut store, &mut rng, "t", 4, 16, 3, 3);
        assert_eq!(tcn.hidden(), 16);
        let mut ctx = Ctx::new(&store);
        let x = ctx.input(Tensor::zeros(&[2, 4, 32]));
        let y = tcn.forward(&mut ctx, x);
        assert_eq!(ctx.g.value(y).shape(), &[2, 16, 32]);
    }

    #[test]
    fn tcn_is_causal_end_to_end() {
        let (mut store, mut rng) = setup();
        let tcn = Tcn::new(&mut store, &mut rng, "t", 2, 4, 2, 2);
        let run = |x: &Tensor| {
            let mut ctx = Ctx::new(&store);
            let xv = ctx.input(x.clone());
            let y = tcn.forward(&mut ctx, xv);
            ctx.g.value(y).data().to_vec()
        };
        let l = 8usize;
        let base_in = Tensor::from_vec(&[1, 2, l], (0..2 * l).map(|i| i as f32 * 0.1).collect());
        let base = run(&base_in);
        let mut bumped = base_in.clone();
        // Bump the last time step of channel 0.
        bumped.data_mut()[l - 1] += 1.0;
        let changed = run(&bumped);
        // Outputs for t < L-1 must be identical.
        for c in 0..4 {
            for t in 0..l - 1 {
                let i = c * l + t;
                assert!(
                    (base[i] - changed[i]).abs() < 1e-6,
                    "channel {c} time {t} leaked future information"
                );
            }
        }
    }

    #[test]
    fn tcn_gradcheck_small() {
        // End-to-end gradient check through two stacked residual blocks.
        // Seed chosen to keep ReLU pre-activations away from the kink,
        // where finite differences are unreliable.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let _tcn = Tcn::new(&mut store, &mut rng, "t", 2, 3, 2, 2);
        let x = Tensor::from_vec(&[1, 2, 4], (0..8).map(|i| 0.1 * i as f32).collect());

        let ids: Vec<_> = store.ids().collect();
        let params: Vec<Tensor> = ids.iter().map(|&id| store.value(id).clone()).collect();
        cit_tensor::gradcheck::assert_gradcheck(&params, 5e-2, |g, p| {
            // Mirror the block structure with primitive ops so the provided
            // leaves `p` act as the (perturbed) parameters. Layout per
            // block: conv1.w, conv1.b, conv2.w, conv2.b, (skip.w, skip.b).
            let xin = g.input(x.clone());
            // block 0 has skip (2->3)
            let h = g.conv1d(xin, p[0], p[1], 1);
            let h = g.relu(h);
            let h = g.conv1d(h, p[2], p[3], 1);
            let h = g.relu(h);
            let skip = g.conv1d(xin, p[4], p[5], 1);
            let b0 = g.add(h, skip);
            // block 1: no skip conv (3->3), dilation 2
            let h = g.conv1d(b0, p[6], p[7], 2);
            let h = g.relu(h);
            let h = g.conv1d(h, p[8], p[9], 2);
            let h = g.relu(h);
            let b1 = g.add(h, b0);
            let sq = g.mul(b1, b1);
            g.sum_all(sq)
        });
    }
}
