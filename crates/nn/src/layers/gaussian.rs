//! Diagonal-Gaussian policy head.
//!
//! Portfolio actions live on the simplex, so the policy samples a latent
//! vector `u ~ N(μ(s), σ²)` and maps it through a softmax:
//! `a = softmax(u)`. Log-probabilities are computed on `u` (the latent
//! Gaussian), which is the quantity the score-function gradient needs. The
//! counterfactual mechanism's *default action* (paper Eq. 8) is
//! `softmax(μ)` — the deterministic action at the Gaussian mean.

use crate::param::{Ctx, ParamId, ParamStore};
use cit_tensor::{rand_util, softmax_last_tensor, Tensor, Var};
use rand::Rng;

/// Learnable state-independent log standard deviation, one per action dim.
#[derive(Debug, Clone)]
pub struct GaussianHead {
    log_std: ParamId,
    dim: usize,
}

/// A sample drawn from the head: the latent `u`, the resulting simplex
/// action, and the log-probability of `u` under the current Gaussian.
#[derive(Debug, Clone)]
pub struct GaussianSample {
    /// Latent pre-softmax sample `u`.
    pub latent: Tensor,
    /// `softmax(u)` — a valid portfolio vector.
    pub action: Tensor,
    /// `log N(u; μ, σ)` evaluated at sampling time (scalar).
    pub log_prob: f32,
}

impl GaussianHead {
    /// Creates a head of dimension `dim` with initial std `exp(init_log_std)`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, init_log_std: f32) -> Self {
        let log_std = store.add(
            format!("{name}.log_std"),
            Tensor::full(&[dim], init_log_std),
        );
        GaussianHead { log_std, dim }
    }

    /// Action dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current standard deviations (plain tensors, outside any graph).
    pub fn std(&self, store: &ParamStore) -> Tensor {
        store.value(self.log_std).map(f32::exp)
    }

    /// Samples `u ~ N(μ, σ)` and returns latent, simplex action and log-prob.
    ///
    /// `mean` is the μ tensor produced by an actor network (read out of its
    /// graph); sampling happens outside the graph.
    pub fn sample(&self, store: &ParamStore, mean: &Tensor, rng: &mut impl Rng) -> GaussianSample {
        assert_eq!(mean.numel(), self.dim, "GaussianHead dim mismatch");
        let std = self.std(store);
        let mut latent = Tensor::zeros(&[self.dim]);
        for i in 0..self.dim {
            latent.data_mut()[i] =
                rand_util::normal_with(rng, mean.data()[i] as f64, std.data()[i] as f64) as f32;
        }
        let action = softmax_last_tensor(&latent);
        let log_prob = log_prob_scalar(mean, &std, &latent);
        GaussianSample {
            latent,
            action,
            log_prob,
        }
    }

    /// Deterministic action at the Gaussian mean: `softmax(μ)` — the
    /// counterfactual *default action* of paper Eq. 8, also used at
    /// evaluation time.
    pub fn mean_action(&self, mean: &Tensor) -> Tensor {
        softmax_last_tensor(mean)
    }

    /// Builds the differentiable log-probability node
    /// `log N(u; μ, σ) = Σ_i [−½((u_i−μ_i)/σ_i)² − log σ_i] − d/2·log 2π`
    /// where `μ` is a graph var and `u` a constant.
    pub fn log_prob(&self, ctx: &mut Ctx<'_>, mean: Var, latent: &Tensor) -> Var {
        let log_std = ctx.param(self.log_std);
        let u = ctx.input(latent.clone());
        let diff = ctx.g.sub(u, mean);
        let neg_log_std = ctx.g.neg(log_std);
        let inv_std = ctx.g.exp(neg_log_std);
        let z = ctx.g.mul(diff, inv_std);
        let zsq = ctx.g.mul(z, z);
        let half = ctx.g.scale(zsq, -0.5);
        let with_norm = ctx.g.sub(half, log_std);
        let summed = ctx.g.sum_all(with_norm);
        let const_term = -0.5 * self.dim as f32 * (2.0 * std::f32::consts::PI).ln();
        ctx.g.add_scalar(summed, const_term)
    }
}

/// Plain-number log-density of a diagonal Gaussian (used at sample time and
/// by PPO's stored old log-probs).
pub fn log_prob_scalar(mean: &Tensor, std: &Tensor, u: &Tensor) -> f32 {
    let d = mean.numel();
    let mut lp = -0.5 * d as f32 * (2.0 * std::f32::consts::PI).ln();
    for i in 0..d {
        let s = std.data()[i];
        let z = (u.data()[i] - mean.data()[i]) / s;
        lp += -0.5 * z * z - s.ln();
    }
    lp
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_action_is_simplex() {
        let mut store = ParamStore::new();
        let head = GaussianHead::new(&mut store, "pi", 6, -1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mean = Tensor::vector(&[0.1, -0.2, 0.3, 0.0, 0.5, -0.1]);
        let s = head.sample(&store, &mean, &mut rng);
        let sum: f32 = s.action.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(s.action.data().iter().all(|&x| x >= 0.0));
        assert!(s.log_prob.is_finite());
    }

    #[test]
    fn graph_log_prob_matches_scalar() {
        let mut store = ParamStore::new();
        let head = GaussianHead::new(&mut store, "pi", 4, -0.5);
        let mean = Tensor::vector(&[0.2, -0.1, 0.4, 0.0]);
        let latent = Tensor::vector(&[0.3, 0.1, 0.2, -0.2]);
        let std = head.std(&store);
        let expected = log_prob_scalar(&mean, &std, &latent);

        let mut ctx = Ctx::new(&store);
        let mv = ctx.input(mean.clone());
        let lp = head.log_prob(&mut ctx, mv, &latent);
        assert!((ctx.g.value(lp).item() - expected).abs() < 1e-4);
    }

    #[test]
    fn log_prob_highest_at_mean() {
        let mean = Tensor::vector(&[0.5, -0.5]);
        let std = Tensor::vector(&[0.3, 0.3]);
        let at_mean = log_prob_scalar(&mean, &std, &mean);
        let off = log_prob_scalar(&mean, &std, &Tensor::vector(&[1.0, 0.0]));
        assert!(at_mean > off);
    }

    #[test]
    fn log_prob_gradient_moves_mean_toward_sample() {
        // Maximising log π(u | μ) should pull μ toward u.
        let mut store = ParamStore::new();
        let head = GaussianHead::new(&mut store, "pi", 2, -1.0);
        let mean_id = store.add("mu", Tensor::vector(&[0.0, 0.0]));
        let latent = Tensor::vector(&[1.0, -1.0]);

        let mut ctx = Ctx::new(&store);
        let mv = ctx.param(mean_id);
        let lp = head.log_prob(&mut ctx, mv, &latent);
        let neg = ctx.g.neg(lp); // minimise −logπ
        let grads = ctx.backward(neg);
        let g_mu = grads
            .iter()
            .find(|(id, _)| *id == mean_id)
            .expect("mean grad")
            .1
            .clone();
        // Descending −logπ ⇒ μ moves along −g, which must point toward u.
        assert!(g_mu.data()[0] < 0.0, "μ₀ should increase toward +1");
        assert!(g_mu.data()[1] > 0.0, "μ₁ should decrease toward −1");
    }

    #[test]
    fn mean_action_matches_softmax() {
        let mut store = ParamStore::new();
        let head = GaussianHead::new(&mut store, "pi", 3, 0.0);
        let mean = Tensor::vector(&[1.0, 2.0, 3.0]);
        let a = head.mean_action(&mean);
        let sm = softmax_last_tensor(&mean);
        assert_eq!(a, sm);
    }

    #[test]
    fn sampling_with_tiny_std_concentrates_at_mean() {
        let mut store = ParamStore::new();
        let head = GaussianHead::new(&mut store, "pi", 3, -8.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mean = Tensor::vector(&[2.0, 0.0, -2.0]);
        let s = head.sample(&store, &mean, &mut rng);
        let det = head.mean_action(&mean);
        for (a, b) in s.action.data().iter().zip(det.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
