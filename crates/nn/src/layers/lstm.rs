//! Long short-term memory cell — used by the EIIE ensemble's LSTM
//! evaluator (Jiang et al. build CNN, RNN and LSTM variants).

use crate::init::xavier_uniform;
use crate::param::{Ctx, ParamId, ParamStore};
use cit_tensor::{Tensor, Var};
use rand::Rng;

/// A single-layer LSTM over `[N, d, L]` windows.
///
/// Standard formulation with forget-gate bias initialised to 1 (the usual
/// trick that keeps early gradients alive):
/// `f = σ(xW_f + hU_f + b_f)`, `i = σ(xW_i + hU_i + b_i)`,
/// `o = σ(xW_o + hU_o + b_o)`, `c̃ = tanh(xW_c + hU_c + b_c)`,
/// `c' = f⊙c + i⊙c̃`, `h' = o⊙tanh(c')`.
#[derive(Debug, Clone)]
pub struct Lstm {
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wc: ParamId,
    uc: ParamId,
    bc: ParamId,
    input_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Registers the twelve LSTM weight tensors.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        input_dim: usize,
        hidden: usize,
    ) -> Self {
        let (i, h) = (input_dim, hidden);
        let wf = store.add(format!("{name}.wf"), xavier_uniform(rng, &[i, h], i, h));
        let uf = store.add(format!("{name}.uf"), xavier_uniform(rng, &[h, h], h, h));
        let bf = store.add(format!("{name}.bf"), Tensor::ones(&[h]));
        let wi = store.add(format!("{name}.wi"), xavier_uniform(rng, &[i, h], i, h));
        let ui = store.add(format!("{name}.ui"), xavier_uniform(rng, &[h, h], h, h));
        let bi = store.add(format!("{name}.bi"), Tensor::zeros(&[h]));
        let wo = store.add(format!("{name}.wo"), xavier_uniform(rng, &[i, h], i, h));
        let uo = store.add(format!("{name}.uo"), xavier_uniform(rng, &[h, h], h, h));
        let bo = store.add(format!("{name}.bo"), Tensor::zeros(&[h]));
        let wc = store.add(format!("{name}.wc"), xavier_uniform(rng, &[i, h], i, h));
        let uc = store.add(format!("{name}.uc"), xavier_uniform(rng, &[h, h], h, h));
        let bc = store.add(format!("{name}.bc"), Tensor::zeros(&[h]));
        Lstm {
            wf,
            uf,
            bf,
            wi,
            ui,
            bi,
            wo,
            uo,
            bo,
            wc,
            uc,
            bc,
            input_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn gate(&self, ctx: &mut Ctx<'_>, x: Var, h: Var, w: ParamId, u: ParamId, b: ParamId) -> Var {
        let wv = ctx.param(w);
        let uv = ctx.param(u);
        let bv = ctx.param(b);
        let xw = ctx.g.matmul(x, wv);
        let hu = ctx.g.matmul(h, uv);
        let sum = ctx.g.add(xw, hu);
        ctx.g.add_bias(sum, bv)
    }

    /// One recurrent step: `(x [N,d], h [N,hid], c [N,hid]) → (h', c')`.
    pub fn step(&self, ctx: &mut Ctx<'_>, x: Var, h: Var, c: Var) -> (Var, Var) {
        let f_pre = self.gate(ctx, x, h, self.wf, self.uf, self.bf);
        let f = ctx.g.sigmoid(f_pre);
        let i_pre = self.gate(ctx, x, h, self.wi, self.ui, self.bi);
        let i = ctx.g.sigmoid(i_pre);
        let o_pre = self.gate(ctx, x, h, self.wo, self.uo, self.bo);
        let o = ctx.g.sigmoid(o_pre);
        let c_pre = self.gate(ctx, x, h, self.wc, self.uc, self.bc);
        let cand = ctx.g.tanh(c_pre);

        let keep = ctx.g.mul(f, c);
        let write = ctx.g.mul(i, cand);
        let c_new = ctx.g.add(keep, write);
        let c_act = ctx.g.tanh(c_new);
        let h_new = ctx.g.mul(o, c_act);
        (h_new, c_new)
    }

    /// Runs over a `[N, d, L]` window (constant input) and returns the
    /// final hidden state `[N, hidden]`.
    pub fn forward_window(&self, ctx: &mut Ctx<'_>, window: &Tensor) -> Var {
        assert_eq!(window.shape().len(), 3, "Lstm window must be [N,d,L]");
        let (n, d, l) = (window.shape()[0], window.shape()[1], window.shape()[2]);
        assert_eq!(
            d, self.input_dim,
            "Lstm input dim {d} vs expected {}",
            self.input_dim
        );
        let mut h = ctx.input(Tensor::zeros(&[n, self.hidden]));
        let mut c = ctx.input(Tensor::zeros(&[n, self.hidden]));
        for t in 0..l {
            let mut slice = Tensor::zeros(&[n, d]);
            for ni in 0..n {
                for di in 0..d {
                    slice.set2(ni, di, window.at3(ni, di, t));
                }
            }
            let x = ctx.input(slice);
            let (h2, c2) = self.step(ctx, x, h, c);
            h = h2;
            c = c2;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lstm_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(&mut store, &mut rng, "l", 3, 5);
        let mut ctx = Ctx::new(&store);
        let h = lstm.forward_window(&mut ctx, &Tensor::zeros(&[2, 3, 6]));
        assert_eq!(ctx.g.value(h).shape(), &[2, 5]);
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Lstm::new(&mut store, &mut rng, "l", 2, 3);
        let bf = store
            .ids()
            .find(|&id| store.name(id) == "l.bf")
            .expect("bf");
        assert!(store.value(bf).data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn lstm_is_order_sensitive() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(&mut store, &mut rng, "l", 1, 4);
        let run = |vals: Vec<f32>| {
            let mut ctx = Ctx::new(&store);
            let w = Tensor::from_vec(&[1, 1, 4], vals);
            let h = lstm.forward_window(&mut ctx, &w);
            ctx.g.value(h).data().to_vec()
        };
        let fwd = run(vec![1.0, 2.0, 3.0, 4.0]);
        let rev = run(vec![4.0, 3.0, 2.0, 1.0]);
        let diff: f32 = fwd.iter().zip(&rev).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn gradients_reach_all_twelve_tensors() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let lstm = Lstm::new(&mut store, &mut rng, "l", 2, 3);
        let mut ctx = Ctx::new(&store);
        let h = lstm.forward_window(&mut ctx, &Tensor::ones(&[2, 2, 5]));
        let sq = ctx.g.mul(h, h);
        let loss = ctx.g.sum_all(sq);
        let grads = ctx.backward(loss);
        assert_eq!(
            grads.len(),
            12,
            "all twelve LSTM tensors should receive gradients"
        );
        assert!(grads.iter().all(|(_, g)| g.all_finite()));
    }

    #[test]
    fn zero_input_keeps_small_hidden() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let lstm = Lstm::new(&mut store, &mut rng, "l", 2, 3);
        let mut ctx = Ctx::new(&store);
        let h = lstm.forward_window(&mut ctx, &Tensor::zeros(&[1, 2, 8]));
        // h = o ⊙ tanh(c): with zero inputs the cell stays near zero.
        assert!(ctx.g.value(h).max_abs() < 0.5);
    }
}
