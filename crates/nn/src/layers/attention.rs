//! ASTGCN-style spatial attention over assets (paper Eq. 4–5).
//!
//! Given TCN features `H ∈ R^{m×f×z}` the layer computes an asset–asset
//! correlation matrix
//! `S = V_s ⊙ σ( ((H·w1) W2) (w3·H)ᵀ + b_s )`,
//! normalises it row-wise with softmax (Eq. 5), and returns the residual
//! mixture `H' = S·H + H` (Section IV-B2).

use crate::init::xavier_uniform;
use crate::param::{Ctx, ParamId, ParamStore};
use cit_tensor::{Tensor, Var};
use rand::Rng;

/// Spatial attention parameters for `m` assets, `f` features, `z` time steps.
#[derive(Debug, Clone)]
pub struct SpatialAttention {
    w1: ParamId, // [z]   time contraction on the left branch
    w2: ParamId, // [f,z] feature-to-time projection
    w3: ParamId, // [f]   feature contraction on the right branch
    vs: ParamId, // [m,m] output gate
    bs: ParamId, // [m,m] bias
    m: usize,
    f: usize,
    z: usize,
}

impl SpatialAttention {
    /// Registers the five attention tensors.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        m: usize,
        f: usize,
        z: usize,
    ) -> Self {
        let w1 = store.add(format!("{name}.w1"), xavier_uniform(rng, &[z], z, 1));
        let w2 = store.add(format!("{name}.w2"), xavier_uniform(rng, &[f, z], f, z));
        let w3 = store.add(format!("{name}.w3"), xavier_uniform(rng, &[f], f, 1));
        let vs = store.add(format!("{name}.vs"), xavier_uniform(rng, &[m, m], m, m));
        let bs = store.add(format!("{name}.bs"), Tensor::zeros(&[m, m]));
        SpatialAttention {
            w1,
            w2,
            w3,
            vs,
            bs,
            m,
            f,
            z,
        }
    }

    /// Number of assets the layer was sized for.
    pub fn num_assets(&self) -> usize {
        self.m
    }

    /// Computes the row-normalised attention matrix `S ∈ R^{m×m}`.
    pub fn attention_matrix(&self, ctx: &mut Ctx<'_>, h: Var) -> Var {
        let hv = ctx.g.value(h).shape().to_vec();
        assert_eq!(
            hv,
            vec![self.m, self.f, self.z],
            "SpatialAttention input shape {hv:?}"
        );
        let w1 = ctx.param(self.w1);
        let w2 = ctx.param(self.w2);
        let w3 = ctx.param(self.w3);
        let vs = ctx.param(self.vs);
        let bs = ctx.param(self.bs);

        let left = ctx.g.dot_last(h, w1); // [m,f]
        let lw = ctx.g.matmul(left, w2); // [m,z]
        let right = ctx.g.dot_mid(h, w3); // [m,z]
        let right_t = ctx.g.transpose2(right); // [z,m]
        let pre = ctx.g.matmul(lw, right_t); // [m,m]
        let pre_b = ctx.g.add(pre, bs);
        let sig = ctx.g.sigmoid(pre_b);
        let gated = ctx.g.mul(vs, sig);
        ctx.g.softmax_last(gated) // row-normalised (Eq. 5)
    }

    /// Full layer: `H' = S·H + H`.
    pub fn forward(&self, ctx: &mut Ctx<'_>, h: Var) -> Var {
        let _timer = ctx.span("nn.attention_forward");
        let s = self.attention_matrix(ctx, h);
        let mixed = ctx.g.contract_first(s, h);
        ctx.g.add(mixed, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(m: usize, f: usize, z: usize) -> (ParamStore, SpatialAttention) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let att = SpatialAttention::new(&mut store, &mut rng, "att", m, f, z);
        (store, att)
    }

    #[test]
    fn attention_rows_are_simplex() {
        let (store, att) = layer(4, 3, 5);
        let mut ctx = Ctx::new(&store);
        let mut h = Tensor::zeros(&[4, 3, 5]);
        let mut rng = StdRng::seed_from_u64(3);
        cit_tensor::rand_util::fill_uniform(&mut rng, h.data_mut(), 1.0);
        let hv = ctx.input(h);
        let s = att.attention_matrix(&mut ctx, hv);
        let sv = ctx.g.value(s);
        assert_eq!(sv.shape(), &[4, 4]);
        for r in 0..4 {
            let sum: f32 = (0..4).map(|c| sv.at2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!((0..4).all(|c| sv.at2(r, c) >= 0.0));
        }
    }

    #[test]
    fn forward_preserves_shape() {
        let (store, att) = layer(5, 4, 6);
        let mut ctx = Ctx::new(&store);
        let hv = ctx.input(Tensor::ones(&[5, 4, 6]));
        let out = att.forward(&mut ctx, hv);
        assert_eq!(ctx.g.value(out).shape(), &[5, 4, 6]);
    }

    #[test]
    fn residual_dominates_with_uniform_attention() {
        // With uniform rows, S·H averages assets; output = mean + H.
        let (store, att) = layer(3, 1, 2);
        let mut ctx = Ctx::new(&store);
        let h = Tensor::from_vec(&[3, 1, 2], vec![1., 1., 2., 2., 3., 3.]);
        let hv = ctx.input(h);
        let out = att.forward(&mut ctx, hv);
        let ov = ctx.g.value(out);
        // Every output equals (weighted mean over assets) + original; with
        // arbitrary weights we can still assert the residual lower bound:
        // out_i >= min_j h_j + h_i  -> here out for asset 2 >= 1 + 3 = 4... too
        // strong if weights concentrate; instead assert bounds of the mix:
        for i in 0..3 {
            for t in 0..2 {
                let v = ov.at3(i, 0, t);
                let orig = [1.0f32, 2.0, 3.0][i];
                assert!(
                    v >= orig + 1.0 - 1e-5 && v <= orig + 3.0 + 1e-5,
                    "mix out of range: {v}"
                );
            }
        }
    }

    #[test]
    fn gradients_reach_all_attention_params() {
        let (store, att) = layer(3, 2, 4);
        let mut ctx = Ctx::new(&store);
        let mut h = Tensor::zeros(&[3, 2, 4]);
        let mut rng = StdRng::seed_from_u64(4);
        cit_tensor::rand_util::fill_uniform(&mut rng, h.data_mut(), 1.0);
        let hv = ctx.input(h);
        let out = att.forward(&mut ctx, hv);
        let sq = ctx.g.mul(out, out);
        let loss = ctx.g.sum_all(sq);
        let grads = ctx.backward(loss);
        assert_eq!(
            grads.len(),
            5,
            "w1, w2, w3, vs, bs must all receive gradients"
        );
    }
}
