//! Central parameter storage and the forward-pass context.
//!
//! Parameters live in a [`ParamStore`] (values + accumulated gradients);
//! each forward pass builds a fresh [`Ctx`] that injects parameters into the
//! autodiff [`Graph`] as differentiable leaves. A parameter injected twice
//! in one pass maps to the same graph node, so gradient contributions from
//! shared weights accumulate correctly.

use cit_telemetry::{Span, Telemetry};
use cit_tensor::{Graph, Tensor, Var};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

#[derive(Clone)]
struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// Owns all trainable tensors of one or more modules.
///
/// Cloning deep-copies values and gradients — used for target networks
/// (DDPG) whose layers share the original [`ParamId`]s because parameters
/// were registered in identical order.
#[derive(Default, Clone)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.entries.push(ParamEntry {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not elements).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no parameter is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar elements across all parameters.
    pub fn num_elements(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value access (used by optimisers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Adds `g` into the stored gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.entries[id.0].grad.add_assign(g);
    }

    /// Resets every gradient to zero.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad = Tensor::zeros(e.value.shape());
        }
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    ///
    /// Returns the norm before clipping. A non-finite norm (any NaN/Inf
    /// gradient element) cannot be rescaled — `max_norm / norm` would be
    /// 0 or NaN and the poisoned step would be applied unclipped — so the
    /// gradients are zeroed and `f32::NAN` is returned as a sentinel for
    /// the training supervisor to treat as a health-check failure.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if !norm.is_finite() {
            self.zero_grads();
            return f32::NAN;
        }
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in &mut self.entries {
                e.grad.scale_assign(s);
            }
        }
        norm
    }

    /// `true` when every parameter value is finite.
    pub fn all_finite(&self) -> bool {
        self.entries.iter().all(|e| e.value.all_finite())
    }

    /// Copies all parameter values from `other` (shapes must match).
    ///
    /// Used for target networks (DDPG) and snapshotting.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.len(),
            other.len(),
            "copy_values_from: store size mismatch"
        );
        for (dst, src) in self.entries.iter_mut().zip(&other.entries) {
            assert_eq!(dst.value.shape(), src.value.shape(), "param shape mismatch");
            dst.value = src.value.clone();
        }
    }

    /// Polyak averaging: `self = (1-τ)·self + τ·other`.
    pub fn soft_update_from(&mut self, other: &ParamStore, tau: f32) {
        assert_eq!(
            self.len(),
            other.len(),
            "soft_update_from: store size mismatch"
        );
        for (dst, src) in self.entries.iter_mut().zip(&other.entries) {
            dst.value = dst
                .value
                .zip_map(&src.value, |a, b| (1.0 - tau) * a + tau * b);
        }
    }
}

/// A forward-pass context pairing a [`Graph`] with lazily injected
/// parameters from a [`ParamStore`].
pub struct Ctx<'a> {
    /// The underlying autodiff graph; callers use it directly for math ops.
    pub g: Graph,
    store: &'a ParamStore,
    bindings: Vec<Option<Var>>,
    telemetry: Telemetry,
}

impl<'a> Ctx<'a> {
    /// Starts a forward pass against `store` (telemetry disabled).
    pub fn new(store: &'a ParamStore) -> Self {
        Self::with_telemetry(store, Telemetry::disabled())
    }

    /// Starts a forward pass against `store`, timing layer forwards and
    /// the backward pass through `telemetry` span histograms.
    pub fn with_telemetry(store: &'a ParamStore, telemetry: Telemetry) -> Self {
        Self::with_graph_telemetry(store, Graph::new(), telemetry)
    }

    /// Starts a forward pass reusing a pre-allocated graph arena (cleared
    /// first), telemetry disabled. Pair with [`Ctx::into_graph`] to hand
    /// the arena back to a [`cit_tensor::GraphPool`] so per-step forward
    /// passes stop reallocating their node storage.
    pub fn with_graph(store: &'a ParamStore, graph: Graph) -> Self {
        Self::with_graph_telemetry(store, graph, Telemetry::disabled())
    }

    /// [`Ctx::with_graph`] with a telemetry handle attached.
    pub fn with_graph_telemetry(
        store: &'a ParamStore,
        mut graph: Graph,
        telemetry: Telemetry,
    ) -> Self {
        graph.reset();
        Ctx {
            g: graph,
            store,
            bindings: vec![None; store.len()],
            telemetry,
        }
    }

    /// Consumes the context and returns its graph arena for reuse.
    pub fn into_graph(self) -> Graph {
        self.g
    }

    /// Starts an RAII span timer named `span.<name>` (inert when the
    /// context carries no telemetry). Layers use this to time forwards.
    pub fn span(&self, name: &str) -> Span {
        self.telemetry.span(name)
    }

    /// Injects (or reuses) a parameter as a differentiable graph leaf.
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.bindings[id.0] {
            return v;
        }
        let v = self.g.param_leaf(self.store.value(id).clone());
        self.bindings[id.0] = Some(v);
        v
    }

    /// Injects a constant input tensor.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.g.input(t)
    }

    /// Runs backward from `loss` and returns `(ParamId, gradient)` pairs
    /// for every parameter that received a gradient.
    ///
    /// Apply them with [`ParamStore::accumulate_grad`] — the two-step dance
    /// keeps the forward pass borrowing the store immutably.
    pub fn backward(&self, loss: Var) -> Vec<(ParamId, Tensor)> {
        let _timer = self.telemetry.span("nn.backward");
        let grads = self.g.backward(loss);
        let mut out = Vec::new();
        for (i, b) in self.bindings.iter().enumerate() {
            if let Some(v) = b {
                if let Some(g) = grads.wrt(*v) {
                    out.push((ParamId(i), g.clone()));
                }
            }
        }
        out
    }
}

impl ParamStore {
    /// Accumulates a batch of `(id, gradient)` pairs, typically the output
    /// of [`Ctx::backward`] once the forward-pass borrow has ended.
    pub fn apply_grads(&mut self, grads: Vec<(ParamId, Tensor)>) {
        for (id, g) in grads {
            self.accumulate_grad(id, &g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[1.0, 2.0]));
        assert_eq!(store.value(id).data(), &[1.0, 2.0]);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.num_elements(), 2);
    }

    #[test]
    fn shared_param_injected_once() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[3.0]));
        let mut ctx = Ctx::new(&store);
        let a = ctx.param(id);
        let b = ctx.param(id);
        assert_eq!(a, b);
    }

    #[test]
    fn backward_accumulates_shared_use() {
        // loss = w + w ⇒ dloss/dw = 2
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[5.0]));
        let grads = {
            let mut ctx = Ctx::new(&store);
            let w = ctx.param(id);
            let y = ctx.g.add(w, w);
            let loss = ctx.g.sum_all(y);
            ctx.backward(loss)
        };
        store.apply_grads(grads);
        assert_eq!(store.grad(id).data(), &[2.0]);
    }

    #[test]
    fn zero_grads_resets() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[1.0]));
        store.accumulate_grad(id, &Tensor::vector(&[4.0]));
        assert_eq!(store.grad(id).data(), &[4.0]);
        store.zero_grads();
        assert_eq!(store.grad(id).data(), &[0.0]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[0.0, 0.0]));
        store.accumulate_grad(id, &Tensor::vector(&[3.0, 4.0])); // norm 5
        let before = store.clip_grad_norm(1.0);
        assert!((before - 5.0).abs() < 1e-6);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_nonfinite_zeroes_and_signals() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[0.0, 0.0]));
        store.accumulate_grad(id, &Tensor::vector(&[f32::NAN, 3.0]));
        let norm = store.clip_grad_norm(1.0);
        assert!(
            norm.is_nan(),
            "non-finite norm must surface as NaN sentinel"
        );
        assert_eq!(store.grad(id).data(), &[0.0, 0.0], "poisoned grads zeroed");

        store.accumulate_grad(id, &Tensor::vector(&[f32::INFINITY, 0.0]));
        let norm = store.clip_grad_norm(1.0);
        assert!(norm.is_nan());
        assert_eq!(store.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_noop_below_threshold() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[0.3]));
        store.accumulate_grad(id, &Tensor::vector(&[0.3]));
        store.clip_grad_norm(1.0);
        assert_eq!(store.grad(id).data(), &[0.3]);
    }

    #[test]
    fn soft_update_moves_towards_source() {
        let mut a = ParamStore::new();
        let ida = a.add("w", Tensor::vector(&[0.0]));
        let mut b = ParamStore::new();
        b.add("w", Tensor::vector(&[10.0]));
        a.soft_update_from(&b, 0.1);
        assert!((a.value(ida).data()[0] - 1.0).abs() < 1e-6);
    }
}
