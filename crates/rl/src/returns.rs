//! Return targets: discounted Monte-Carlo returns and the TD(λ) mixture of
//! n-step returns used by the paper's critic (Eq. 6–7).

/// Discounted Monte-Carlo returns `G_t = Σ γ^k r_{t+k}`.
pub fn discounted_returns(rewards: &[f64], gamma: f64) -> Vec<f64> {
    let mut out = vec![0.0f64; rewards.len()];
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        acc = rewards[t] + gamma * acc;
        out[t] = acc;
    }
    out
}

/// The n-step return `G_t^{(n)} = Σ_{l=0}^{n-1} γ^l r_{t+l} + γ^n V_{t+n}`
/// (bootstrapping from `values`, which holds `V(s_t)` for every step plus
/// one final bootstrap value).
///
/// When `t + n` runs past the trajectory the longest available return is
/// used with the terminal bootstrap.
pub fn nstep_return(rewards: &[f64], values: &[f64], gamma: f64, t: usize, n: usize) -> f64 {
    assert_eq!(
        values.len(),
        rewards.len() + 1,
        "values must include a final bootstrap"
    );
    assert!(t < rewards.len(), "t out of range");
    let horizon = (t + n).min(rewards.len());
    let mut g = 0.0;
    let mut disc = 1.0;
    for &r in &rewards[t..horizon] {
        g += disc * r;
        disc *= gamma;
    }
    g + disc * values[horizon]
}

/// TD(λ) mixture of n-step returns (paper Eq. 6):
/// `y_t^{(λ)} = (1−λ) Σ_{n=1}^{N−1} λ^{n−1} G_t^{(n)} + λ^{N−1} G_t^{(N)}`,
/// with `N = n_max` (the paper sets n-step return parameter to 5).
pub fn lambda_targets(
    rewards: &[f64],
    values: &[f64],
    gamma: f64,
    lambda: f64,
    n_max: usize,
) -> Vec<f64> {
    assert!(n_max >= 1, "lambda_targets: n_max must be >= 1");
    assert_eq!(
        values.len(),
        rewards.len() + 1,
        "values must include a final bootstrap"
    );
    (0..rewards.len())
        .map(|t| {
            if n_max == 1 {
                return nstep_return(rewards, values, gamma, t, 1);
            }
            let mut y = 0.0;
            let mut lam_pow = 1.0;
            for n in 1..n_max {
                y += (1.0 - lambda) * lam_pow * nstep_return(rewards, values, gamma, t, n);
                lam_pow *= lambda;
            }
            y + lam_pow * nstep_return(rewards, values, gamma, t, n_max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discounted_simple() {
        let g = discounted_returns(&[1.0, 1.0, 1.0], 0.5);
        assert!((g[2] - 1.0).abs() < 1e-12);
        assert!((g[1] - 1.5).abs() < 1e-12);
        assert!((g[0] - 1.75).abs() < 1e-12);
    }

    #[test]
    fn discounted_gamma_zero_is_identity() {
        let r = [0.3, -0.1, 0.7];
        assert_eq!(discounted_returns(&r, 0.0), r.to_vec());
    }

    #[test]
    fn nstep_matches_hand_computation() {
        let rewards = [1.0, 2.0, 3.0];
        let values = [10.0, 20.0, 30.0, 40.0];
        // G_0^{(2)} = r0 + γ r1 + γ² V(s2) = 1 + 0.9·2 + 0.81·30
        let g = nstep_return(&rewards, &values, 0.9, 0, 2);
        assert!((g - (1.0 + 1.8 + 0.81 * 30.0)).abs() < 1e-12);
    }

    #[test]
    fn nstep_truncates_at_episode_end() {
        let rewards = [1.0, 2.0];
        let values = [0.0, 0.0, 5.0];
        // n = 10 from t=0 covers both rewards + terminal bootstrap.
        let g = nstep_return(&rewards, &values, 1.0, 0, 10);
        assert!((g - (1.0 + 2.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_is_one_step_td() {
        let rewards = [1.0, -1.0, 0.5];
        let values = [0.1, 0.2, 0.3, 0.4];
        let y = lambda_targets(&rewards, &values, 0.9, 0.0, 5);
        for (t, &yt) in y.iter().enumerate() {
            let expected = nstep_return(&rewards, &values, 0.9, t, 1);
            assert!((yt - expected).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn lambda_one_is_nmax_step_return() {
        let rewards = [1.0, -1.0, 0.5, 0.2];
        let values = [0.1, 0.2, 0.3, 0.4, 0.5];
        let y = lambda_targets(&rewards, &values, 0.95, 1.0, 3);
        for (t, &yt) in y.iter().enumerate() {
            let expected = nstep_return(&rewards, &values, 0.95, t, 3);
            assert!((yt - expected).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn lambda_mixture_between_extremes() {
        let rewards = [1.0, 2.0, 3.0, 4.0];
        let values = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y0 = lambda_targets(&rewards, &values, 0.9, 0.0, 5);
        let y1 = lambda_targets(&rewards, &values, 0.9, 1.0, 5);
        let ym = lambda_targets(&rewards, &values, 0.9, 0.5, 5);
        for t in 0..4 {
            let lo = y0[t].min(y1[t]) - 1e-9;
            let hi = y0[t].max(y1[t]) + 1e-9;
            assert!(
                ym[t] >= lo && ym[t] <= hi,
                "t={t}: {} not in [{lo},{hi}]",
                ym[t]
            );
        }
    }

    #[test]
    fn mixture_weights_sum_to_one() {
        // With all n-step returns equal, the target must equal that value.
        let rewards = [0.0, 0.0, 0.0];
        let values = [7.0, 7.0, 7.0, 7.0];
        let y = lambda_targets(&rewards, &values, 1.0, 0.7, 5);
        for (t, &yt) in y.iter().enumerate() {
            assert!((yt - 7.0).abs() < 1e-12, "t={t}: {yt}");
        }
    }
}
