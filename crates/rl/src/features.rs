//! Compact per-asset technical features for baseline RL states
//! (FinRL-style state construction: recent returns, moving-average ratios,
//! volatility and range statistics).

use cit_market::{AssetPanel, Feature};

/// Number of per-asset features produced by [`asset_features`].
pub const FEAT_DIM: usize = 8;

/// Minimum history (days) required before features are well-defined.
pub const FEAT_LOOKBACK: usize = 21;

/// Technical features of asset `i` at day `t`:
/// log returns over 1/5/20 days, MA5 and MA20 ratios, 10-day volatility,
/// 5-day average high-low range, and a 10-day up-day fraction.
///
/// # Panics
/// Panics when `t < FEAT_LOOKBACK - 1`.
pub fn asset_features(panel: &AssetPanel, t: usize, i: usize) -> [f64; FEAT_DIM] {
    assert!(
        t + 1 >= FEAT_LOOKBACK,
        "asset_features needs {FEAT_LOOKBACK} days of history"
    );
    let c = |day: usize| panel.close(day, i);
    let p = c(t);
    let logret = |lag: usize| (p / c(t - lag)).ln();
    let ma = |n: usize| (0..n).map(|k| c(t - k)).sum::<f64>() / n as f64;
    let vol10 = {
        let rets: Vec<f64> = (0..10).map(|k| (c(t - k) / c(t - k - 1)).ln()).collect();
        let m = rets.iter().sum::<f64>() / 10.0;
        (rets.iter().map(|r| (r - m) * (r - m)).sum::<f64>() / 9.0).sqrt()
    };
    let range5 = (0..5)
        .map(|k| {
            let h = panel.price(t - k, i, Feature::High);
            let l = panel.price(t - k, i, Feature::Low);
            (h - l) / c(t - k)
        })
        .sum::<f64>()
        / 5.0;
    let updays = (0..10).filter(|&k| c(t - k) > c(t - k - 1)).count() as f64 / 10.0 - 0.5;
    [
        logret(1),
        logret(5),
        logret(20),
        ma(5) / p - 1.0,
        ma(20) / p - 1.0,
        vol10,
        range5,
        updays,
    ]
}

/// Cross-sectional market summary: the mean of each per-asset feature.
pub fn market_features(panel: &AssetPanel, t: usize) -> [f64; FEAT_DIM] {
    let m = panel.num_assets();
    let mut out = [0.0f64; FEAT_DIM];
    for i in 0..m {
        let f = asset_features(panel, t, i);
        for (o, v) in out.iter_mut().zip(f.iter()) {
            *o += v / m as f64;
        }
    }
    out
}

/// The default baseline RL state: all per-asset features concatenated with
/// the previously held weights. Length `m · FEAT_DIM + m`.
pub fn state_vector(panel: &AssetPanel, t: usize, prev_weights: &[f64]) -> Vec<f64> {
    let m = panel.num_assets();
    assert_eq!(prev_weights.len(), m, "prev_weights length mismatch");
    let mut out = Vec::with_capacity(m * FEAT_DIM + m);
    for i in 0..m {
        out.extend_from_slice(&asset_features(panel, t, i));
    }
    out.extend_from_slice(prev_weights);
    out
}

/// Dimension of [`state_vector`] for `m` assets.
pub fn state_dim(m: usize) -> usize {
    m * FEAT_DIM + m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    fn panel() -> AssetPanel {
        SynthConfig {
            num_assets: 3,
            num_days: 120,
            test_start: 90,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn features_are_finite() {
        let p = panel();
        for t in [20, 50, 119] {
            for i in 0..3 {
                let f = asset_features(&p, t, i);
                assert!(
                    f.iter().all(|v| v.is_finite()),
                    "non-finite feature at t={t} i={i}"
                );
            }
        }
    }

    #[test]
    fn state_vector_dimensions() {
        let p = panel();
        let prev = vec![1.0 / 3.0; 3];
        let s = state_vector(&p, 30, &prev);
        assert_eq!(s.len(), state_dim(3));
        // Prev weights occupy the tail.
        assert!((s[s.len() - 1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flat_prices_give_zero_returns() {
        let days = 40;
        let mut data = Vec::new();
        for _ in 0..days {
            data.extend_from_slice(&[100.0, 100.5, 99.5, 100.0]);
        }
        let p = AssetPanel::new("flat", days, 1, data, 30);
        let f = asset_features(&p, 30, 0);
        assert!(f[0].abs() < 1e-12); // 1-day return
        assert!(f[3].abs() < 1e-12); // MA5 ratio
        assert!(f[5].abs() < 1e-12); // vol
    }

    #[test]
    fn uptrend_has_positive_momentum_features() {
        let days = 40;
        let mut data = Vec::new();
        for t in 0..days {
            let c = 100.0 * 1.01f64.powi(t as i32);
            data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
        }
        let p = AssetPanel::new("up", days, 1, data, 30);
        let f = asset_features(&p, 30, 0);
        assert!(f[0] > 0.0 && f[1] > 0.0 && f[2] > 0.0);
        assert!(f[3] < 0.0, "MA5 below price in an uptrend");
        assert!((f[7] - 0.5).abs() < 1e-12, "all up-days");
    }

    #[test]
    fn market_features_average_assets() {
        let p = panel();
        let mf = market_features(&p, 40);
        let manual: f64 = (0..3).map(|i| asset_features(&p, 40, i)[0]).sum::<f64>() / 3.0;
        assert!((mf[0] - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "history")]
    fn early_day_panics() {
        let p = panel();
        let _ = asset_features(&p, 5, 0);
    }
}
