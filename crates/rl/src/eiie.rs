//! EIIE (Jiang, Xu & Liang 2017): ensemble of identical independent
//! evaluators. A small convolutional network is applied to every asset's
//! price-relative window with *shared weights*, producing one score per
//! asset; softmax over scores gives the portfolio. Trained, as in the
//! original, by directly maximising the expected log return over sampled
//! mini-batches (the reward is differentiable in the weights).

use crate::config::{RlConfig, TrainReport};
use cit_market::{AssetPanel, DecisionContext, Feature, Strategy};
use cit_nn::{Adam, Conv1dLayer, Ctx, Gru, Linear, Lstm, ParamStore};
use cit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which identical-independent-evaluator network EIIE uses — the original
/// paper builds all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EiieBody {
    /// Two causal convolutions (the paper's best variant).
    Cnn,
    /// A basic recurrent network (GRU stands in for the vanilla RNN).
    Rnn,
    /// A long short-term memory network.
    Lstm,
}

enum Evaluator {
    Cnn {
        conv1: Conv1dLayer,
        conv2: Conv1dLayer,
    },
    Rnn {
        gru: Gru,
    },
    Lstm {
        lstm: Lstm,
    },
}

/// The EIIE agent.
pub struct Eiie {
    cfg: RlConfig,
    num_assets: usize,
    store: ParamStore,
    evaluator: Evaluator,
    head: Linear,
    rng: StdRng,
}

impl Eiie {
    /// Number of input channels: close/high/low relatives.
    const CHANNELS: usize = 3;

    /// Creates an EIIE agent with the CNN evaluator (the default in the
    /// original work and in Table III).
    pub fn new(panel: &AssetPanel, cfg: RlConfig) -> Self {
        Self::with_body(panel, cfg, EiieBody::Cnn)
    }

    /// Creates an EIIE agent with the chosen evaluator network.
    pub fn with_body(panel: &AssetPanel, cfg: RlConfig, body: EiieBody) -> Self {
        let m = panel.num_assets();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let hidden = cfg.hidden.min(16);
        let evaluator = match body {
            EiieBody::Cnn => Evaluator::Cnn {
                conv1: Conv1dLayer::new(
                    &mut store,
                    &mut rng,
                    "eiie.conv1",
                    Self::CHANNELS,
                    hidden,
                    3,
                    1,
                ),
                conv2: Conv1dLayer::new(&mut store, &mut rng, "eiie.conv2", hidden, hidden, 3, 2),
            },
            EiieBody::Rnn => Evaluator::Rnn {
                gru: Gru::new(&mut store, &mut rng, "eiie.gru", Self::CHANNELS, hidden),
            },
            EiieBody::Lstm => Evaluator::Lstm {
                lstm: Lstm::new(&mut store, &mut rng, "eiie.lstm", Self::CHANNELS, hidden),
            },
        };
        let head = Linear::new(&mut store, &mut rng, "eiie.head", hidden, 1);
        Eiie {
            cfg,
            num_assets: m,
            store,
            evaluator,
            head,
            rng,
        }
    }

    /// The `[m, 3, z]` input: close/high/low divided by the current close.
    fn window_tensor(&self, panel: &AssetPanel, t: usize) -> Tensor {
        let (m, z) = (self.num_assets, self.cfg.window);
        let mut out = Tensor::zeros(&[m, Self::CHANNELS, z]);
        for i in 0..m {
            let anchor = panel.close(t, i);
            for (c, f) in [Feature::Close, Feature::High, Feature::Low]
                .iter()
                .enumerate()
            {
                for s in 0..z {
                    let day = t + 1 - z + s;
                    out.set3(i, c, s, (panel.price(day, i, *f) / anchor - 1.0) as f32);
                }
            }
        }
        out
    }

    /// Builds the differentiable portfolio vector for day `t` inside `ctx`.
    fn weights_var(&self, ctx: &mut Ctx<'_>, panel: &AssetPanel, t: usize) -> cit_tensor::Var {
        let window = self.window_tensor(panel, t);
        let pooled = match &self.evaluator {
            Evaluator::Cnn { conv1, conv2 } => {
                let x = ctx.input(window);
                let h = conv1.forward(ctx, x);
                let h = ctx.g.relu(h);
                let h = conv2.forward(ctx, h);
                let h = ctx.g.relu(h);
                ctx.g.select_last_time(h) // [m, hidden]
            }
            Evaluator::Rnn { gru } => gru.forward_window(ctx, &window),
            Evaluator::Lstm { lstm } => lstm.forward_window(ctx, &window),
        };
        let scores2 = self.head.forward(ctx, pooled); // [m, 1]
        let scores = ctx.g.reshape(scores2, &[self.num_assets]);
        ctx.g.softmax_last(scores)
    }

    /// Deterministic evaluation action.
    pub fn act(&self, panel: &AssetPanel, t: usize) -> Vec<f64> {
        let mut ctx = Ctx::new(&self.store);
        let w = self.weights_var(&mut ctx, panel, t);
        ctx.g.value(w).data().iter().map(|&v| v as f64).collect()
    }

    /// Trains by maximising mean log return over random mini-batches of
    /// training days.
    pub fn train(&mut self, panel: &AssetPanel) -> TrainReport {
        let start = self.cfg.min_start();
        let end = panel.test_start() - 1; // need t+1 for the realised return
        assert!(start + 2 < end, "training period too short");
        let batch = 16usize;
        let updates = (self.cfg.total_steps / batch).max(1);
        let mut opt = Adam::new(self.cfg.lr, self.cfg.weight_decay);
        let mut update_rewards = Vec::new();

        for _ in 0..updates {
            let days: Vec<usize> = (0..batch)
                .map(|_| self.rng.random_range(start..end))
                .collect();
            let mut ctx = Ctx::new(&self.store);
            let mut total: Option<cit_tensor::Var> = None;
            let mut batch_reward = 0.0f64;
            for &t in &days {
                let w = self.weights_var(&mut ctx, panel, t);
                let rel: Vec<f32> = panel
                    .price_relatives(t + 1)
                    .iter()
                    .map(|&v| v as f32)
                    .collect();
                let x = ctx.input(Tensor::vector(&rel));
                let growth_vec = ctx.g.mul(w, x);
                let growth = ctx.g.sum_all(growth_vec);
                let logret = ctx.g.ln(growth);
                batch_reward += ctx.g.value(logret).item() as f64;
                let neg = ctx.g.scale(logret, -1.0 / batch as f32);
                total = Some(match total {
                    Some(acc) => ctx.g.add(acc, neg),
                    None => neg,
                });
            }
            let loss = total.expect("non-empty batch");
            let grads = ctx.backward(loss);
            self.store.apply_grads(grads);
            self.store.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&mut self.store);
            update_rewards.push(batch_reward / batch as f64);
        }
        TrainReport {
            update_rewards,
            steps: updates * batch,
        }
    }
}

impl Strategy for Eiie {
    fn name(&self) -> String {
        "EIIE".to_string()
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        self.act(ctx.panel, ctx.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cit_market::SynthConfig;

    #[test]
    fn eiie_acts_on_simplex() {
        let p = SynthConfig {
            num_assets: 4,
            num_days: 200,
            test_start: 160,
            ..Default::default()
        }
        .generate();
        let agent = Eiie::new(&p, RlConfig::smoke(21));
        let a = agent.act(&p, 100);
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eiie_improves_log_return_on_momentum_market() {
        // Persistent winner: asset 0. Direct log-return maximisation should
        // tilt toward it quickly.
        let days = 320;
        let mut data = Vec::new();
        for t in 0..days {
            for i in 0..3 {
                let g: f64 = if i == 0 { 1.01 } else { 0.997 };
                let c = 100.0 * g.powi(t as i32);
                data.extend_from_slice(&[c, c * 1.002, c * 0.998, c]);
            }
        }
        let p = AssetPanel::new("mom", days, 3, data, 280);
        let mut cfg = RlConfig::smoke(22);
        cfg.total_steps = 1600;
        cfg.lr = 3e-3;
        let mut agent = Eiie::new(&p, cfg);
        let rep = agent.train(&p);
        let a = agent.act(&p, 290);
        assert!(
            a[0] > 0.6,
            "EIIE should pick the persistent winner, got {a:?}"
        );
        let first = rep.update_rewards.first().copied().unwrap_or(0.0);
        let last = rep.final_mean_reward();
        assert!(
            last >= first,
            "training reward should not degrade: {first} -> {last}"
        );
    }

    #[test]
    fn all_evaluator_bodies_act_on_simplex() {
        let p = SynthConfig {
            num_assets: 4,
            num_days: 200,
            test_start: 160,
            ..Default::default()
        }
        .generate();
        for body in [EiieBody::Cnn, EiieBody::Rnn, EiieBody::Lstm] {
            let agent = Eiie::with_body(&p, RlConfig::smoke(24), body);
            let a = agent.act(&p, 100);
            assert!(
                (a.iter().sum::<f64>() - 1.0).abs() < 1e-5,
                "{body:?}: {a:?}"
            );
            assert!(a.iter().all(|x| x.is_finite()), "{body:?}");
        }
    }

    #[test]
    fn recurrent_bodies_train_briefly() {
        let p = SynthConfig {
            num_assets: 3,
            num_days: 200,
            test_start: 160,
            ..Default::default()
        }
        .generate();
        for body in [EiieBody::Rnn, EiieBody::Lstm] {
            let mut cfg = RlConfig::smoke(25);
            cfg.total_steps = 160;
            let mut agent = Eiie::with_body(&p, cfg, body);
            let rep = agent.train(&p);
            assert!(rep.steps >= 160, "{body:?}");
            let a = agent.act(&p, 120);
            assert!(a.iter().all(|x| x.is_finite()), "{body:?}");
        }
    }

    #[test]
    fn eiie_weight_sharing_is_asset_symmetric() {
        // With identical windows for every asset, scores must be identical.
        let days = 60;
        let mut data = Vec::new();
        for t in 0..days {
            for _ in 0..3 {
                let c = 100.0 + (t as f64 * 0.8).sin();
                data.extend_from_slice(&[c, c * 1.001, c * 0.999, c]);
            }
        }
        let p = AssetPanel::new("sym", days, 3, data, 50);
        let agent = Eiie::new(&p, RlConfig::smoke(23));
        let a = agent.act(&p, 40);
        assert!(
            (a[0] - a[1]).abs() < 1e-6 && (a[1] - a[2]).abs() < 1e-6,
            "{a:?}"
        );
    }
}
