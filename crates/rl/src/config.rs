//! Shared hyper-parameters for the deep-RL baselines and trainers.

/// Hyper-parameters shared by every RL trainer in the workspace. Paper
/// defaults (Section V-A): Adam with lr 1e-4 and weight decay, n-step
/// return parameter 5; the remaining values are standard.
#[derive(Debug, Clone, Copy)]
pub struct RlConfig {
    /// Hidden width of policy/value networks.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Discount factor γ.
    pub gamma: f64,
    /// TD(λ) mixing coefficient.
    pub lambda: f64,
    /// n-step return horizon `N` (paper: 5).
    pub nstep: usize,
    /// Steps per rollout before an update.
    pub rollout: usize,
    /// Total environment steps of training.
    pub total_steps: usize,
    /// Initial Gaussian log standard deviation.
    pub init_log_std: f32,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Gradient clip (global norm).
    pub grad_clip: f32,
    /// Look-back window `z` for windowed policies.
    pub window: usize,
    /// Proportional transaction cost.
    pub transaction_cost: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            hidden: 64,
            lr: 3e-4,
            weight_decay: 1e-5,
            gamma: 0.99,
            lambda: 0.9,
            nstep: 5,
            rollout: 32,
            total_steps: 4_000,
            init_log_std: -1.0,
            entropy_coef: 1e-3,
            grad_clip: 5.0,
            window: 32,
            transaction_cost: 1e-3,
            seed: 0,
        }
    }
}

impl RlConfig {
    /// A tiny configuration for smoke tests.
    pub fn smoke(seed: u64) -> Self {
        RlConfig {
            hidden: 16,
            total_steps: 300,
            rollout: 16,
            window: 16,
            seed,
            ..Default::default()
        }
    }

    /// The first training day given feature/window look-back requirements.
    pub fn min_start(&self) -> usize {
        self.window.max(crate::features::FEAT_LOOKBACK)
    }
}

/// Per-update diagnostics emitted by trainers.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean reward per environment step for each optimisation update.
    pub update_rewards: Vec<f64>,
    /// Total environment steps executed.
    pub steps: usize,
}

impl TrainReport {
    /// Mean reward over the final quarter of training (a stability proxy).
    pub fn final_mean_reward(&self) -> f64 {
        let n = self.update_rewards.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.update_rewards[n - (n / 4).max(1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = RlConfig::default();
        assert!(c.gamma < 1.0 && c.gamma > 0.9);
        assert_eq!(c.nstep, 5);
        assert!(c.min_start() >= 21);
    }

    #[test]
    fn final_mean_reward_uses_tail() {
        let r = TrainReport {
            update_rewards: vec![0.0, 0.0, 0.0, 1.0],
            steps: 4,
        };
        assert_eq!(r.final_mean_reward(), 1.0);
        let empty = TrainReport {
            update_rewards: vec![],
            steps: 0,
        };
        assert_eq!(empty.final_mean_reward(), 0.0);
    }
}
